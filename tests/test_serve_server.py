"""LayoutServer behaviour: dispatch, coalescing, admission, the gate."""

import json
import socket
import threading
import time

import pytest

from repro import obs
from repro.errors import ServeError
from repro.harness.store import ArtifactStore
from repro.serve import server as server_module
from repro.serve.client import ClientConfig, LayoutClient
from repro.serve.protocol import (
    SOURCE_BUILT,
    SOURCE_COALESCED,
    SOURCE_MEMORY,
    SOURCE_STATIC,
    STATUS_OK,
    ErrorResponse,
    HealthRequest,
    LayoutRequest,
    LayoutResponse,
    ProfileSubmit,
    encode_message,
    read_message_sync,
)
from repro.serve.server import ServerConfig, ServerThread


@pytest.fixture()
def running_server(serve_env, tmp_path):
    binary, _ = serve_env
    handle = ServerThread.start(
        binary,
        store=ArtifactStore(tmp_path / "store"),
        config=ServerConfig(queue_limit=4, workers=0),
    )
    try:
        yield handle
    finally:
        handle.stop()


def make_client(handle, **overrides):
    defaults = dict(timeout_s=10.0, max_attempts=2, backoff_s=0.01)
    defaults.update(overrides)
    return LayoutClient(handle.address, ClientConfig(**defaults))


def counter_value(name):
    payload = obs.registry().snapshot().get(name)
    return payload["value"] if payload else 0


class TestRequestHandling:
    def test_submit_then_fetch_then_cache_hit(self, running_server, serve_env):
        _, (profile, _) = serve_env
        client = make_client(running_server)
        assert client.submit_profile(profile)
        # Resubmission dedupes client-side; a second client's submission
        # of the same profile dedupes server-side (known=True).
        assert client.submit_profile(profile)

        first = client.fetch_layout(profile, "all")
        assert first.ok and first.source == SOURCE_BUILT
        assert first.layout["units"]

        second = client.fetch_layout(profile, "all")
        assert second.ok and second.source == SOURCE_MEMORY
        assert second.layout == first.layout

        health = client.health()
        assert health.status == "ok"
        assert health.profiles == 1
        assert health.counters.get("serve.optimizations", 0) >= 1
        assert health.counters.get("serve.cache_hits", 0) >= 1

    def test_unknown_fingerprint_is_an_error(self, serve_env, tmp_path):
        # With the static cold-start fallback disabled, an unknown
        # fingerprint is refused outright (the pre-fallback behaviour).
        binary, (profile, _) = serve_env
        handle = ServerThread.start(
            binary,
            store=None,
            config=ServerConfig(workers=0, static_fallback=False),
        )
        try:
            client = make_client(handle, max_attempts=1)
            reply = client._call(LayoutRequest("not-a-fingerprint", "all"))
            assert isinstance(reply, LayoutResponse)
            assert reply.status == "error"
            assert "unknown profile fingerprint" in reply.error
            # fetch_layout degrades the same error into ServeError when
            # the client holds no fallback: skip the submission so the
            # server has never seen this profile's fingerprint.
            cold = make_client(handle, max_attempts=1)
            cold._submitted.add(profile.fingerprint())
            with pytest.raises(ServeError, match="no\\s+last-known-good"):
                cold.fetch_layout(profile, "all")
        finally:
            handle.stop()

    def test_cold_start_serves_gated_static_layout(
        self, running_server, serve_env
    ):
        # Default config: a layout_request whose fingerprint the server
        # has never seen gets a layout synthesized from static program
        # structure -- gated by repro.check -- instead of an error.
        _, (profile, _) = serve_env
        client = make_client(running_server, max_attempts=1)
        before = counter_value("serve.static_served")
        reply = client._call(LayoutRequest("never-submitted", "all"))
        assert isinstance(reply, LayoutResponse)
        assert reply.ok
        assert reply.source == SOURCE_STATIC
        assert reply.layout["units"]
        assert counter_value("serve.static_served") == before + 1
        # The per-combo static document is built once and reused.
        again = client._call(LayoutRequest("also-never-submitted", "all"))
        assert again.ok and again.source == SOURCE_STATIC
        assert again.layout == reply.layout
        assert counter_value("serve.static_served") == before + 2
        # A submitted profile still takes the measured path.
        client.submit_profile(profile)
        measured = client.fetch_layout(profile, "all")
        assert measured.ok and measured.source == SOURCE_BUILT

    def test_bad_combo_is_an_error(self, running_server, serve_env):
        _, (profile, _) = serve_env
        client = make_client(running_server, max_attempts=1)
        client.submit_profile(profile)
        reply = client._call(
            LayoutRequest(profile.fingerprint(), "not-a-combo")
        )
        assert reply.status == "error"
        assert "not-a-combo" in reply.error

    def test_mismatched_fingerprint_refused(self, running_server, serve_env):
        _, (profile, _) = serve_env
        client = make_client(running_server, max_attempts=1)
        submit = ProfileSubmit.from_profile(profile)
        submit.fingerprint = "forged"
        before = counter_value("serve.bad_submissions")
        reply = client._call(submit)
        assert isinstance(reply, ErrorResponse)
        assert "does not match" in reply.message
        assert counter_value("serve.bad_submissions") == before + 1

    def test_garbage_frame_gets_error_response(self, running_server):
        before = counter_value("serve.protocol_errors")
        with socket.create_connection(running_server.address, timeout=5) as sock:
            sock.sendall(b"\x00\x00\x00\x05junk\n")
            with sock.makefile("rb") as stream:
                reply = read_message_sync(stream)
        assert isinstance(reply, ErrorResponse)
        assert counter_value("serve.protocol_errors") == before + 1

    def test_health_over_raw_socket(self, running_server):
        with socket.create_connection(running_server.address, timeout=5) as sock:
            sock.sendall(encode_message(HealthRequest()))
            with sock.makefile("rb") as stream:
                reply = read_message_sync(stream)
        assert reply.TYPE == "health_response"
        assert reply.uptime_s >= 0.0


class TestCoalescing:
    def test_concurrent_requests_share_one_build(self, running_server, serve_env):
        _, (_, profile) = serve_env
        fan_out = 6
        clients = [
            make_client(running_server, seed=i) for i in range(fan_out)
        ]
        clients[0].submit_profile(profile)
        before_opt = counter_value("serve.optimizations")
        before_coal = counter_value("serve.coalesced")

        barrier = threading.Barrier(fan_out)
        responses = [None] * fan_out

        def fetch(index):
            barrier.wait(timeout=30)
            responses[index] = clients[index].fetch_layout(profile, "all")

        threads = [
            threading.Thread(target=fetch, args=(i,)) for i in range(fan_out)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert all(r is not None and r.ok for r in responses)
        layouts = [json.dumps(r.layout, sort_keys=True) for r in responses]
        assert len(set(layouts)) == 1  # everyone got the same document
        built = counter_value("serve.optimizations") - before_opt
        coalesced = counter_value("serve.coalesced") - before_coal
        assert built == 1
        sources = sorted(r.source for r in responses)
        assert sources.count(SOURCE_COALESCED) == coalesced
        # Every non-leader either coalesced or hit the cache just after.
        assert built + coalesced + sources.count(SOURCE_MEMORY) == fan_out


class TestAdmissionControl:
    def test_queue_limit_rejects_overflow(
        self, serve_env, tmp_path, monkeypatch
    ):
        binary, (profile_a, profile_b) = serve_env
        release = threading.Event()
        original = server_module._optimize_task

        def stalled_optimize(submit, combo, enqueued_at):
            release.wait(timeout=30)
            return original(submit, combo, enqueued_at)

        monkeypatch.setattr(
            server_module, "_optimize_task", stalled_optimize
        )

        handle = ServerThread.start(
            binary,
            store=None,
            config=ServerConfig(queue_limit=1, workers=0),
        )
        try:
            blocker = make_client(handle, max_attempts=1)
            blocker.submit_profile(profile_a)
            rejected_client = make_client(handle, max_attempts=1)
            rejected_client.submit_profile(profile_b)

            before = counter_value("serve.rejected")
            result = [None]
            thread = threading.Thread(
                target=lambda: result.__setitem__(
                    0, blocker.fetch_layout(profile_a, "all")
                )
            )
            thread.start()
            # Wait until the stalled optimization occupies the queue slot.
            deadline = time.monotonic() + 10
            while (
                handle.server._pending < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.server._pending == 1

            reply = rejected_client._call(
                LayoutRequest(profile_b.fingerprint(), "all")
            )
            # _call retries REJECTED; with max_attempts=1 it raises.
            pytest.fail(f"expected ServeError, got {reply!r}")
        except ServeError as exc:
            assert "admission control" in str(exc)
        finally:
            release.set()
            thread.join(timeout=60)
            handle.stop()
        assert counter_value("serve.rejected") > before
        assert result[0] is not None and result[0].ok

    def test_rejected_is_backpressure_not_a_fault(self):
        # A server that sheds every request exhausts the client's
        # attempts, but backpressure must never trip the breaker.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        stop = threading.Event()

        def shedding_server():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    with conn.makefile("rb") as stream:
                        if read_message_sync(stream) is None:
                            continue
                    conn.sendall(
                        encode_message(
                            LayoutResponse(
                                status="rejected",
                                error="admission control: retry later",
                            )
                        )
                    )

        thread = threading.Thread(target=shedding_server, daemon=True)
        thread.start()
        client = LayoutClient(
            listener.getsockname(),
            ClientConfig(
                max_attempts=2, backoff_s=0.01, breaker_threshold=1
            ),
        )
        try:
            with pytest.raises(ServeError, match="admission control"):
                client._call(LayoutRequest("fp", "all"))
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5)
        assert client.stats.rejected == 2
        assert client.stats.retries == 1
        assert client.breaker.state_name == "closed"
        assert client.breaker.trips == 0


class TestSwapGate:
    def test_corrupt_disk_entry_is_rebuilt(self, serve_env, tmp_path):
        binary, (profile, _) = serve_env
        store = ArtifactStore(tmp_path / "store")
        handle = ServerThread.start(
            binary, store=store, config=ServerConfig(workers=0)
        )
        try:
            client = make_client(handle)
            client.submit_profile(profile)
            first = client.fetch_layout(profile, "all")
            assert first.ok

            # Corrupt the persisted artifact (drop a block from the
            # first unit) and evict the memory tier so the next request
            # must go through the disk tier and its re-gate.
            path = store.path(
                profile.fingerprint(), "serve-layout-all.json"
            )
            document = json.loads(path.read_text())
            document["units"][0]["block_ids"] = document["units"][0][
                "block_ids"
            ][1:]
            path.write_text(json.dumps(document))
            handle.server.cache._memory.clear()

            before = counter_value("serve.gate_rejected")
            reply = client.fetch_layout(profile, "all")
            assert reply.ok
            assert reply.source == SOURCE_BUILT  # not the corrupt entry
            assert counter_value("serve.gate_rejected") == before + 1
            assert reply.status == STATUS_OK
        finally:
            handle.stop()
