"""Tests for the engine facade and transaction semantics."""

import pytest

from repro.errors import DatabaseError, KeyNotFoundError, TransactionError
from repro.db import CallTrace, Engine, LockWait, int_col, pad_col
from repro.db.wal import replay


def make_engine(trace=None):
    engine = Engine(pool_capacity=128, btree_order=16, trace=trace)
    engine.create_table(
        "items", [int_col("item_id"), int_col("value"), pad_col("pad", 20)], "item_id"
    )
    for i in range(50):
        engine.load_row("items", {"item_id": i, "value": i * 10})
    engine.checkpoint()
    return engine


class TestEngineBasics:
    def test_get_row(self):
        engine = make_engine()
        txn = engine.begin()
        row = engine.get_row(txn, "items", 7)
        engine.commit(txn)
        assert row == {"item_id": 7, "value": 70}

    def test_update_row_deltas_and_values(self):
        engine = make_engine()
        txn = engine.begin()
        row = engine.update_row(txn, "items", 3, deltas={"value": 5},
                                values={"item_id": 3})
        engine.commit(txn)
        assert row["value"] == 35
        txn = engine.begin()
        assert engine.get_row(txn, "items", 3)["value"] == 35
        engine.commit(txn)

    def test_insert_row_visible(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert_row(txn, "items", {"item_id": 100, "value": 1})
        engine.commit(txn)
        txn = engine.begin()
        assert engine.get_row(txn, "items", 100)["value"] == 1
        engine.commit(txn)

    def test_missing_key_raises(self):
        engine = make_engine()
        txn = engine.begin()
        with pytest.raises(KeyNotFoundError):
            engine.get_row(txn, "items", 999)
        engine.abort(txn)

    def test_unknown_table_raises(self):
        engine = make_engine()
        txn = engine.begin()
        with pytest.raises(DatabaseError):
            engine.get_row(txn, "ghosts", 1)
        engine.abort(txn)

    def test_duplicate_table_rejected(self):
        engine = make_engine()
        with pytest.raises(DatabaseError):
            engine.create_table("items", [int_col("x")], "x")

    def test_operations_on_committed_txn_rejected(self):
        engine = make_engine()
        txn = engine.begin()
        engine.commit(txn)
        with pytest.raises(TransactionError):
            engine.get_row(txn, "items", 1)
        with pytest.raises(TransactionError):
            engine.commit(txn)


class TestAbortAndRecovery:
    def test_abort_rolls_back_update(self):
        engine = make_engine()
        txn = engine.begin()
        engine.update_row(txn, "items", 4, deltas={"value": 100})
        engine.abort(txn)
        txn = engine.begin()
        assert engine.get_row(txn, "items", 4)["value"] == 40
        engine.commit(txn)

    def test_abort_rolls_back_insert(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert_row(txn, "items", {"item_id": 200, "value": 2})
        engine.abort(txn)
        txn = engine.begin()
        with pytest.raises(KeyNotFoundError):
            engine.get_row(txn, "items", 200)
        engine.commit(txn)

    def test_abort_releases_locks(self):
        engine = make_engine()
        txn1 = engine.begin()
        engine.update_row(txn1, "items", 5, deltas={"value": 1})
        engine.abort(txn1)
        txn2 = engine.begin()
        engine.update_row(txn2, "items", 5, deltas={"value": 2})
        engine.commit(txn2)

    def test_crash_recovery_replays_committed_work(self):
        engine = make_engine()
        txn = engine.begin()
        engine.update_row(txn, "items", 9, deltas={"value": 7})
        engine.commit(txn)
        # Crash: dirty pages in the pool are lost.  Replay the log
        # against the store and check the update survives.
        records = engine.log.hardened_records()
        replay(records, engine.store)
        fresh = Engine(pool_capacity=8)
        fresh.store = engine.store  # same "disk"
        page = engine.store.read(engine.tables["items"].heap.page_ids[0])
        assert page is not None  # structural smoke: store intact

    def test_run_transaction_commits(self):
        engine = make_engine()
        engine.run_transaction(
            lambda txn: engine.update_row(txn, "items", 2, deltas={"value": 1})
        )
        txn = engine.begin()
        assert engine.get_row(txn, "items", 2)["value"] == 21
        engine.commit(txn)

    def test_run_transaction_aborts_on_error(self):
        engine = make_engine()

        def work(txn):
            engine.update_row(txn, "items", 2, deltas={"value": 1})
            raise ValueError("boom")

        with pytest.raises(ValueError):
            engine.run_transaction(work)
        txn = engine.begin()
        assert engine.get_row(txn, "items", 2)["value"] == 20
        engine.commit(txn)


class TestLockWaitSignal:
    def test_conflicting_update_waits(self):
        engine = make_engine()
        txn1 = engine.begin()
        engine.update_row(txn1, "items", 1, deltas={"value": 1})
        txn2 = engine.begin()
        with pytest.raises(LockWait):
            engine.update_row(txn2, "items", 1, deltas={"value": 2})
        woken = engine.commit(txn1)
        assert woken == [txn2.txn_id]
        # Retry now succeeds (lock was granted at wakeup).
        engine.update_row(txn2, "items", 1, deltas={"value": 2})
        engine.commit(txn2)
        txn = engine.begin()
        assert engine.get_row(txn, "items", 1)["value"] == 13
        engine.commit(txn)


class TestTracing:
    def test_update_emits_expected_routine_events(self):
        trace = CallTrace()
        engine = Engine(pool_capacity=128, btree_order=16, trace=trace)
        engine.create_table("items", [int_col("item_id"), int_col("value")], "item_id")
        for i in range(20):
            engine.load_row("items", {"item_id": i, "value": 0})
        trace.take()  # discard load events
        txn = engine.begin()
        engine.update_row(txn, "items", 3, deltas={"value": 1})
        engine.commit(txn)
        events = trace.take()
        names = [e.name for e in events]
        assert names == ["txn_begin", "sql_update", "txn_commit"]
        update = events[1]
        assert update.bindings["table"] == "items"
        assert update.find("lock_acquire")
        lookups = update.find("btree_lookup")
        assert lookups and lookups[0].bindings["found"]
        assert update.find("buffer_get")
        assert update.find("wal_append")
        commit = events[2]
        assert commit.find("wal_flush")
        assert commit.find("k.write")

    def test_first_statement_parses_then_caches(self):
        trace = CallTrace()
        engine = Engine(pool_capacity=128, btree_order=16, trace=trace)
        engine.create_table("items", [int_col("item_id"), int_col("value")], "item_id")
        engine.load_row("items", {"item_id": 1, "value": 0})
        trace.take()
        txn = engine.begin()
        engine.get_row(txn, "items", 1)
        engine.get_row(txn, "items", 1)
        engine.commit(txn)
        events = trace.take()
        selects = [e for e in events if e.name == "sql_select"]
        first_lookup = selects[0].find("stmt_lookup")[0]
        second_lookup = selects[1].find("stmt_lookup")[0]
        assert not first_lookup.bindings["hit"]
        assert first_lookup.find("sql_parse")
        assert second_lookup.bindings["hit"]
        assert not second_lookup.find("sql_parse")

    def test_buffer_miss_emits_kernel_read(self):
        trace = CallTrace()
        engine = Engine(pool_capacity=4, btree_order=16, trace=trace)
        engine.create_table("items", [int_col("item_id"), int_col("value")], "item_id")
        for i in range(200):
            engine.load_row("items", {"item_id": i, "value": 0})
        engine.checkpoint()
        trace.take()
        txn = engine.begin()
        engine.get_row(txn, "items", 0)  # tiny pool: must miss somewhere
        engine.commit(txn)
        events = trace.take()
        select = next(e for e in events if e.name == "sql_select")
        misses = [e for e in select.find("buffer_get") if not e.bindings["hit"]]
        assert misses
        assert misses[0].find("k.read")
