"""Tests for the TPC-B workload: loading, transactions, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Engine
from repro.errors import WorkloadError
from repro.workloads import (
    TpcbConfig,
    TpcbGenerator,
    TpcbTransaction,
    load_database,
    run_transactions,
)


def small_config(**kwargs):
    defaults = dict(branches=3, accounts_per_branch=100, seed=7)
    defaults.update(kwargs)
    return TpcbConfig(**defaults)


def loaded_engine(config):
    engine = Engine(pool_capacity=4096, btree_order=64)
    load_database(engine, config)
    return engine


class TestLoading:
    def test_row_counts(self):
        config = small_config()
        engine = loaded_engine(config)
        txn = engine.begin()
        for branch_id in range(config.branches):
            assert engine.get_row(txn, "branch", branch_id)["balance"] == 0
        for teller_id in range(config.tellers):
            row = engine.get_row(txn, "teller", teller_id)
            assert row["branch_id"] == teller_id // config.tellers_per_branch
        engine.commit(txn)
        assert engine.tables["account"].index is not None
        assert engine.tables["history"].index is None

    def test_config_scaling(self):
        config = small_config()
        assert config.accounts == 300
        assert config.tellers == 30


class TestTransaction:
    def test_balance_conservation(self):
        config = small_config()
        engine = loaded_engine(config)
        net = run_transactions(engine, config, 40)
        txn = engine.begin()
        branch_total = sum(
            engine.get_row(txn, "branch", b)["balance"]
            for b in range(config.branches)
        )
        teller_total = sum(
            engine.get_row(txn, "teller", t)["balance"]
            for t in range(config.tellers)
        )
        engine.commit(txn)
        assert branch_total == net
        assert teller_total == net

    def test_history_grows_per_transaction(self):
        config = small_config()
        engine = loaded_engine(config)
        run_transactions(engine, config, 25)
        assert engine.tables["history"].heap.num_records == 25

    def test_generator_deterministic(self):
        config = small_config()
        first = [TpcbGenerator(config, 1).next_request() for _ in range(5)]
        second = [TpcbGenerator(config, 1).next_request() for _ in range(5)]
        assert first == second

    def test_generator_clients_differ(self):
        config = small_config()
        a = TpcbGenerator(config, 0).next_request()
        b = TpcbGenerator(config, 1).next_request()
        assert (a.account_id, a.teller_id) != (b.account_id, b.teller_id)

    def test_home_branch_matches_teller(self):
        config = small_config()
        for client in range(10):
            gen = TpcbGenerator(config, client)
            request = gen.next_request()
            assert request.branch_id == request.teller_id // config.tellers_per_branch

    def test_step_machine_runs_to_done(self):
        config = small_config()
        engine = loaded_engine(config)
        request = TpcbGenerator(config, 0).next_request()
        txn = TpcbTransaction(engine, request)
        steps = 0
        while not txn.done:
            txn.run_step()
            steps += 1
        assert steps == 6
        with pytest.raises(WorkloadError):
            txn.run_step()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=30))
    def test_conservation_property(self, count):
        config = small_config(seed=99)
        engine = loaded_engine(config)
        net = run_transactions(engine, config, count)
        txn = engine.begin()
        total = sum(
            engine.get_row(txn, "branch", b)["balance"]
            for b in range(config.branches)
        )
        engine.commit(txn)
        assert total == net
