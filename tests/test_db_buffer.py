"""Tests for the buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.db.buffer import BufferPool
from repro.db.storage import PageStore


def make_pool(capacity=3):
    store = PageStore()
    pool = BufferPool(store, capacity=capacity)
    ids = []
    for _ in range(6):
        page = pool.new_page()
        ids.append(page.page_id)
        pool.unpin(page.page_id, dirty=True)
    pool.flush_all()
    return store, pool, ids


class TestBufferPool:
    def test_capacity_validated(self):
        with pytest.raises(BufferPoolError):
            BufferPool(PageStore(), capacity=0)

    def test_hit_after_fetch(self):
        _, pool, ids = make_pool()
        pool.fetch(ids[5])
        pool.unpin(ids[5], dirty=False)
        misses = pool.misses
        pool.fetch(ids[5])
        pool.unpin(ids[5], dirty=False)
        assert pool.misses == misses
        assert pool.hits >= 1

    def test_lru_eviction_order(self):
        _, pool, ids = make_pool(capacity=2)
        # Pool currently holds the 2 most recently created pages.
        pool.fetch(ids[0])
        pool.unpin(ids[0], dirty=False)
        pool.fetch(ids[1])
        pool.unpin(ids[1], dirty=False)
        # ids[0] is now LRU; touching ids[2] evicts it.
        pool.fetch(ids[2])
        pool.unpin(ids[2], dirty=False)
        assert not pool.contains(ids[0])
        assert pool.contains(ids[1])

    def test_pinned_pages_not_evicted(self):
        _, pool, ids = make_pool(capacity=2)
        pool.fetch(ids[0])  # pinned
        pool.fetch(ids[1])
        pool.unpin(ids[1], dirty=False)
        pool.fetch(ids[2])  # must evict ids[1], not pinned ids[0]
        pool.unpin(ids[2], dirty=False)
        assert pool.contains(ids[0])
        assert not pool.contains(ids[1])
        pool.unpin(ids[0], dirty=False)

    def test_all_pinned_raises(self):
        _, pool, ids = make_pool(capacity=2)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        with pytest.raises(BufferPoolError):
            pool.fetch(ids[2])

    def test_dirty_page_written_back_on_eviction(self):
        store, pool, ids = make_pool(capacity=2)
        page = pool.fetch(ids[0])
        page.insert(b"dirty data")
        pool.unpin(ids[0], dirty=True)
        # Force eviction of ids[0].
        pool.fetch(ids[1])
        pool.unpin(ids[1], dirty=False)
        pool.fetch(ids[2])
        pool.unpin(ids[2], dirty=False)
        assert not pool.contains(ids[0])
        assert store.read(ids[0]).read(0) == b"dirty data"

    def test_unpin_without_pin_rejected(self):
        _, pool, ids = make_pool()
        with pytest.raises(BufferPoolError):
            pool.unpin(ids[0], dirty=False)

    def test_flush_all_clears_dirty(self):
        store, pool, ids = make_pool()
        page = pool.fetch(ids[5])
        page.insert(b"x")
        pool.unpin(ids[5], dirty=True)
        assert pool.flush_all() == 1
        assert pool.flush_all() == 0

    def test_access_hook(self):
        _, pool, ids = make_pool(capacity=2)
        events = []
        pool.on_access = lambda pid, hit: events.append((pid, hit))
        pool.fetch(ids[0])
        pool.unpin(ids[0], dirty=False)
        pool.fetch(ids[0])
        pool.unpin(ids[0], dirty=False)
        assert events == [(ids[0], False), (ids[0], True)]

    def test_hit_rate(self):
        _, pool, ids = make_pool(capacity=6)
        for _ in range(3):
            pool.fetch(ids[0])
            pool.unpin(ids[0], dirty=False)
        assert 0.0 < pool.hit_rate <= 1.0
