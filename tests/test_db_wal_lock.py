"""Tests for the WAL (including crash recovery) and the lock manager."""

import pytest

from repro.errors import DeadlockError
from repro.db.lock import LockManager, LockMode
from repro.db.storage import PageStore
from repro.db.wal import LogKind, LogManager, replay


class TestLogManager:
    def test_lsns_increase(self):
        log = LogManager()
        first = log.append(1, LogKind.BEGIN)
        second = log.append(1, LogKind.COMMIT)
        assert second == first + 1

    def test_flush_hardens_tail(self):
        log = LogManager()
        lsn = log.append(1, LogKind.BEGIN)
        assert not log.is_hardened(lsn)
        log.flush()
        assert log.is_hardened(lsn)

    def test_flush_empty_is_noop(self):
        log = LogManager()
        assert log.flush() == 0
        assert log.flushes == 0

    def test_group_commit_batches(self):
        log = LogManager()
        log.append(1, LogKind.COMMIT)
        log.append(2, LogKind.COMMIT)
        log.append(3, LogKind.COMMIT)
        log.flush()
        assert log.group_sizes == [3]

    def test_flush_hook_reports_bytes(self):
        log = LogManager()
        seen = []
        log.on_flush = seen.append
        log.append(1, LogKind.UPDATE, table="t", rid=(1, 0),
                   before=b"a" * 10, after=b"b" * 10)
        log.flush()
        assert seen == [52]  # 32 header + 20 images


class TestRecovery:
    def test_committed_update_redone(self):
        store = PageStore()
        page = store.allocate()
        page.insert(b"old-value")
        store.write(page)
        log = LogManager()
        log.append(1, LogKind.BEGIN)
        log.append(1, LogKind.UPDATE, table="t", rid=(page.page_id, 0),
                   before=b"old-value", after=b"new-value")
        log.append(1, LogKind.COMMIT)
        log.flush()
        # Crash: the dirty page never reached the store.  Recover.
        winners, applied = replay(log.hardened_records(), store)
        assert (winners, applied) == (1, 1)
        assert store.read(page.page_id).read(0) == b"new-value"

    def test_uncommitted_txn_ignored(self):
        store = PageStore()
        page = store.allocate()
        page.insert(b"old-value")
        store.write(page)
        log = LogManager()
        log.append(1, LogKind.BEGIN)
        log.append(1, LogKind.UPDATE, table="t", rid=(page.page_id, 0),
                   before=b"old-value", after=b"new-value")
        log.flush()  # no COMMIT hardened
        winners, applied = replay(log.hardened_records(), store)
        assert (winners, applied) == (0, 0)
        assert store.read(page.page_id).read(0) == b"old-value"

    def test_committed_insert_redone_idempotently(self):
        store = PageStore()
        page = store.allocate()
        store.write(page)
        log = LogManager()
        log.append(2, LogKind.INSERT, table="t", rid=(page.page_id, 0),
                   after=b"row-bytes")
        log.append(2, LogKind.COMMIT)
        log.flush()
        replay(log.hardened_records(), store)
        assert store.read(page.page_id).read(0) == b"row-bytes"
        # Replaying again must not duplicate the row.
        _, applied = replay(log.hardened_records(), store)
        assert applied == 0


class TestLockManager:
    def test_exclusive_grant_and_conflict(self):
        locks = LockManager()
        assert locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(2, "r", LockMode.EXCLUSIVE)
        assert locks.queue_length("r") == 1

    def test_shared_locks_compatible(self):
        locks = LockManager()
        assert locks.try_acquire(1, "r", LockMode.SHARED)
        assert locks.try_acquire(2, "r", LockMode.SHARED)

    def test_reentrant_acquire(self):
        locks = LockManager()
        assert locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.try_acquire(1, "r", LockMode.SHARED)  # weaker ok

    def test_upgrade_when_sole_holder(self):
        locks = LockManager()
        assert locks.try_acquire(1, "r", LockMode.SHARED)
        assert locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r") is LockMode.EXCLUSIVE

    def test_release_wakes_fifo(self):
        locks = LockManager()
        locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(2, "r", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(3, "r", LockMode.EXCLUSIVE)
        woken = locks.release_all(1)
        assert woken == [2]
        assert locks.holds(2, "r") is LockMode.EXCLUSIVE
        woken = locks.release_all(2)
        assert woken == [3]

    def test_release_wakes_shared_batch(self):
        locks = LockManager()
        locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        locks.try_acquire(2, "r", LockMode.SHARED)
        locks.try_acquire(3, "r", LockMode.SHARED)
        woken = locks.release_all(1)
        assert sorted(woken) == [2, 3]

    def test_deadlock_detected(self):
        locks = LockManager()
        locks.try_acquire(1, "a", LockMode.EXCLUSIVE)
        locks.try_acquire(2, "b", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(1, "b", LockMode.EXCLUSIVE)  # 1 waits on 2
        with pytest.raises(DeadlockError):
            locks.try_acquire(2, "a", LockMode.EXCLUSIVE)  # closes the cycle
        assert locks.deadlocks == 1

    def test_no_false_deadlock_on_chain(self):
        locks = LockManager()
        locks.try_acquire(1, "a", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(2, "a", LockMode.EXCLUSIVE)
        assert not locks.try_acquire(3, "a", LockMode.EXCLUSIVE)  # chain, no cycle

    def test_cancel_waits(self):
        locks = LockManager()
        locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        locks.try_acquire(2, "r", LockMode.EXCLUSIVE)
        locks.cancel_waits(2)
        assert locks.queue_length("r") == 0

    def test_queued_request_does_not_requeue(self):
        locks = LockManager()
        locks.try_acquire(1, "r", LockMode.EXCLUSIVE)
        locks.try_acquire(2, "r", LockMode.EXCLUSIVE)
        locks.try_acquire(2, "r", LockMode.EXCLUSIVE)  # retry while parked
        assert locks.queue_length("r") == 1
