"""Tests for the analysis metrics (sequences, footprint, interference)."""

import numpy as np
import pytest

from repro.analysis import (
    InterferenceBreakdown,
    capture_at,
    dynamic_footprint_bytes,
    execution_profile_curve,
    footprint_in_lines,
    mean_basic_block_size,
    merge_sequence_stats,
    sequence_lengths,
    union_footprint_in_lines,
)
from repro.cache.stats import APP, KERNEL, InterferenceMatrix
from repro.ir import Binary, Procedure, Terminator
from repro.profiles import PixieProfiler


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestSequenceLengths:
    def test_contiguous_spans_merge(self):
        # 4 instrs at 0, next span starts exactly at byte 16: one run.
        starts, counts = spans((0, 4), (16, 4))
        stats = sequence_lengths(starts, counts)
        assert stats.total_sequences == 1
        assert stats.mean_length == 8

    def test_break_splits_runs(self):
        starts, counts = spans((0, 4), (100, 4))
        stats = sequence_lengths(starts, counts)
        assert stats.total_sequences == 2
        assert stats.histogram[4] == 2

    def test_long_runs_capped(self):
        starts, counts = spans((0, 100))
        stats = sequence_lengths(starts, counts, max_length=33)
        assert stats.histogram[33] == 1
        assert stats.total_instructions == 100

    def test_zero_count_spans_ignored(self):
        starts, counts = spans((0, 4), (16, 0), (16, 4))
        stats = sequence_lengths(starts, counts)
        assert stats.total_sequences == 1

    def test_empty(self):
        stats = sequence_lengths(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert stats.mean_length == 0.0

    def test_merge(self):
        s1 = sequence_lengths(*spans((0, 4)))
        s2 = sequence_lengths(*spans((0, 6)))
        merged = merge_sequence_stats([s1, s2])
        assert merged.total_sequences == 2
        assert merged.mean_length == 5

    def test_fractions_sum_to_one(self):
        stats = sequence_lengths(*spans((0, 4), (100, 7), (999 * 4, 2)))
        assert stats.fractions().sum() == pytest.approx(1.0)

    def test_mean_basic_block_size(self):
        sizes = np.array([10, 2], dtype=np.int64)
        blocks = np.array([0, 0, 1], dtype=np.int64)
        assert mean_basic_block_size(blocks, sizes) == pytest.approx(22 / 3)


class TestFootprint:
    def make_profile(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("hot", 10, Terminator.COND_BRANCH, succs=("hot", "cold"))
        proc.add_block("cold", 30, Terminator.RETURN)
        binary.add_procedure(proc)
        binary.seal()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0] * 99 + [1])
        return profiler.profile()

    def test_curve_monotone(self):
        footprint, cumulative = execution_profile_curve(self.make_profile())
        assert (np.diff(cumulative) >= 0).all()
        assert cumulative[-1] == pytest.approx(1.0)

    def test_hot_code_captured_first(self):
        profile = self.make_profile()
        # The 10 hot instructions (40 bytes) carry 990/1020 of execution.
        assert capture_at(profile, 40) == pytest.approx(990 / 1020)

    def test_dynamic_footprint(self):
        assert dynamic_footprint_bytes(self.make_profile()) == 160

    def test_footprint_in_lines(self):
        starts, counts = spans((0, 4), (1024, 4))
        assert footprint_in_lines(starts, counts, 128) == 2

    def test_union_footprint_deduplicates(self):
        s1 = spans((0, 4))
        s2 = spans((0, 4), (1024, 4))
        assert union_footprint_in_lines([s1, s2], 128) == 2


class TestInterferenceBreakdown:
    def test_rows_and_both(self):
        matrix = InterferenceMatrix()
        matrix.record(APP, APP)
        matrix.record(APP, APP)
        matrix.record(APP, KERNEL)
        matrix.record(KERNEL, APP)
        breakdown = InterferenceBreakdown.from_matrix(matrix)
        assert breakdown.rows[APP] == {APP: 2, KERNEL: 1}
        assert breakdown.rows["both"] == {APP: 3, KERNEL: 1}

    def test_self_interference_fraction(self):
        matrix = InterferenceMatrix()
        matrix.record(APP, APP)
        matrix.record(APP, APP)
        matrix.record(APP, KERNEL)
        breakdown = InterferenceBreakdown.from_matrix(matrix)
        assert breakdown.self_interference_fraction(APP) == pytest.approx(2 / 3)
