"""Property test: the batched engine is bit-identical to classic.

The acceptance bar for ``repro.sim.simulate_grid`` is exact equality
with the per-cell reference engine -- across random stream shapes,
geometry grids, and chunk sizes small enough to force fetch spans to be
split at chunk boundaries (the trickiest carry path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry
from repro.ir import INSTRUCTION_BYTES
from repro.sim import classic, iter_chunks, simulate_grid
from repro.sim.batch import _expand_lines


def reference_grid(streams, sizes, lines):
    grid = {}
    for size in sizes:
        for line in lines:
            geometry = CacheGeometry(size, line, 1)
            grid[(size, line)] = sum(
                classic.direct_mapped_misses(s, c, geometry)
                for s, c in streams
            )
    return grid


@st.composite
def stream_lists(draw):
    n_streams = draw(st.integers(min_value=1, max_value=3))
    streams = []
    for _ in range(n_streams):
        n_spans = draw(st.integers(min_value=0, max_value=60))
        starts = draw(
            st.lists(
                st.integers(min_value=0, max_value=4096),
                min_size=n_spans, max_size=n_spans,
            )
        )
        counts = draw(
            st.lists(
                st.integers(min_value=0, max_value=48),
                min_size=n_spans, max_size=n_spans,
            )
        )
        streams.append((
            np.asarray(starts, dtype=np.int64) * INSTRUCTION_BYTES,
            np.asarray(counts, dtype=np.int64),
        ))
    return streams


@st.composite
def geometry_grids(draw):
    # 96KB-style non-power-of-two sizes exercise the argsort fallback
    # (set counts that are not power-of-two multiples of each other).
    sizes = draw(
        st.lists(
            st.sampled_from([512, 1024, 1536, 2048, 4096, 8192]),
            min_size=1, max_size=4, unique=True,
        )
    )
    lines = draw(
        st.lists(
            st.sampled_from([16, 32, 64, 128]),
            min_size=1, max_size=3, unique=True,
        )
    )
    return sizes, lines


class TestBatchedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        streams=stream_lists(),
        grid=geometry_grids(),
        chunk=st.integers(min_value=1, max_value=700),
    )
    def test_bit_identical_to_classic(self, streams, grid, chunk):
        sizes, lines = grid
        if all(int(c.sum()) == 0 for _, c in streams):
            return  # simulate_grid requires streams; zero-work is fine
        batched = simulate_grid(
            streams, sizes, lines, chunk_instructions=chunk, jobs=1
        )
        assert batched == reference_grid(streams, sizes, lines)

    def test_span_splitting_boundary(self):
        # One long span forced across many chunk boundaries: the
        # boundary line is fetched by both halves and must collapse.
        streams = [(
            np.array([0, 64], dtype=np.int64),
            np.array([1000, 500], dtype=np.int64),
        )]
        sizes, lines = (1024, 2048), (32, 64)
        for chunk in (1, 3, 7, 100, 999, 1001):
            got = simulate_grid(
                streams, sizes, lines, chunk_instructions=chunk, jobs=1
            )
            assert got == reference_grid(streams, sizes, lines), chunk


class TestIterChunks:
    @settings(max_examples=40, deadline=None)
    @given(
        spans=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2048),
                st.integers(min_value=0, max_value=64),
            ),
            max_size=40,
        ),
        chunk=st.integers(min_value=1, max_value=300),
        line=st.sampled_from([16, 32, 64]),
    )
    def test_chunks_preserve_the_line_sequence(self, spans, chunk, line):
        starts = np.asarray(
            [s * INSTRUCTION_BYTES for s, _ in spans], dtype=np.int64
        )
        counts = np.asarray([c for _, c in spans], dtype=np.int64)
        whole = _expand_lines(
            starts[counts > 0], counts[counts > 0], line
        )
        pieces = [
            _expand_lines(cs, cc, line)
            for cs, cc in iter_chunks(starts, counts, chunk)
        ]
        rejoined = (
            np.concatenate(pieces) if pieces else np.zeros(0, np.int64)
        )

        def collapse(lines_arr):
            if len(lines_arr) == 0:
                return lines_arr
            keep = np.empty(len(lines_arr), dtype=bool)
            keep[0] = True
            keep[1:] = lines_arr[1:] != lines_arr[:-1]
            return lines_arr[keep]

        assert np.array_equal(collapse(rejoined), collapse(whole))

    @settings(max_examples=40, deadline=None)
    @given(
        spans=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2048),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1, max_size=40,
        ),
        chunk=st.integers(min_value=1, max_value=300),
    )
    def test_chunks_respect_the_budget(self, spans, chunk):
        starts = np.asarray(
            [s * INSTRUCTION_BYTES for s, _ in spans], dtype=np.int64
        )
        counts = np.asarray([c for _, c in spans], dtype=np.int64)
        total = 0
        for cs, cc in iter_chunks(starts, counts, chunk):
            assert int(cc.sum()) <= chunk
            assert (cc > 0).all()
            total += int(cc.sum())
        assert total == int(counts.sum())

    def test_chunk_budget_must_be_positive(self):
        from repro.errors import SimulationError

        starts = np.array([0], dtype=np.int64)
        counts = np.array([4], dtype=np.int64)
        with pytest.raises(SimulationError, match="chunk_instructions"):
            list(iter_chunks(starts, counts, 0))
