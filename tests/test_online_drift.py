"""Property and behavior tests for the online drift metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfileError
from repro.ir import Binary, Procedure, Terminator
from repro.online import (
    DriftDetector,
    drift_score,
    drifted_procedures,
    edge_divergence,
    hotset_overlap,
    refresh_score,
    weighted_divergence,
)
from repro.profiles import Profile

#: 3 procedures x 4 blocks, mixed sizes: 12 blocks total.
PROC_SIZES = [[10, 4, 6, 2], [8, 8, 3, 5], [12, 2, 2, 9]]


def make_binary(proc_sizes=None):
    binary = Binary()
    for p, sizes in enumerate(proc_sizes or PROC_SIZES):
        proc = Procedure(f"p{p}")
        for b, size in enumerate(sizes):
            proc.add_block(f"b{b}", size, Terminator.RETURN)
        binary.add_procedure(proc)
    binary.seal()
    return binary


BINARY = make_binary()
N_BLOCKS = BINARY.num_blocks
#: Equal-sized blocks: weight shifts equal count shifts exactly.
FLAT_BINARY = make_binary([[10] * 4, [10] * 4, [10] * 4])


def profile_from(counts, binary=BINARY, edges=None):
    profile = Profile(binary)
    profile.block_counts = np.asarray(counts, dtype=np.int64)
    if edges:
        for edge, count in edges.items():
            profile.edge_counts[edge] = count
    return profile


counts_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=N_BLOCKS,
    max_size=N_BLOCKS,
)


class TestDivergenceProperties:
    @given(counts=counts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_identical_profiles_diverge_zero(self, counts):
        p = profile_from(counts)
        q = profile_from(counts)
        assert weighted_divergence(p, q) == 0.0
        assert weighted_divergence(p, q, granularity="proc") == 0.0
        assert refresh_score(p, q) == 0.0

    @given(counts=counts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_scaling_is_invisible(self, counts):
        # The metric compares distributions: doubling every count is
        # the same workload running longer, not drift.
        p = profile_from(counts)
        q = profile_from([c * 3 for c in counts])
        assert weighted_divergence(p, q) == pytest.approx(0.0, abs=1e-12)

    @given(a=counts_strategy, b=counts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, a, b):
        p, q = profile_from(a), profile_from(b)
        for granularity in ("block", "proc"):
            assert weighted_divergence(p, q, granularity) == pytest.approx(
                weighted_divergence(q, p, granularity)
            )
        assert hotset_overlap(p, q) == pytest.approx(hotset_overlap(q, p))
        assert drift_score(p, q) == pytest.approx(drift_score(q, p))

    @given(a=counts_strategy, b=counts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, a, b):
        p, q = profile_from(a), profile_from(b)
        assert 0.0 <= weighted_divergence(p, q) <= 1.0
        assert 0.0 <= hotset_overlap(p, q) <= 1.0
        assert 0.0 <= drift_score(p, q) <= 1.0

    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=12,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_under_hotset_replacement(self, counts):
        # Replacing ever more of the hot set with cold code can only
        # move the divergence up: d(p, replace(p, k)) is non-decreasing
        # in k.  Equal block sizes make the weight shift exact.
        p = profile_from(counts, binary=FLAT_BINARY)
        order = np.argsort(-np.asarray(counts, dtype=np.int64), kind="stable")
        previous = -1.0
        for k in range(len(counts)):
            replaced = list(counts)
            moved = 0
            for bid in order[: k + 1]:
                moved += replaced[bid]
                replaced[bid] = 0
            # The displaced work lands on the coldest block.
            replaced[order[-1]] += moved
            q = profile_from(replaced, binary=FLAT_BINARY)
            current = weighted_divergence(p, q)
            assert current >= previous - 1e-12
            previous = current

    def test_divergence_one_for_disjoint_profiles(self):
        p = profile_from([100] + [0] * (N_BLOCKS - 1))
        q = profile_from([0] * (N_BLOCKS - 1) + [100])
        assert weighted_divergence(p, q) == pytest.approx(1.0)

    def test_different_binaries_rejected(self):
        p = profile_from([1] * N_BLOCKS, binary=make_binary())
        q = profile_from([1] * N_BLOCKS, binary=make_binary())
        with pytest.raises(ProfileError):
            weighted_divergence(p, q)
        with pytest.raises(ProfileError):
            hotset_overlap(p, q)

    def test_unknown_granularity_rejected(self):
        p = profile_from([1] * N_BLOCKS)
        with pytest.raises(ProfileError, match="granularity"):
            weighted_divergence(p, p, granularity="bogus")

    def test_proc_granularity_hides_intra_procedure_shuffles(self):
        # Moving work between equal-sized blocks of one procedure is
        # invisible at procedure granularity but visible at block level.
        p = profile_from([9, 0, 0, 0] + [0] * 8, binary=FLAT_BINARY)
        q = profile_from([0, 9, 0, 0] + [0] * 8, binary=FLAT_BINARY)
        assert weighted_divergence(p, q, granularity="proc") == 0.0
        assert weighted_divergence(p, q, granularity="block") > 0.0


class TestHotsetOverlap:
    def test_identical_hotsets_overlap_fully(self):
        p = profile_from([5, 4, 3] + [0] * (N_BLOCKS - 3))
        assert hotset_overlap(p, p) == 1.0

    def test_empty_profiles_overlap_fully(self):
        p = profile_from([0] * N_BLOCKS)
        assert hotset_overlap(p, p) == 1.0

    def test_disjoint_hotsets_overlap_zero(self):
        p = profile_from([5, 4] + [0] * (N_BLOCKS - 2))
        q = profile_from([0, 0, 5, 4] + [0] * (N_BLOCKS - 4))
        assert hotset_overlap(p, q, k=2) == 0.0

    def test_k_limits_the_set(self):
        p = profile_from(list(range(N_BLOCKS, 0, -1)))
        q = profile_from(list(range(N_BLOCKS, 0, -1)))
        assert hotset_overlap(p, q, k=3) == 1.0


class TestEdgeDivergence:
    def test_identical_edges_diverge_zero(self):
        edges = {(0, 1): 10, (1, 2): 5}
        p = profile_from([10, 10, 5] + [0] * (N_BLOCKS - 3), edges=edges)
        q = profile_from([10, 10, 5] + [0] * (N_BLOCKS - 3), edges=dict(edges))
        assert edge_divergence(p, q) == 0.0

    def test_scale_invariant(self):
        p = profile_from([1] * N_BLOCKS, edges={(0, 1): 10, (1, 2): 5})
        q = profile_from([1] * N_BLOCKS, edges={(0, 1): 20, (1, 2): 10})
        assert edge_divergence(p, q) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_edges_diverge_one(self):
        p = profile_from([1] * N_BLOCKS, edges={(0, 1): 10})
        q = profile_from([1] * N_BLOCKS, edges={(2, 3): 10})
        assert edge_divergence(p, q) == pytest.approx(1.0)

    def test_falls_back_to_block_divergence_without_edges(self):
        p = profile_from([10, 0, 0] + [0] * (N_BLOCKS - 3))
        q = profile_from([0, 0, 10] + [0] * (N_BLOCKS - 3))
        assert edge_divergence(p, q) == weighted_divergence(p, q)


class TestDriftedProcedures:
    def test_shifted_procedures_ranked_first(self):
        # All work moves from p0 to p2: both carry the whole shift.
        p = profile_from([50, 50, 0, 0] + [0] * 8, binary=FLAT_BINARY)
        q = profile_from([0] * 8 + [50, 50, 0, 0], binary=FLAT_BINARY)
        drifted = drifted_procedures(p, q)
        assert set(drifted) == {"p0", "p2"}

    def test_identical_profiles_no_drifted_procs(self):
        p = profile_from([1] * N_BLOCKS)
        assert drifted_procedures(p, p) == []

    def test_coverage_bounds_the_set(self):
        # p0 carries 90% of the shift; low coverage stops there.
        p = profile_from([90, 0, 0, 0, 10, 0, 0, 0] + [0] * 4,
                         binary=FLAT_BINARY)
        q = profile_from([0] * 8 + [90, 0, 10, 0], binary=FLAT_BINARY)
        tight = drifted_procedures(p, q, coverage=0.5)
        full = drifted_procedures(p, q, coverage=1.0)
        assert len(tight) < len(full)
        with pytest.raises(ProfileError, match="coverage"):
            drifted_procedures(p, q, coverage=0.0)


class TestDriftDetector:
    def test_fires_on_phase_shift(self):
        reference = profile_from([100, 50, 20, 10] + [0] * 8)
        detector = DriftDetector(reference, threshold=0.4)
        shifted = profile_from([0] * 8 + [100, 50, 20, 10])
        report = detector.observe(shifted)
        assert report.drifted and report.fired
        assert report.score > 0.4

    def test_quiet_on_identical_profile(self):
        reference = profile_from([100, 50, 20, 10] + [0] * 8)
        detector = DriftDetector(reference)
        report = detector.observe(profile_from([100, 50, 20, 10] + [0] * 8))
        assert not report.fired
        assert report.score == pytest.approx(0.0, abs=1e-12)

    def test_refresh_fires_on_accumulated_residual_drift(self):
        # A mildly-off epoch stays under the hard threshold but the
        # accumulated evidence crosses the refresh bar.
        reference = profile_from([100, 100, 100, 100] + [0] * 8,
                                 binary=FLAT_BINARY)
        detector = DriftDetector(
            reference, threshold=0.9, refresh_threshold=0.16
        )
        residual = profile_from([100, 100, 100, 100] + [100, 0, 0, 0] + [0] * 4,
                                binary=FLAT_BINARY)
        report = detector.observe(residual)
        assert not report.drifted
        assert report.refresh and report.fired
        assert report.refresh_score > 0.16

    def test_rebase_resets_accumulation(self):
        reference = profile_from([100] * 4 + [0] * 8, binary=FLAT_BINARY)
        detector = DriftDetector(reference, threshold=0.9,
                                 refresh_threshold=0.16)
        detector.observe(profile_from([100] * 4 + [30, 0, 0, 0] + [0] * 4,
                                      binary=FLAT_BINARY))
        assert detector.accumulated is not None
        detector.rebase(reference)
        assert detector.accumulated is None

    def test_threshold_validation(self):
        reference = profile_from([1] * N_BLOCKS)
        with pytest.raises(ProfileError):
            DriftDetector(reference, threshold=0.0)
        with pytest.raises(ProfileError):
            DriftDetector(reference, threshold=0.3, refresh_threshold=0.5)
