"""Wire-protocol round trips and violation handling for repro.serve."""

import io
import json
import struct

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    STATUS_OK,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    LayoutRequest,
    LayoutResponse,
    ProfileSubmit,
    SubmitAck,
    decode_body,
    encode_message,
    read_message_sync,
)


def roundtrip(message):
    frame = encode_message(message)
    (length,) = struct.unpack("!I", frame[:4])
    assert length == len(frame) - 4
    assert frame[4:].endswith(b"\n")
    return decode_body(frame[4:])


class TestRoundTrips:
    def test_every_message_type_round_trips(self):
        messages = [
            ProfileSubmit(
                binary="app",
                fingerprint="abc123",
                block_counts=[1, 0, 7],
                edges=[[0, 2, 5]],
            ),
            SubmitAck(fingerprint="abc123", known=True),
            LayoutRequest(fingerprint="abc123", combo="hotcold"),
            LayoutResponse(
                status=STATUS_OK,
                fingerprint="abc123",
                combo="all",
                source="built",
                layout={"name": "l", "alignment": 16, "units": []},
                queue_wait_ms=1.5,
            ),
            HealthRequest(),
            HealthResponse(
                status="ok",
                uptime_s=2.0,
                inflight=1,
                profiles=3,
                counters={"serve.requests": 4},
            ),
            ErrorResponse(message="nope"),
        ]
        assert {m.TYPE for m in messages} == set(MESSAGE_TYPES)
        for message in messages:
            assert roundtrip(message) == message

    def test_frame_is_jsonl(self):
        frame = encode_message(HealthRequest())
        envelope = json.loads(frame[4:].decode())
        assert envelope["v"] == PROTOCOL_VERSION
        assert envelope["type"] == "health"

    def test_layout_response_ok_property(self):
        assert LayoutResponse(status=STATUS_OK, layout={"units": []}).ok
        assert not LayoutResponse(status=STATUS_OK, layout=None).ok
        assert not LayoutResponse(status="error", layout={"units": []}).ok

    def test_layout_request_defaults_combo(self):
        parsed = decode_body(
            json.dumps(
                {
                    "v": PROTOCOL_VERSION,
                    "type": "layout_request",
                    "payload": {"fingerprint": "f"},
                }
            ).encode()
        )
        assert parsed.combo == "all"


class TestViolations:
    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed frame body"):
            decode_body(b"{not json\n")

    def test_non_object_envelope(self):
        with pytest.raises(ProtocolError, match="expected an envelope"):
            decode_body(b"[1,2,3]\n")

    def test_version_mismatch(self):
        body = json.dumps({"v": 99, "type": "health", "payload": {}}).encode()
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_body(body)

    def test_unknown_type(self):
        body = json.dumps(
            {"v": PROTOCOL_VERSION, "type": "surprise", "payload": {}}
        ).encode()
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_body(body)

    def test_malformed_payload(self):
        body = json.dumps(
            {"v": PROTOCOL_VERSION, "type": "profile_submit", "payload": {}}
        ).encode()
        with pytest.raises(ProtocolError, match="malformed"):
            decode_body(body)


class TestSyncReader:
    def test_reads_consecutive_frames_then_clean_eof(self):
        stream = io.BytesIO(
            encode_message(HealthRequest())
            + encode_message(SubmitAck(fingerprint="f", known=False))
        )
        assert isinstance(read_message_sync(stream), HealthRequest)
        assert isinstance(read_message_sync(stream), SubmitAck)
        assert read_message_sync(stream) is None

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="frame bytes"):
            read_message_sync(io.BytesIO(b"\x00\x00"))

    def test_truncated_body(self):
        frame = encode_message(HealthRequest())
        with pytest.raises(ProtocolError, match="connection closed"):
            read_message_sync(io.BytesIO(frame[:-2]))

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="invalid frame length"):
            read_message_sync(io.BytesIO(struct.pack("!I", 0) + b"x"))

    def test_oversized_frame_rejected(self):
        header = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="invalid frame length"):
            read_message_sync(io.BytesIO(header))


class TestProfileSubmit:
    def test_profile_round_trip(self, serve_env):
        binary, (profile, _) = serve_env
        submit = ProfileSubmit.from_profile(profile)
        assert submit.binary == binary.name
        assert submit.fingerprint == profile.fingerprint()
        rebuilt = roundtrip(submit).to_profile(binary)
        assert rebuilt.fingerprint() == profile.fingerprint()
        assert np.array_equal(rebuilt.block_counts, profile.block_counts)

    def test_wrong_binary_name_refused(self, serve_env):
        _, (profile, _) = serve_env
        submit = ProfileSubmit.from_profile(profile)
        submit.binary = "someone-else"
        binary, _ = serve_env
        with pytest.raises(ProtocolError, match="different binary|server optimizes"):
            submit.to_profile(binary)

    def test_wrong_block_count_refused(self, serve_env):
        binary, (profile, _) = serve_env
        submit = ProfileSubmit.from_profile(profile)
        submit.block_counts = submit.block_counts[:-1]
        with pytest.raises(ProtocolError, match="blocks"):
            submit.to_profile(binary)
