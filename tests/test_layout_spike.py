"""Tests for the SpikeOptimizer pipelines, including layout invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.ir import INSTRUCTION_BYTES, assign_addresses
from repro.layout import ALL_COMBOS, PAPER_COMBOS, SpikeOptimizer
from repro.profiles import PixieProfiler, Profile
from repro.progen import (
    AppCodeConfig,
    build_app_program,
    Call,
    If,
    RoutineSpec,
    Straight,
    build_binary,
)


@pytest.fixture(scope="module")
def small_program():
    return build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=20, filler_instructions=5_000)
    )


@pytest.fixture(scope="module")
def profiled(small_program):
    """A synthetic profile touching a few routines."""
    from repro.execution import CfgWalker
    from repro.osmodel import KernelCodeConfig, build_kernel_program
    from repro.db.instrument import CallEvent

    kernel = build_kernel_program(KernelCodeConfig(scale=0.5, filler_routines=4,
                                                   filler_instructions=1000))
    walker = CfgWalker(small_program, kernel)
    out = []
    for salt in range(300):
        event = CallEvent("txn_begin", {"salt": salt})
        walker.walk_event(event, out)
        event = CallEvent("wal_append", {"salt": salt + 1000, "chunks": 3})
        walker.walk_event(event, out)
    blocks = np.asarray(out, dtype=np.int64)
    app_blocks = blocks[blocks < walker.kernel_offset]
    profiler = PixieProfiler(small_program.binary)
    profiler.add_stream(app_blocks)
    return SpikeOptimizer(small_program.binary, profiler.profile())


class TestPipelines:
    @pytest.mark.parametrize("combo", ALL_COMBOS)
    def test_every_combo_produces_complete_layout(self, profiled, combo):
        layout = profiled.layout(combo)
        layout.validate_against(profiled.binary)
        assert layout.name == combo

    @pytest.mark.parametrize("combo", ALL_COMBOS)
    def test_address_maps_injective(self, profiled, combo):
        amap = assign_addresses(profiled.binary, profiled.layout(combo))
        # Non-empty blocks occupy disjoint byte ranges.
        spans = [
            (int(amap.addr[b.bid]), int(amap.addr[b.bid]) +
             int(amap.n_fetch[b.bid]) * INSTRUCTION_BYTES)
            for b in profiled.binary.blocks()
            if amap.n_fetch[b.bid] > 0
        ]
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_unknown_combo_rejected(self, profiled):
        with pytest.raises(LayoutError):
            profiled.layout("turbo")

    def test_layouts_helper(self, profiled):
        layouts = profiled.layouts(("base", "chain"))
        assert set(layouts) == {"base", "chain"}

    def test_profile_binary_mismatch_rejected(self, small_program):
        other = build_binary([RoutineSpec("r", body=[Straight(1)])])
        with pytest.raises(LayoutError):
            SpikeOptimizer(small_program.binary, Profile(other.binary))

    def test_cfa_reports_overflow_for_small_cache(self, profiled):
        layout, report = profiled.cfa(cache_bytes=4096, reserved_fraction=0.25)
        layout.validate_against(profiled.binary)
        assert report.reserved_bytes == 1024

    def test_base_uses_proc_alignment(self, profiled):
        amap = assign_addresses(profiled.binary, profiled.layout("base"))
        for start in list(amap.unit_starts.values())[:50]:
            assert start % 16 == 0

    def test_all_packs_densely(self, profiled):
        base = assign_addresses(profiled.binary, profiled.layout("base"))
        packed = assign_addresses(profiled.binary, profiled.layout("all"))
        assert packed.total_bytes <= base.total_bytes

    def test_chain_keeps_executed_fetches_bounded(self, profiled):
        """Chaining trades branch deletions against fixups on the colder
        arms; the executed fetch count must stay essentially flat (its
        real win -- fewer stream breaks -- is asserted by the sequence
        and regression suites)."""
        base = assign_addresses(profiled.binary, profiled.layout("base"))
        chained = assign_addresses(profiled.binary, profiled.layout("chain"))
        counts = profiled.profile.block_counts

        def executed_fetches(amap):
            return int((counts * amap.n_fetch).sum())

        assert executed_fetches(chained) <= 1.02 * executed_fetches(base)


class TestLayoutProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_profiles_never_lose_code(self, profiled, seed):
        rng = np.random.default_rng(seed)
        profile = Profile(profiled.binary)
        profile.block_counts = rng.integers(
            0, 1000, size=profiled.binary.num_blocks
        ).astype(np.int64)
        optimizer = SpikeOptimizer(profiled.binary, profile)
        for combo in ("chain", "all", "hotcold"):
            layout = optimizer.layout(combo)
            layout.validate_against(profiled.binary)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_profiles_keep_entry_reachable(self, profiled, seed):
        rng = np.random.default_rng(seed)
        profile = Profile(profiled.binary)
        profile.block_counts = rng.integers(
            0, 50, size=profiled.binary.num_blocks
        ).astype(np.int64)
        optimizer = SpikeOptimizer(profiled.binary, profile)
        layout = optimizer.layout("all")
        placed_entries = {
            u.proc_name for u in layout.units if u.is_entry
        }
        assert placed_entries == set(profiled.binary.proc_order())
