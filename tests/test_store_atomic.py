"""Atomic-write guarantees of the ArtifactStore under concurrency.

The serve disk tier and parallel experiment runs write the same
artifact keys from multiple processes; the store's write-to-temp +
``os.replace`` path must mean a reader can never observe a torn file.
"""

import json
import multiprocessing
import pathlib

import pytest

from repro.harness.parallel import fork_available
from repro.harness.store import ArtifactStore

FINGERPRINT = "stress-fp"
ARTIFACT = "stress.json"
WRITERS = 4
ITERATIONS = 25
#: Big enough that a non-atomic write would be observably torn.
PADDING = "x" * 64_000


def _save_json(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def _payload(writer, iteration):
    return {
        "writer": writer,
        "iteration": iteration,
        "padding": PADDING,
        # A reader validates the document against itself, so any mix
        # of two writes is detectable.
        "checksum": f"{writer}:{iteration}:{len(PADDING)}",
    }


def _writer_proc(root, writer, failures):
    store = ArtifactStore(root)
    for iteration in range(ITERATIONS):
        written = store.save(
            FINGERPRINT, ARTIFACT, _payload(writer, iteration), _save_json
        )
        if written <= 0:
            failures.put(f"writer {writer} iteration {iteration}: 0 bytes")


def _reader_proc(root, stop, failures):
    path = ArtifactStore(root).path(FINGERPRINT, ARTIFACT)
    observed = 0
    while not stop.is_set() or observed == 0:
        if not path.exists():
            continue
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (json.JSONDecodeError, OSError) as exc:
            failures.put(f"torn read: {exc}")
            return
        expected = f"{document['writer']}:{document['iteration']}:{len(PADDING)}"
        if document["checksum"] != expected or document["padding"] != PADDING:
            failures.put(f"inconsistent document: {document['checksum']}")
            return
        observed += 1


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_concurrent_same_key_writers_never_tear(tmp_path):
    context = multiprocessing.get_context("fork")
    failures = context.Queue()
    stop = context.Event()
    readers = [
        context.Process(target=_reader_proc, args=(tmp_path, stop, failures))
        for _ in range(2)
    ]
    writers = [
        context.Process(
            target=_writer_proc, args=(tmp_path, writer, failures)
        )
        for writer in range(WRITERS)
    ]
    for process in readers + writers:
        process.start()
    for process in writers:
        process.join(timeout=60)
    stop.set()
    for process in readers:
        process.join(timeout=60)
    for process in readers + writers:
        assert not process.is_alive()
        assert process.exitcode == 0

    problems = []
    while not failures.empty():
        problems.append(failures.get())
    assert problems == []

    # The final artifact is one complete write from one writer...
    store = ArtifactStore(tmp_path)
    final = json.loads(store.path(FINGERPRINT, ARTIFACT).read_text())
    assert final["iteration"] == ITERATIONS - 1
    assert final["writer"] in range(WRITERS)
    # ...and no temporary files leaked.
    leftovers = [
        p for p in pathlib.Path(tmp_path, FINGERPRINT).iterdir()
        if p.name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_save_load_round_trip_is_atomic_per_key(tmp_path):
    store = ArtifactStore(tmp_path)
    written = store.save(FINGERPRINT, ARTIFACT, _payload(0, 0), _save_json)
    assert written > 0
    loaded = store.load(
        FINGERPRINT, ARTIFACT, lambda path: json.loads(
            pathlib.Path(path).read_text()
        )
    )
    assert loaded == _payload(0, 0)
    tmp_files = [
        p for p in (tmp_path / FINGERPRINT).iterdir()
        if p.name.startswith(".tmp-")
    ]
    assert tmp_files == []


def test_failed_write_leaves_no_debris(tmp_path):
    store = ArtifactStore(tmp_path)

    def exploding_saver(obj, path):
        with open(path, "w") as handle:
            handle.write("partial")
        raise OSError("disk full")

    written = store.save(FINGERPRINT, ARTIFACT, {}, exploding_saver)
    assert written == 0
    target = store.path(FINGERPRINT, ARTIFACT)
    assert not target.exists()
    assert not any(
        p.name.startswith(".tmp-") for p in target.parent.iterdir()
    )
