"""Tests for the resumable scenario-matrix runner."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import ScenarioError
from repro.harness.store import ArtifactStore
from repro.scenarios import matrix as matrix_mod
from repro.scenarios.matrix import (
    CELL_SCHEMA_VERSION,
    CellResult,
    MatrixResult,
    _cell_artifact_name,
    run_matrix,
)
from repro.scenarios.spec import HierarchySpec, ScenarioSpec

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def tpcb_cells(*sizes_kb):
    """Cells sharing one (quick TPC-B) pipeline, one per L1I size."""
    return [
        ScenarioSpec(
            name=f"tpcb-{kb}k",
            hierarchy=HierarchySpec(l1i_kb=kb, line=64, assoc=1),
            engine="batched",
        )
        for kb in sizes_kb
    ]


def make_cell(name, base=10.0, opt=2.0, **kwargs):
    defaults = dict(
        family="oltp", workload_kind="tpcb", hierarchy="32K/64B/1w",
        combo="all", drift="none", engine="batched", scope="app",
        status="simulated", instructions=100_000,
        base_mpki=base, opt_mpki=opt,
        recovery_pct=100.0 * (base - opt) / base if base else 0.0,
    )
    defaults.update(kwargs)
    return CellResult(name=name, **defaults)


class TestRunAndResume:
    def test_two_cell_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        result = run_matrix(tpcb_cells(16, 32), store=store, verify=False)
        assert result.simulated == 2 and result.cached == 0
        assert not result.failed
        small, large = result.cells
        assert small.instructions == large.instructions > 0
        # A smaller cache misses at least as much, both ways.
        assert small.base_mpki >= large.base_mpki
        assert all(c.opt_mpki < c.base_mpki for c in result.cells)

    def test_resume_skips_completed_cells(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        specs = tpcb_cells(16, 32)
        first = run_matrix(specs, store=store, verify=False)
        simulated = []
        original = matrix_mod._simulate_misses

        def recording(spec, streams):
            simulated.append(spec.name)
            return original(spec, streams)

        monkeypatch.setattr(matrix_mod, "_simulate_misses", recording)
        second = run_matrix(specs, store=store, verify=False)
        assert simulated == []
        assert second.cached == 2 and second.simulated == 0
        for before, after in zip(first.cells, second.cells):
            assert after.status == "cached"
            assert after.base_misses == before.base_misses
            assert after.opt_misses == before.opt_misses

    def test_fresh_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        specs = tpcb_cells(16)
        run_matrix(specs, store=store, verify=False)
        again = run_matrix(specs, store=store, verify=False, fresh=True)
        assert again.simulated == 1 and again.cached == 0

    def test_corrupt_cached_cell_degrades_to_recompute(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        specs = tpcb_cells(16)
        run_matrix(specs, store=store, verify=False)
        path = store.path(
            specs[0].experiment_config().fingerprint(),
            _cell_artifact_name(specs[0]),
        )
        path.write_text('{"schema": -1}')
        result = run_matrix(specs, store=store, verify=False)
        assert result.simulated == 1 and result.cached == 0

    def test_renamed_cell_reuses_cached_result(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_matrix(tpcb_cells(16), store=store, verify=False)
        renamed = tpcb_cells(16)[0]
        renamed = ScenarioSpec(**{**renamed.__dict__, "name": "alias-16k"})
        result = run_matrix([renamed], store=store, verify=False)
        assert result.cached == 1
        assert result.cells[0].name == "alias-16k"

    def test_failed_cell_does_not_kill_the_sweep(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        original = matrix_mod._simulate_misses

        def sabotaged(spec, streams):
            if spec.name == "tpcb-16k":
                raise RuntimeError("boom")
            return original(spec, streams)

        monkeypatch.setattr(matrix_mod, "_simulate_misses", sabotaged)
        result = run_matrix(tpcb_cells(16, 32), store=store, verify=False)
        assert [c.name for c in result.failed] == ["tpcb-16k"]
        assert "boom" in result.failed[0].error
        assert result.simulated == 1
        assert not result.passes()
        assert "FAILED tpcb-16k" in result.render()
        # The failed cell was not persisted: the next run retries it.
        assert not store.has(
            tpcb_cells(16)[0].experiment_config().fingerprint(),
            _cell_artifact_name(tpcb_cells(16)[0]),
        )

    def test_gate_runs_by_default(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        result = run_matrix(tpcb_cells(16), store=store)
        assert result.cells[0].gate_ok
        assert result.cells[0].gate_errors == 0

    def test_empty_matrix_rejected(self):
        with pytest.raises(ScenarioError, match="at least one"):
            run_matrix([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            run_matrix(tpcb_cells(16) + tpcb_cells(16))


class TestCrashResume:
    def test_killed_sweep_resumes_without_resimulating(self, tmp_path):
        """Kill the runner mid-sweep; completed cells must come back
        from the store and must not be simulated again."""
        cache = tmp_path / "cache"
        store = ArtifactStore(cache)
        specs = tpcb_cells(8, 16, 32, 64)
        # Warm the shared pipeline into the store so the subprocess
        # spends its time in per-cell simulation, not codegen.
        exp = matrix_mod._experiment_for(specs[0], store)
        if exp.store is None:
            exp.attach_store(store)
        _ = exp.trace
        script = textwrap.dedent("""
            from repro.harness.store import ArtifactStore
            from repro.scenarios.matrix import run_matrix
            from repro.scenarios.spec import HierarchySpec, ScenarioSpec

            specs = [
                ScenarioSpec(
                    name=f"tpcb-{kb}k",
                    hierarchy=HierarchySpec(l1i_kb=kb, line=64, assoc=1),
                    engine="batched",
                )
                for kb in (8, 16, 32, 64)
            ]
            run_matrix(specs, store=ArtifactStore(%r), verify=False)
        """ % str(cache))
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(ROOT, "src"),
            REPRO_CACHE_DIR=str(cache),
        )
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.time() + 120
            fingerprint = specs[0].experiment_config().fingerprint()
            while time.time() < deadline and proc.poll() is None:
                done = list((cache / fingerprint).glob("scenario-*.json"))
                if done:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        completed = list((cache / fingerprint).glob("scenario-*.json"))
        assert completed, "no cell completed before the kill"

        simulated = []
        original = matrix_mod._simulate_misses

        def recording(spec, streams):
            simulated.append(spec.name)
            return original(spec, streams)

        from unittest import mock

        with mock.patch.object(
            matrix_mod, "_simulate_misses", recording
        ):
            result = run_matrix(specs, store=store, verify=False)
        assert not result.failed
        assert result.cached >= 1
        assert result.cached + result.simulated == len(specs)
        resumed = {c.name for c in result.cells if c.status == "cached"}
        assert resumed.isdisjoint(set(simulated))


class TestRollups:
    def result(self):
        return MatrixResult(cells=[
            make_cell("tpcb-a", base=30.0, opt=3.0),
            make_cell("tpcb-b", base=10.0, opt=2.0),
            make_cell("dss-a", base=4.0, opt=0.5, family="dss",
                      workload_kind="dss"),
            make_cell("tpcb-drift", base=25.0, opt=3.0, drift="shift"),
        ])

    def test_family_sensitivity_ranks_by_recovered_mpki(self):
        ranked = self.result().family_sensitivity()
        assert [family for family, _, _, _ in ranked] == ["oltp", "dss"]
        oltp = ranked[0]
        assert oltp[1] == pytest.approx((27.0 + 8.0) / 2)
        assert oltp[3] == 2  # the drifted cell is excluded

    def test_ordering_ok_compares_absolute_recovery(self):
        assert self.result().ordering_ok()
        inverted = MatrixResult(cells=[
            make_cell("tpcb-a", base=2.0, opt=1.0),
            make_cell("dss-a", base=9.0, opt=1.0, family="dss"),
        ])
        assert not inverted.ordering_ok()
        assert not inverted.passes()

    def test_ordering_vacuous_without_both_families(self):
        only_oltp = MatrixResult(cells=[make_cell("tpcb-a")])
        assert only_oltp.ordering_ok()

    def test_gate_failure_fails_the_matrix(self):
        result = self.result()
        result.cells[0].gate_ok = False
        assert not result.passes()

    def test_document_shape(self):
        document = self.result().to_document()
        assert document["columns"][0] == "scenario"
        assert len(document["cells"]) == 4
        assert document["ordering_ok"] == 1
        assert document["gate_ok"] == 1
        families = {f["family"] for f in document["families"]}
        assert families == {"oltp", "dss"}

    def test_table_skips_failed_cells(self):
        result = self.result()
        result.cells.append(make_cell("broken", status="failed"))
        table = result.to_table()
        assert all(row[0] != "broken" for row in table.rows)
