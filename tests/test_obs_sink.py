"""Fork-safety of the JSONL sink: spans emitted by parallel_map
workers interleave whole in the shared trace file."""

import collections

import pytest

from repro import obs
from repro.harness.parallel import fork_available, parallel_map
from repro.obs.sink import read_events


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.reset_metrics()


def _traced_cell(item):
    """Module-level (picklable) worker: emits one padded span per call.

    The padding makes torn writes detectable — a partial line cannot
    parse as JSON and read_events raises.
    """
    with obs.span("cell", item=item, pad="x" * 256):
        return item * 2


class TestForkedSinkConcurrency:
    @pytest.mark.skipif(not fork_available(), reason="fork start method required")
    def test_worker_spans_interleave_without_corruption(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        items = list(range(64))
        results = parallel_map(_traced_cell, items, jobs=4)
        obs.disable()

        assert results == [i * 2 for i in items]
        events = read_events(path)  # raises ValueError on any torn line
        spans = [e for e in events if e["type"] == "span"]
        assert sorted(s["attrs"]["item"] for s in spans) == items

        # Span ids are pid-prefixed: unique across the worker pool.
        ids = [s["span_id"] for s in spans]
        assert len(set(ids)) == len(ids)
        pids = {s["pid"] for s in spans}
        assert len(pids) > 1, "expected spans from more than one process"

    @pytest.mark.skipif(not fork_available(), reason="fork start method required")
    def test_parallel_results_match_serial(self, tmp_path):
        obs.enable(trace_path=tmp_path / "t.jsonl")
        items = list(range(32))
        serial = [_traced_cell(i) for i in items]
        parallel = parallel_map(_traced_cell, items, jobs=4)
        obs.disable()
        assert parallel == serial

    def test_serial_fallback_still_traces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        parallel_map(_traced_cell, [1, 2, 3], jobs=1)
        obs.disable()
        spans = [e for e in read_events(path) if e["type"] == "span"]
        assert collections.Counter(s["name"] for s in spans) == {"cell": 3}
