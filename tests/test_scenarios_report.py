"""Golden-file test for the cross-scenario report + the scenarios CLI."""

import io
import json
import pathlib

from repro.cli import main
from repro.scenarios.matrix import CellResult, MatrixResult
from repro.scenarios.report import render_scenarios_report

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN = DATA / "golden_scenarios_report.md"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def fixture_result():
    """A deterministic matrix outcome covering every report section."""
    def cell(name, family, kind, base, opt, *, hierarchy="32K/64B/1w",
             engine="batched", drift="none", status="simulated", **kw):
        return CellResult(
            name=name, family=family, workload_kind=kind,
            hierarchy=hierarchy, combo="all", drift=drift, engine=engine,
            scope="app", status=status, instructions=250_000,
            base_misses=int(base * 250), opt_misses=int(opt * 250),
            base_mpki=base, opt_mpki=opt,
            recovery_pct=100.0 * (base - opt) / base if base else 0.0,
            **kw,
        )

    return MatrixResult(cells=[
        cell("tpcb-i32", "oltp", "tpcb", 36.0, 3.0),
        cell("tpcb-i64x2", "oltp", "tpcb", 14.0, 2.5,
             hierarchy="64K/64B/2w", engine="classic", status="cached"),
        cell("dss-i32", "dss", "dss", 8.0, 0.75),
        cell("synth-oltp-i32", "synthetic-oltp", "synthetic", 22.0, 2.0),
        cell("tpcb-shift-i32", "oltp", "tpcb", 28.0, 3.0, drift="shift"),
        cell("broken-i32", "oltp", "tpcb", 0.0, 0.0, status="failed",
             error="RuntimeError: boom"),
    ])


def fixture_document():
    document = fixture_result().to_document()
    document["run"] = {
        "id": "deadbeef0000", "timestamp": "2026-01-01T00:00:00+00:00",
    }
    return document


class TestGoldenReport:
    def test_report_matches_golden(self):
        rendered = render_scenarios_report(fixture_document())
        assert rendered == GOLDEN.read_text(), (
            "report drifted from tests/data/golden_scenarios_report.md; "
            "if the change is intentional, regenerate the golden file"
        )

    def test_report_roundtrips_through_json(self):
        document = json.loads(json.dumps(fixture_document()))
        assert render_scenarios_report(document) == GOLDEN.read_text()

    def test_inconsistent_ordering_verdict(self):
        document = fixture_document()
        document["families"] = [
            {"family": "dss", "mean_recovered_mpki": 9.0,
             "mean_recovery_pct": 90.0, "cells": 1},
            {"family": "oltp", "mean_recovered_mpki": 1.0,
             "mean_recovery_pct": 50.0, "cells": 1},
        ]
        document["ordering_ok"] = 0
        rendered = render_scenarios_report(document)
        assert "INCONSISTENT" in rendered

    def test_no_failed_section_when_clean(self):
        result = fixture_result()
        result.cells = [c for c in result.cells if c.status != "failed"]
        rendered = render_scenarios_report(result.to_document())
        assert "## Failed cells" not in rendered


class TestScenariosCli:
    def test_report_command_renders_saved_document(self, tmp_path):
        (tmp_path / "BENCH_scenarios.json").write_text(
            json.dumps(fixture_document())
        )
        code, out = run_cli("scenarios", "report", str(tmp_path))
        assert code == 0
        assert out == GOLDEN.read_text()

    def test_report_command_writes_file(self, tmp_path):
        (tmp_path / "BENCH_scenarios.json").write_text(
            json.dumps(fixture_document())
        )
        target = tmp_path / "report.md"
        code, _ = run_cli(
            "scenarios", "report", str(tmp_path), "--out", str(target)
        )
        assert code == 0
        assert target.read_text() == GOLDEN.read_text()

    def test_report_command_missing_document(self, tmp_path, capsys):
        code, _ = run_cli("scenarios", "report", str(tmp_path))
        assert code == 2
        assert "BENCH_scenarios.json" in capsys.readouterr().err

    def test_list_shows_the_default_matrix(self):
        code, out = run_cli("scenarios", "list")
        assert code == 0
        assert "tpcb-i32" in out
        assert "synth-oltp-shift-i32" in out

    def test_list_select_filters(self):
        code, out = run_cli("scenarios", "list", "--select", "dss-*")
        assert code == 0
        assert "dss-i32" in out
        assert "tpcb-i32" not in out

    def test_bad_select_is_a_clean_error(self, capsys):
        code, _ = run_cli("scenarios", "list", "--select", "nope-*")
        assert code == 2
        assert "matched no scenario" in capsys.readouterr().err
