"""Small coverage tests for odds and ends across the package."""

import numpy as np
import pytest

from repro.cache import CacheGeometry
from repro.errors import (
    BufferPoolError,
    DatabaseError,
    IRError,
    LayoutError,
    LockError,
    PageError,
    ProfileError,
    ReproError,
    SimulationError,
    TransactionError,
    WorkloadError,
)
from repro.ir import Binary, Procedure, Terminator
from repro.layout import ALL_COMBOS, PAPER_COMBOS
from repro.profiles import PixieProfiler


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (IRError, LayoutError, ProfileError, DatabaseError,
                    PageError, BufferPoolError, LockError, TransactionError,
                    WorkloadError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_db_errors_nest(self):
        assert issubclass(PageError, DatabaseError)
        assert issubclass(LockError, DatabaseError)


class TestComboConstants:
    def test_paper_combos_match_figure7_axis(self):
        assert PAPER_COMBOS == (
            "base", "porder", "chain", "chain+split", "chain+porder", "all"
        )

    def test_all_combos_superset(self):
        assert set(PAPER_COMBOS) < set(ALL_COMBOS)
        assert {"split", "hotcold"} < set(ALL_COMBOS)


class TestGeometryHelpers:
    def test_words_per_line(self):
        assert CacheGeometry(1024, 128, 1).words_per_line == 32
        assert CacheGeometry(1024, 16, 1).words_per_line == 4


class TestProfileCoverage:
    def make_profile(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("hot", 100, Terminator.COND_BRANCH, succs=("hot", "cold"))
        proc.add_block("cold", 100, Terminator.RETURN)
        binary.add_procedure(proc)
        binary.seal()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0] * 9 + [1])
        return profiler.profile()

    def test_coverage_monotone(self):
        profile = self.make_profile()
        quarter = profile.coverage(200)
        half = profile.coverage(400)
        assert 0.0 <= quarter <= half <= 1.0

    def test_coverage_full_footprint(self):
        profile = self.make_profile()
        assert profile.coverage(800) == pytest.approx(1.0)

    def test_entry_bid(self):
        profile = self.make_profile()
        assert profile.binary.entry_bid("p") == 0
