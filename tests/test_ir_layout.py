"""Tests for address assignment and branch fixups."""

import pytest

from repro.errors import LayoutError
from repro.ir import (
    Binary,
    CodeUnit,
    INSTRUCTION_BYTES,
    Layout,
    Procedure,
    Terminator,
    assign_addresses,
    baseline_layout,
)


def build_branchy_binary():
    """One procedure:

        entry(4): cond -> taken=cold, ft=hot
        hot(6):   uncond -> exit
        cold(3):  fallthrough -> exit
        exit(2):  return
    """
    binary = Binary()
    proc = Procedure("p")
    proc.add_block("entry", 4, Terminator.COND_BRANCH, succs=("cold", "hot"))
    proc.add_block("hot", 6, Terminator.UNCOND_BRANCH, succs=("exit",))
    proc.add_block("cold", 3, Terminator.FALLTHROUGH, succs=("exit",))
    proc.add_block("exit", 2, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


def bid(binary, proc, label):
    return binary.proc(proc).block(label).bid


class TestBaselineLayout:
    def test_units_follow_link_order(self):
        binary = build_branchy_binary()
        layout = baseline_layout(binary)
        assert [u.name for u in layout.units] == ["p"]
        assert layout.units[0].block_ids == (0, 1, 2, 3)

    def test_validate_against_detects_missing_block(self):
        binary = build_branchy_binary()
        layout = Layout(
            units=[CodeUnit("p", "p", (0, 1, 2))], name="broken"
        )
        with pytest.raises(LayoutError):
            layout.validate_against(binary)

    def test_empty_unit_rejected(self):
        with pytest.raises(LayoutError):
            CodeUnit("u", "p", ())


class TestAddressAssignment:
    def test_source_order_addresses(self):
        binary = build_branchy_binary()
        amap = assign_addresses(binary, baseline_layout(binary, alignment=4))
        # entry at 0 (4 instr), hot at 16, cold at 40, exit at 52.
        assert amap.addr[bid(binary, "p", "entry")] == 0
        assert amap.addr[bid(binary, "p", "hot")] == 16
        # hot ends with uncond to exit, but cold is adjacent: branch kept.
        assert amap.addr[bid(binary, "p", "cold")] == 16 + 6 * 4
        assert amap.addr[bid(binary, "p", "exit")] == 40 + 3 * 4

    def test_unit_alignment_pads(self):
        binary = Binary()
        for name in ("a", "b"):
            proc = Procedure(name)
            proc.add_block("x", 1, Terminator.RETURN)
            binary.add_procedure(proc)
        binary.seal()
        amap = assign_addresses(binary, baseline_layout(binary, alignment=32))
        assert amap.addr[0] == 0
        assert amap.addr[1] == 32

    def test_fallthrough_nonadjacent_appends_branch(self):
        binary = build_branchy_binary()
        # Order: entry, cold, hot, exit.  cold falls through to exit,
        # which is no longer adjacent -> +1 instruction.
        ids = (
            bid(binary, "p", "entry"),
            bid(binary, "p", "cold"),
            bid(binary, "p", "hot"),
            bid(binary, "p", "exit"),
        )
        layout = Layout(units=[CodeUnit("p", "p", ids)], alignment=4)
        amap = assign_addresses(binary, layout)
        cold = bid(binary, "p", "cold")
        assert cold in amap.appended_branches
        assert amap.n_fetch[cold] == 3 + 1

    def test_uncond_to_adjacent_deleted(self):
        binary = build_branchy_binary()
        # Order: entry, hot, exit, cold.  hot's uncond target (exit)
        # becomes adjacent -> branch deleted.
        ids = (
            bid(binary, "p", "entry"),
            bid(binary, "p", "hot"),
            bid(binary, "p", "exit"),
            bid(binary, "p", "cold"),
        )
        layout = Layout(units=[CodeUnit("p", "p", ids)], alignment=4)
        amap = assign_addresses(binary, layout)
        hot = bid(binary, "p", "hot")
        assert hot in amap.deleted_branches
        assert amap.n_fetch[hot] == 5
        assert amap.is_sequential(hot, bid(binary, "p", "exit"))

    def test_cond_inversion_when_taken_adjacent(self):
        binary = build_branchy_binary()
        # Order: entry, cold (the taken target), ... -> polarity inverted.
        ids = (
            bid(binary, "p", "entry"),
            bid(binary, "p", "cold"),
            bid(binary, "p", "exit"),
            bid(binary, "p", "hot"),
        )
        layout = Layout(units=[CodeUnit("p", "p", ids)], alignment=4)
        amap = assign_addresses(binary, layout)
        entry = bid(binary, "p", "entry")
        assert entry in amap.inverted
        assert amap.n_fetch[entry] == 4  # no size change
        assert amap.is_sequential(entry, bid(binary, "p", "cold"))
        assert not amap.is_sequential(entry, bid(binary, "p", "hot"))

    def test_cond_neither_adjacent_appends_uncond(self):
        binary = build_branchy_binary()
        # Put exit right after entry: neither hot nor cold adjacent.
        ids = (
            bid(binary, "p", "entry"),
            bid(binary, "p", "exit"),
            bid(binary, "p", "hot"),
            bid(binary, "p", "cold"),
        )
        layout = Layout(units=[CodeUnit("p", "p", ids)], alignment=4)
        amap = assign_addresses(binary, layout)
        entry = bid(binary, "p", "entry")
        hot = bid(binary, "p", "hot")
        cold = bid(binary, "p", "cold")
        assert entry in amap.appended_branches
        # Fallthrough path executes the appended branch: 5 fetches.
        assert amap.fetched(entry, hot) == 5
        # Taken path leaves from the conditional branch: 4 fetches.
        assert amap.fetched(entry, cold) == 4

    def test_call_continuation_like_fallthrough(self):
        binary = Binary()
        proc = Procedure("caller")
        proc.add_block("c", 2, Terminator.CALL, succs=("far",), call_target="callee")
        proc.add_block("mid", 5, Terminator.RETURN)
        proc.add_block("far", 1, Terminator.RETURN)
        binary.add_procedure(proc)
        callee = Procedure("callee")
        callee.add_block("x", 1, Terminator.RETURN)
        binary.add_procedure(callee)
        binary.seal()
        amap = assign_addresses(binary, baseline_layout(binary, alignment=4))
        c = binary.proc("caller").block("c").bid
        assert c in amap.appended_branches
        assert amap.n_fetch[c] == 3

    def test_total_bytes_counts_fixups(self):
        binary = build_branchy_binary()
        amap = assign_addresses(binary, baseline_layout(binary, alignment=4))
        # base 15 instrs, no fixups in source order except none: entry's
        # ft (hot) adjacent, hot's uncond target not adjacent (kept),
        # cold->exit adjacent, exit return.  15 instrs * 4 bytes.
        assert amap.total_bytes == 15 * INSTRUCTION_BYTES

    def test_branch_only_block_can_vanish(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("a", 1, Terminator.UNCOND_BRANCH, succs=("b",))
        proc.add_block("b", 1, Terminator.RETURN)
        binary.add_procedure(proc)
        binary.seal()
        amap = assign_addresses(binary, baseline_layout(binary, alignment=4))
        assert amap.n_fetch[0] == 0
        assert amap.addr[1] == 0  # b aliases a's (empty) slot
