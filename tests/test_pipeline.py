"""The stage-graph execution core: structural properties of
:class:`~repro.pipeline.graph.StageGraph` (order determinism, cycle
rejection, fingerprint stability), cache semantics and gate hooks of
:class:`~repro.pipeline.runner.PipelineRunner`, resilient fan-out, and
crash-resume of a half-finished graph."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ParallelError, PipelineError, StageGateError
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF, RunLog
from repro.harness.store import ArtifactStore
from repro.pipeline import (
    ArtifactSpec,
    PipelineRunner,
    Stage,
    StageGraph,
    StreamHandoff,
    resilient_map,
)
from repro.pipeline import fanout as fanout_mod

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def save_json(obj, path):
    path.write_text(json.dumps(obj))


def load_json(path):
    return json.loads(path.read_text())


def json_spec(name):
    return ArtifactSpec(name, load_json, save_json)


def chain_stages(n, prefix="s"):
    """A linear chain s0 <- s1 <- ... <- s(n-1), each persisting one
    JSON artifact."""
    stages = []
    for i in range(n):
        inputs = (f"{prefix}{i - 1}",) if i else ()
        stages.append(
            Stage(
                name=f"{prefix}{i}",
                inputs=inputs,
                outputs=(json_spec(f"{prefix}{i}.json"),),
                build=(
                    lambda r, i=i: (r.value(f"{prefix}{i - 1}") if i else 0) + 1
                ),
            )
        )
    return stages


# -- random DAGs for the property tests ----------------------------------

@st.composite
def dags(draw):
    """A random DAG as stages with edges from lower to higher index,
    plus a random insertion order."""
    n = draw(st.integers(min_value=1, max_value=8))
    stages = []
    for i in range(n):
        deps = (
            draw(st.sets(st.integers(min_value=0, max_value=i - 1)))
            if i else set()
        )
        salt = draw(st.sampled_from(["", "v2"]))
        stages.append(
            Stage(
                name=f"n{i}",
                inputs=tuple(f"n{d}" for d in sorted(deps)),
                outputs=(json_spec(f"n{i}.json"),),
                build=lambda _: None,
                cache_salt=salt,
            )
        )
    order = draw(st.permutations(range(n)))
    return stages, order


class TestGraphProperties:
    @given(dags())
    @settings(max_examples=50)
    def test_topological_order_is_insertion_order_independent(self, dag):
        stages, order = dag
        declared = StageGraph(stages).validate()
        shuffled = StageGraph([stages[i] for i in order]).validate()
        assert declared.topological_order() == shuffled.topological_order()

    @given(dags())
    @settings(max_examples=50)
    def test_topological_order_respects_dependencies(self, dag):
        stages, _ = dag
        order = StageGraph(stages).topological_order()
        assert sorted(order) == sorted(s.key for s in stages)
        position = {key: i for i, key in enumerate(order)}
        for stage in stages:
            for dep in stage.inputs:
                assert position[dep] < position[stage.key]

    @given(dags())
    @settings(max_examples=50)
    def test_fingerprint_stable_under_reordering(self, dag):
        stages, order = dag
        declared = StageGraph(stages)
        shuffled = StageGraph([stages[i] for i in order])
        assert declared.fingerprint() == shuffled.fingerprint()

    @given(dags())
    @settings(max_examples=25)
    def test_fingerprint_sensitive_to_cache_salt(self, dag):
        stages, _ = dag
        import dataclasses

        salted = [dataclasses.replace(stages[0], cache_salt="changed")]
        salted.extend(stages[1:])
        assert StageGraph(stages).fingerprint() != \
            StageGraph(salted).fingerprint()

    def test_cycle_rejected(self):
        graph = StageGraph([
            Stage(name="a", inputs=("b",), build=lambda _: 1),
            Stage(name="b", inputs=("a",), build=lambda _: 2),
        ])
        with pytest.raises(PipelineError, match="cycle"):
            graph.validate()

    def test_undeclared_input_rejected(self):
        graph = StageGraph([
            Stage(name="a", inputs=("ghost",), build=lambda _: 1)
        ])
        with pytest.raises(PipelineError, match="undeclared"):
            graph.validate()

    def test_duplicate_key_rejected(self):
        graph = StageGraph([Stage(name="a", build=lambda _: 1)])
        with pytest.raises(PipelineError, match="already declared"):
            graph.add(Stage(name="a", build=lambda _: 2))

    def test_unknown_stage_lookup_names_known_stages(self):
        graph = StageGraph([Stage(name="a", build=lambda _: 1)])
        with pytest.raises(PipelineError, match="declared stages: a"):
            graph.stage("zzz")


class TestRunnerCacheSemantics:
    def test_cold_run_builds_then_warm_run_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = PipelineRunner(
            StageGraph(chain_stages(3)), store=store, fingerprint="fp"
        )
        assert cold.value("s2") == 3
        assert cold.runlog.cache_states("s2") == [CACHE_MISS]

        warm = PipelineRunner(
            StageGraph(chain_stages(3)), store=store, fingerprint="fp"
        )
        assert warm.value("s2") == 3
        assert warm.runlog.all_hits("s2")

    def test_cache_hit_never_forces_dependencies(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PipelineRunner(
            StageGraph(chain_stages(3)), store=store, fingerprint="fp"
        ).run()

        built = []
        stages = chain_stages(3)
        spied = [
            Stage(
                name=s.name, inputs=s.inputs, outputs=s.outputs,
                build=lambda r, s=s: built.append(s.name) or s.build(r),
            )
            for s in stages
        ]
        warm = PipelineRunner(
            StageGraph(spied), store=store, fingerprint="fp"
        )
        assert warm.value("s2") == 3
        assert built == []
        assert [r.stage for r in warm.runlog.records] == ["s2"]

    def test_no_store_runs_with_cache_off(self):
        runner = PipelineRunner(StageGraph(chain_stages(2)))
        assert runner.value("s1") == 2
        assert runner.runlog.cache_states("s0") == [CACHE_OFF]
        assert runner.runlog.cache_states("s1") == [CACHE_OFF]

    def test_multi_output_stage_misses_when_one_artifact_is_stale(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path)

        def graph():
            return StageGraph([Stage(
                name="pair",
                outputs=(json_spec("left.json"), json_spec("right.json")),
                build=lambda _: (1, 2),
            )])

        PipelineRunner(graph(), store=store, fingerprint="fp").run()
        store.path("fp", "right.json").unlink()
        rerun = PipelineRunner(graph(), store=store, fingerprint="fp")
        assert rerun.value("pair") == (1, 2)
        assert rerun.runlog.cache_states("pair") == [CACHE_MISS]

    def test_fresh_gate_failure_raises(self):
        runner = PipelineRunner(StageGraph([Stage(
            name="gated", outputs=(json_spec("g.json"),),
            build=lambda _: -1, gate=lambda value: value > 0,
        )]))
        with pytest.raises(StageGateError, match="gated"):
            runner.value("gated")

    def test_cached_gate_failure_degrades_to_rebuild(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("fp", "g.json", -1, save_json)
        rejected = []
        runner = PipelineRunner(
            StageGraph([Stage(
                name="gated", outputs=(json_spec("g.json"),),
                build=lambda _: 7, gate=lambda value: value > 0,
            )]),
            store=store, fingerprint="fp",
            on_cache_reject=lambda stage, value: rejected.append(
                (stage.key, value)
            ),
        )
        assert runner.value("gated") == 7
        assert rejected == [("gated", -1)]
        assert runner.runlog.cache_states("gated") == [CACHE_MISS]
        assert load_json(store.path("fp", "g.json")) == 7

    def test_persist_writes_every_declared_stage(self, tmp_path):
        # Regression for the hand-maintained stage list persist() used
        # to iterate: a declared stage must never be silently skipped.
        runner = PipelineRunner(StageGraph(chain_stages(4)))
        runner.run()
        runner.store = ArtifactStore(tmp_path)
        assert runner.persist() == 4
        for i in range(4):
            assert runner.store.has("", f"s{i}.json")
        assert runner.persist() == 0  # idempotent

    def test_recursive_stage_rejected(self):
        runner = PipelineRunner(StageGraph([Stage(
            name="selfish", build=lambda r: r.value("selfish"),
        )]))
        with pytest.raises(PipelineError, match="recursively"):
            runner.value("selfish")

    def test_run_rejects_unknown_keys(self):
        runner = PipelineRunner(StageGraph(chain_stages(2)))
        with pytest.raises(PipelineError, match="zzz"):
            runner.run(["s0", "zzz"])

    def test_status_tracks_store_contents(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stages = chain_stages(2) + [
            Stage(name="ephemeral", build=lambda _: None)
        ]
        runner = PipelineRunner(
            StageGraph(stages), store=store, fingerprint="fp"
        )
        by_key = {row.key: row for row in runner.status()}
        assert by_key["s0"].state == "missing"
        assert by_key["ephemeral"].state == "transient"
        runner.run(["s0"])
        by_key = {row.key: row for row in runner.status()}
        assert by_key["s0"].state == "ready"
        assert by_key["s0"].bytes > 0
        assert by_key["s1"].state == "missing"


class TestExperimentPipeline:
    def fresh_quick_experiment(self):
        # quick_experiment() is lru_cached (same instance each call);
        # these tests need independent memo state over one config.
        from repro.harness.experiment import Experiment
        from repro.harness import quick_experiment

        return Experiment(quick_experiment().config)

    def test_experiment_persists_every_declared_stage(self, tmp_path):
        # Satellite regression: Experiment.persist() iterates the
        # declared graph, so every persistent stage lands in a late-
        # attached store -- no name list to forget to update.
        exp = self.fresh_quick_experiment()
        _ = exp.app, exp.kernel, exp.profile, exp.trace
        exp.attach_store(ArtifactStore(tmp_path))
        persistent = {
            spec.name
            for stage in exp.pipeline.graph
            for spec in stage.outputs
        }
        assert persistent == {
            "app.pkl", "kernel.pkl", "profile-app.npz",
            "profile-kernel.npz", "trace.npz",
        }
        for name in persistent:
            assert exp.store.has(exp.fingerprint, name), name

    def test_warm_replay_hits_every_persistent_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = self.fresh_quick_experiment()
        first.attach_store(store)
        _ = first.app, first.kernel, first.profile, first.trace

        hits = obs.counter("pipeline.cache_hits").value
        replay = self.fresh_quick_experiment()
        replay.attach_store(store)
        _ = replay.app, replay.kernel, replay.profile, replay.trace
        assert replay.runlog.all_hits("codegen", "profile", "trace")
        assert obs.counter("pipeline.cache_hits").value >= hits + 4


class TestResilientMap:
    def test_retries_parallel_errors_with_backoff(self, monkeypatch):
        calls = []

        def flaky(fn, items, jobs=None, chunksize=1, timeout=None):
            calls.append(list(items))
            if len(calls) < 3:
                raise ParallelError("worker died")
            return [fn(item) for item in items]

        monkeypatch.setattr(fanout_mod, "parallel_map", flaky)
        delays = []
        retries = obs.counter("pipeline.retries").value
        result = resilient_map(
            lambda x: x * 2, [1, 2, 3],
            retries=2, backoff=0.5, _sleep=delays.append,
        )
        assert result == [2, 4, 6]
        assert len(calls) == 3
        assert delays == [0.5, 1.0]  # exponential backoff
        assert obs.counter("pipeline.retries").value == retries + 2

    def test_reraises_after_retries_exhausted(self, monkeypatch):
        def always_dead(fn, items, jobs=None, chunksize=1, timeout=None):
            raise ParallelError("worker died")

        monkeypatch.setattr(fanout_mod, "parallel_map", always_dead)
        with pytest.raises(ParallelError, match="worker died"):
            resilient_map(
                lambda x: x, [1], retries=1, _sleep=lambda _: None
            )

    def test_other_exceptions_propagate_without_retry(self):
        calls = []

        def broken(x):
            calls.append(x)
            raise ValueError("not a crash")

        with pytest.raises(ValueError, match="not a crash"):
            resilient_map(broken, [1, 2], jobs=1, _sleep=lambda _: None)
        assert calls == [1]

    def test_matches_serial_map(self):
        assert resilient_map(lambda x: x + 1, range(5)) == [1, 2, 3, 4, 5]


class TestStreamHandoff:
    def test_publishes_for_the_duration_of_the_block(self):
        with StreamHandoff({"base": [1, 2], "all": [3]}):
            assert StreamHandoff.get("base") == [1, 2]
            assert StreamHandoff.get("all") == [3]
        with pytest.raises(KeyError):
            StreamHandoff.get("base")

    def test_shared_blocks_round_trip_and_unlink(self):
        import numpy as np

        streams = [
            (np.arange(4, dtype=np.int64), np.full(4, 2, dtype=np.int64)),
            (np.arange(7, dtype=np.int64), np.full(7, 3, dtype=np.int64)),
        ]
        with StreamHandoff({"cells": streams}, shared=True):
            block = StreamHandoff.get("cells")
            views = list(block)
            assert len(views) == 2
            for (starts, counts), (vstarts, vcounts) in zip(streams, views):
                assert np.array_equal(vstarts, starts)
                assert np.array_equal(vcounts, counts)


class TestCrashResume:
    def test_killed_graph_resumes_from_completed_stages(self, tmp_path):
        """Kill a runner mid-graph (mirroring the scenarios SIGKILL
        test); a rerun must hit the completed stages and build only the
        rest."""
        cache = tmp_path / "cache"
        script = textwrap.dedent("""
            import json, time

            from repro.harness.store import ArtifactStore
            from repro.pipeline import ArtifactSpec, PipelineRunner, \\
                Stage, StageGraph

            def save_json(obj, path): path.write_text(json.dumps(obj))
            def load_json(path): return json.loads(path.read_text())

            def build(i):
                def _build(r):
                    if i:
                        time.sleep(60)  # killed long before finishing
                    return i + 1
                return _build

            graph = StageGraph([
                Stage(name=f"s{i}",
                      inputs=(f"s{i-1}",) if i else (),
                      outputs=(ArtifactSpec(f"s{i}.json",
                                            load_json, save_json),),
                      build=build(i))
                for i in range(3)
            ])
            PipelineRunner(graph, store=ArtifactStore(%r),
                           fingerprint="fp").run()
        """ % str(cache))
        env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.time() + 120
            while time.time() < deadline and proc.poll() is None:
                if (cache / "fp" / "s0.json").is_file():
                    break
                time.sleep(0.02)
            assert (cache / "fp" / "s0.json").is_file(), \
                "no stage completed before the kill"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()

        resumed = PipelineRunner(
            StageGraph(chain_stages(3)),
            store=ArtifactStore(cache), fingerprint="fp",
        )
        assert resumed.value("s2") == 3
        assert resumed.runlog.all_hits("s0")
        assert resumed.runlog.cache_states("s1") == [CACHE_MISS]
        assert resumed.runlog.cache_states("s2") == [CACHE_MISS]
