"""Unit tests for IR blocks, procedures and binaries."""

import pytest

from repro.errors import IRError
from repro.ir import BasicBlock, Binary, Procedure, Terminator


def make_simple_proc(name="p"):
    proc = Procedure(name)
    proc.add_block("entry", 4, Terminator.COND_BRANCH, succs=("exit", "body"))
    proc.add_block("body", 6, Terminator.FALLTHROUGH, succs=("exit",))
    proc.add_block("exit", 2, Terminator.RETURN)
    return proc


class TestBasicBlock:
    def test_size_must_be_positive(self):
        with pytest.raises(IRError):
            BasicBlock(label="b", size=0)

    def test_call_requires_target(self):
        with pytest.raises(IRError):
            BasicBlock(label="b", size=1, terminator=Terminator.CALL)

    def test_non_call_rejects_target(self):
        with pytest.raises(IRError):
            BasicBlock(label="b", size=1, call_target="f")

    def test_taken_fallthrough_accessors(self):
        blk = BasicBlock(
            label="b", size=2, terminator=Terminator.COND_BRANCH, succs=(7, 9)
        )
        assert blk.taken == 7
        assert blk.fallthrough == 9

    def test_taken_on_non_cond_raises(self):
        blk = BasicBlock(label="b", size=2)
        with pytest.raises(IRError):
            _ = blk.taken

    def test_validate_arity(self):
        blk = BasicBlock(
            label="b", size=1, terminator=Terminator.COND_BRANCH, succs=(1,)
        )
        with pytest.raises(IRError):
            blk.validate()

    def test_return_takes_no_succs(self):
        blk = BasicBlock(
            label="b", size=1, terminator=Terminator.RETURN, succs=(1,)
        )
        with pytest.raises(IRError):
            blk.validate()


class TestProcedure:
    def test_duplicate_label_rejected(self):
        proc = Procedure("p")
        proc.add_block("a", 1)
        with pytest.raises(IRError):
            proc.add_block("a", 1)

    def test_entry_is_first_block(self):
        proc = make_simple_proc()
        assert proc.entry.label == "entry"

    def test_entry_of_empty_proc_raises(self):
        with pytest.raises(IRError):
            _ = Procedure("p").entry

    def test_size_sums_blocks(self):
        assert make_simple_proc().size == 12

    def test_unknown_successor_detected_at_seal(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("a", 1, Terminator.UNCOND_BRANCH, succs=("missing",))
        binary.add_procedure(proc)
        with pytest.raises(IRError):
            binary.seal()

    def test_block_lookup(self):
        proc = make_simple_proc()
        assert proc.block("body").size == 6
        with pytest.raises(IRError):
            proc.block("nope")


class TestBinary:
    def test_dense_global_ids(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.add_procedure(make_simple_proc("p2"))
        binary.seal()
        assert [b.bid for b in binary.blocks()] == list(range(6))
        assert binary.num_blocks == 6
        assert binary.num_procedures == 2

    def test_successors_resolved_to_global_ids(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.add_procedure(make_simple_proc("p2"))
        binary.seal()
        p2_entry = binary.proc("p2").entry
        # p2's entry branches to p2's own exit (bid 5) and body (bid 4).
        assert p2_entry.succs == (5, 4)

    def test_duplicate_procedure_rejected(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p"))
        with pytest.raises(IRError):
            binary.add_procedure(make_simple_proc("p"))

    def test_call_target_must_exist(self):
        binary = Binary()
        proc = Procedure("caller")
        proc.add_block("c", 2, Terminator.CALL, succs=("r",), call_target="ghost")
        proc.add_block("r", 1, Terminator.RETURN)
        binary.add_procedure(proc)
        with pytest.raises(IRError):
            binary.seal()

    def test_static_size(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.seal()
        assert binary.static_size == 12

    def test_owner_of(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.seal()
        assert binary.owner_of(0) == "p1"

    def test_sealed_binary_rejects_new_procs(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.seal()
        with pytest.raises(IRError):
            binary.add_procedure(make_simple_proc("p2"))

    def test_unknown_lookups_raise(self):
        binary = Binary()
        binary.add_procedure(make_simple_proc("p1"))
        binary.seal()
        with pytest.raises(IRError):
            binary.proc("zzz")
        with pytest.raises(IRError):
            binary.block(99)
