"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_info(self):
        code, text = run_cli("info")
        assert code == 0
        assert "application binary" in text
        assert "TPC-B" in text

    def test_figure_single(self):
        code, text = run_cli("figure", "fig03")
        assert code == 0
        assert "Figure 3" in text

    def test_figure_multiple_deduplicated(self):
        code, text = run_cli("figure", "fig03", "fig03")
        assert code == 0
        assert text.count("Figure 3:") == 1

    def test_figure_fig13_both_binaries(self):
        code, text = run_cli("figure", "fig13")
        assert code == 0
        assert "Figure 13 (base)" in text
        assert "Figure 13 (all)" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("figure", "fig99")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_ablation(self):
        code, text = run_cli("ablation")
        assert code == 0
        assert "Figure 7" in text
        assert "chain+porder" in text

    def test_packing(self):
        code, text = run_cli("figure", "packing")
        assert code == 0
        assert "128B cache lines" in text


class TestCacheAndJobsFlags:
    def test_cache_info_empty(self, tmp_path):
        code, text = run_cli("--cache-dir", str(tmp_path / "c"), "cache", "info")
        assert code == 0
        assert "experiments:  0" in text

    def test_cache_populated_and_cleared(self, tmp_path):
        cache = str(tmp_path / "c")
        code, _ = run_cli("--cache-dir", cache, "--quiet", "ablation")
        assert code == 0
        code, text = run_cli("--cache-dir", cache, "cache", "info")
        assert code == 0
        assert "experiments:  1" in text
        code, text = run_cli("--cache-dir", cache, "cache", "clear")
        assert code == 0
        assert "cleared 1" in text
        code, text = run_cli("--cache-dir", cache, "cache", "info")
        assert "experiments:  0" in text

    def test_jobs_output_matches_serial(self):
        code_serial, serial = run_cli("--no-cache", "--quiet", "ablation")
        code_jobs, parallel = run_cli(
            "--no-cache", "--quiet", "--jobs", "4", "ablation"
        )
        assert code_serial == code_jobs == 0
        assert parallel == serial

    def test_runlog_rendered_to_stderr(self, capsys):
        code, text = run_cli("--no-cache", "figure", "fig03")
        assert code == 0
        captured = capsys.readouterr()
        assert "run log:" in captured.err
        assert "codegen" in captured.err
        assert "run log:" not in text  # tables stay clean on stdout

    def test_info_reports_fingerprint(self):
        code, text = run_cli("--quiet", "info")
        assert code == 0
        assert "fingerprint:" in text


class TestSummaryCommand:
    def test_summary_missing_dir(self, tmp_path):
        code, text = run_cli("summary", "--results-dir", str(tmp_path / "none"))
        assert code == 1
        assert "no result tables" in text

    def test_summary_concatenates(self, tmp_path):
        (tmp_path / "a.txt").write_text("Table A\n1 2 3\n")
        (tmp_path / "b.txt").write_text("Table B\n4 5 6\n")
        code, text = run_cli("summary", "--results-dir", str(tmp_path))
        assert code == 0
        assert "==== a.txt" in text and "Table B" in text


class TestLint:
    """The `repro lint` subcommand: clean runs, JSON output, and the
    --strict gate over corrupted artifacts."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        """Corrupted layout/profile files exercising >= 8 distinct
        error codes, saved next to clean counterparts."""
        import dataclasses

        from repro.harness.experiment import quick_experiment
        from repro.harness.store import save_layout, save_profile
        from repro.ir import SEGMENT_ENDING

        root = tmp_path_factory.mktemp("lint-artifacts")
        exp = quick_experiment()
        binary = exp.app.binary
        layout = exp.optimizer.layout("all")
        profile = exp.profile

        def variant(filename, mutate):
            units = list(layout.units)
            mutate(units)
            path = root / filename
            save_layout(dataclasses.replace(layout, units=units), path)
            return str(path)

        def drop_block(units):
            victim = next(u for u in units if len(u.block_ids) > 1)
            units[units.index(victim)] = dataclasses.replace(
                victim, block_ids=victim.block_ids[1:]
            )

        def duplicate_block(units):
            units[0] = dataclasses.replace(
                units[0], block_ids=units[0].block_ids + (units[0].block_ids[0],)
            )

        def foreign_block(units):
            units[0] = dataclasses.replace(
                units[0], block_ids=units[0].block_ids + (10**6,)
            )

        def lose_entries(units):
            units[:] = [dataclasses.replace(u, is_entry=False) for u in units]

        def fuse_segments(units):
            first = next(
                i for i in range(len(units) - 1)
                if binary.block(units[i].block_ids[-1]).terminator
                in SEGMENT_ENDING
                and units[i].proc_name == units[i + 1].proc_name
            )
            fused = dataclasses.replace(
                units[first],
                block_ids=units[first].block_ids + units[first + 1].block_ids,
                is_entry=units[first].is_entry or units[first + 1].is_entry,
            )
            units[first:first + 2] = [fused]

        layouts = [
            variant("lay-drop.json", drop_block),        # LAY001 + LAY007
            variant("lay-dup.json", duplicate_block),    # LAY002
            variant("lay-foreign.json", foreign_block),  # LAY003
            variant("lay-entry.json", lose_entries),     # LAY004
            variant("lay-fused.json", fuse_segments),    # LAY009
        ]

        def profile_variant(filename, mutate):
            from collections import defaultdict

            from repro.profiles import Profile

            bad = Profile(binary)
            bad.block_counts = profile.block_counts.copy()
            bad.edge_counts = defaultdict(int, profile.edge_counts)
            mutate(bad)
            path = root / filename
            save_profile(bad, path)
            return str(path)

        def missing_inflow(bad):
            entries = {binary.entry_bid(n) for n in binary.proc_order()}
            victim = max(
                (b for b in range(binary.num_blocks) if b not in entries),
                key=bad.count,
            )
            for (src, dst) in list(bad.edge_counts):
                if dst == victim:
                    del bad.edge_counts[(src, dst)]

        def inflated_edge(bad):
            edge = max(bad.edge_counts, key=bad.edge_counts.get)
            bad.edge_counts[edge] = bad.edge_counts[edge] * 10 + 10_000

        def illegal_edge(bad):
            from repro.ir import Terminator

            src = next(
                b for b in binary.blocks()
                if b.terminator is Terminator.COND_BRANCH and bad.count(b.bid) > 0
            )
            dst = next(
                bid for bid in range(binary.num_blocks) if bid not in src.succs
            )
            bad.edge_counts[(src.bid, dst)] += 5

        profiles = [
            profile_variant("prof-inflow.npz", missing_inflow),    # PRF001
            profile_variant("prof-inflated.npz", inflated_edge),   # PRF002
            profile_variant("prof-illegal.npz", illegal_edge),     # PRF003
        ]

        clean_layout = root / "lay-clean.json"
        save_layout(layout, clean_layout)
        clean_profile = root / "prof-clean.npz"
        save_profile(profile, clean_profile)
        return {
            "layouts": layouts,
            "profiles": profiles,
            "clean_layout": str(clean_layout),
            "clean_profile": str(clean_profile),
        }

    def test_lint_combo_base_clean(self):
        code, text = run_cli("lint", "--combo", "base")
        assert code == 0
        assert "0 error(s)" in text

    def test_lint_json_output(self):
        import json

        code, text = run_cli(
            "lint", "--combo", "base", "--json", "--no-deprecations"
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["errors"] == 0

    def test_strict_passes_on_clean_artifacts(self, artifacts):
        code, text = run_cli(
            "lint", "--strict", "--no-deprecations",
            "--layout", artifacts["clean_layout"],
            "--profile", artifacts["clean_profile"],
        )
        assert code == 0
        assert "0 error(s)" in text

    def test_strict_fails_with_eight_distinct_codes(self, artifacts):
        import json

        argv = ["lint", "--strict", "--json", "--no-deprecations"]
        for path in artifacts["layouts"]:
            argv += ["--layout", path]
        for path in artifacts["profiles"]:
            argv += ["--profile", path]
        code, text = run_cli(*argv)
        assert code == 1
        doc = json.loads(text)
        error_codes = {
            d["code"] for d in doc["diagnostics"] if d["severity"] == "error"
        }
        expected = {
            "LAY001", "LAY002", "LAY003", "LAY004", "LAY007", "LAY009",
            "PRF001", "PRF002", "PRF003",
        }
        assert expected <= error_codes
        assert len(error_codes) >= 8

    def test_lint_reports_deprecated_callers(self, tmp_path):
        caller = tmp_path / "uses_old_api.py"
        caller.write_text(
            "def f(exp, geometry):\n"
            "    simulate_lru(exp.streams('all', scope='app'), geometry)\n"
        )
        code, text = run_cli("lint", "--combo", "base", "--scan", str(caller))
        assert code == 0  # non-strict runs always exit 0
        assert "DEP002" in text
        assert "simulate_lru" in text
        # DEP002 is error-level: strict mode fails on it.
        code, _ = run_cli(
            "lint", "--combo", "base", "--strict", "--scan", str(caller)
        )
        assert code == 1


class TestLintScanOnly:
    def test_scan_only_gates_strict_on_dep_findings(self, tmp_path):
        """Regression: with --scan as the only selection, the artifact
        lint is skipped entirely and --strict still exits non-zero on
        AST-scan findings alone."""
        caller = tmp_path / "caller.py"
        caller.write_text(
            "from repro.cache import simulate_lru\n\n"
            "def f(streams, geometry):\n"
            "    return simulate_lru(streams, geometry)\n"
        )
        code, text = run_cli("lint", "--scan", str(caller), "--strict")
        assert code == 1
        assert "DEP002" in text
        # No artifact lint ran: no layout/profile family in the report.
        assert "LAY" not in text and "PRF" not in text

    def test_scan_only_without_strict_exits_zero(self, tmp_path):
        caller = tmp_path / "caller.py"
        caller.write_text(
            "def f(streams, geometry):\n"
            "    return simulate_lru(streams, geometry)\n"
        )
        code, text = run_cli("lint", "--scan", str(caller))
        assert code == 0
        assert "DEP002" in text


class TestProfileSourceFlags:
    def test_scenarios_list_shows_the_override(self):
        code, out = run_cli(
            "scenarios", "list", "--select", "tpcb-i32",
            "--profile-source", "static",
        )
        assert code == 0
        assert "static" in out

    def test_static_bench_single_cell(self):
        code, text = run_cli(
            "static-bench", "--select", "tpcb-i32", "--quiet"
        )
        assert code == 0
        assert "tpcb-i32_static" in text
        assert "oltp_static_gate_ok" in text

    def test_lint_static_diff_reports_advisories_only(self):
        code, text = run_cli(
            "lint", "--combo", "base", "--static-diff", "--quiet",
        )
        assert code == 0
        assert "static-diff:app" in text or "0 warning(s)" not in text
