"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_info(self):
        code, text = run_cli("info")
        assert code == 0
        assert "application binary" in text
        assert "TPC-B" in text

    def test_figure_single(self):
        code, text = run_cli("figure", "fig03")
        assert code == 0
        assert "Figure 3" in text

    def test_figure_multiple_deduplicated(self):
        code, text = run_cli("figure", "fig03", "fig03")
        assert code == 0
        assert text.count("Figure 3:") == 1

    def test_figure_fig13_both_binaries(self):
        code, text = run_cli("figure", "fig13")
        assert code == 0
        assert "Figure 13 (base)" in text
        assert "Figure 13 (all)" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("figure", "fig99")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_ablation(self):
        code, text = run_cli("ablation")
        assert code == 0
        assert "Figure 7" in text
        assert "chain+porder" in text

    def test_packing(self):
        code, text = run_cli("figure", "packing")
        assert code == 0
        assert "128B cache lines" in text


class TestCacheAndJobsFlags:
    def test_cache_info_empty(self, tmp_path):
        code, text = run_cli("--cache-dir", str(tmp_path / "c"), "cache", "info")
        assert code == 0
        assert "experiments:  0" in text

    def test_cache_populated_and_cleared(self, tmp_path):
        cache = str(tmp_path / "c")
        code, _ = run_cli("--cache-dir", cache, "--quiet", "ablation")
        assert code == 0
        code, text = run_cli("--cache-dir", cache, "cache", "info")
        assert code == 0
        assert "experiments:  1" in text
        code, text = run_cli("--cache-dir", cache, "cache", "clear")
        assert code == 0
        assert "cleared 1" in text
        code, text = run_cli("--cache-dir", cache, "cache", "info")
        assert "experiments:  0" in text

    def test_jobs_output_matches_serial(self):
        code_serial, serial = run_cli("--no-cache", "--quiet", "ablation")
        code_jobs, parallel = run_cli(
            "--no-cache", "--quiet", "--jobs", "4", "ablation"
        )
        assert code_serial == code_jobs == 0
        assert parallel == serial

    def test_runlog_rendered_to_stderr(self, capsys):
        code, text = run_cli("--no-cache", "figure", "fig03")
        assert code == 0
        captured = capsys.readouterr()
        assert "run log:" in captured.err
        assert "codegen" in captured.err
        assert "run log:" not in text  # tables stay clean on stdout

    def test_info_reports_fingerprint(self):
        code, text = run_cli("--quiet", "info")
        assert code == 0
        assert "fingerprint:" in text


class TestSummaryCommand:
    def test_summary_missing_dir(self, tmp_path):
        code, text = run_cli("summary", "--results-dir", str(tmp_path / "none"))
        assert code == 1
        assert "no result tables" in text

    def test_summary_concatenates(self, tmp_path):
        (tmp_path / "a.txt").write_text("Table A\n1 2 3\n")
        (tmp_path / "b.txt").write_text("Table B\n4 5 6\n")
        code, text = run_cli("summary", "--results-dir", str(tmp_path))
        assert code == 0
        assert "==== a.txt" in text and "Table B" in text
