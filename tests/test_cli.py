"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_info(self):
        code, text = run_cli("info")
        assert code == 0
        assert "application binary" in text
        assert "TPC-B" in text

    def test_figure_single(self):
        code, text = run_cli("figure", "fig03")
        assert code == 0
        assert "Figure 3" in text

    def test_figure_multiple_deduplicated(self):
        code, text = run_cli("figure", "fig03", "fig03")
        assert code == 0
        assert text.count("Figure 3:") == 1

    def test_figure_fig13_both_binaries(self):
        code, text = run_cli("figure", "fig13")
        assert code == 0
        assert "Figure 13 (base)" in text
        assert "Figure 13 (all)" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("figure", "fig99")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_ablation(self):
        code, text = run_cli("ablation")
        assert code == 0
        assert "Figure 7" in text
        assert "chain+porder" in text

    def test_packing(self):
        code, text = run_cli("figure", "packing")
        assert code == 0
        assert "128B cache lines" in text


class TestSummaryCommand:
    def test_summary_missing_dir(self, tmp_path):
        code, text = run_cli("summary", "--results-dir", str(tmp_path / "none"))
        assert code == 1
        assert "no result tables" in text

    def test_summary_concatenates(self, tmp_path):
        (tmp_path / "a.txt").write_text("Table A\n1 2 3\n")
        (tmp_path / "b.txt").write_text("Table B\n4 5 6\n")
        code, text = run_cli("summary", "--results-dir", str(tmp_path))
        assert code == 0
        assert "==== a.txt" in text and "Table B" in text
