"""Unit and property tests for repro.staticpred: CFG analyses
(dominators, natural loops, reachability), branch heuristics, exact
integer flow propagation, and whole-binary profile synthesis.

The property tests generate random *structured* programs (seq/if/loop
trees) and compile them to CFGs -- structured control flow is reducible
by construction, so the dominator/loop invariants must hold on every
example, and every synthesized profile must pass the PRF001-PRF006
flow-conservation family with zero findings.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_profile
from repro.errors import ProfileError
from repro.ir import Binary, Procedure, Terminator
from repro.staticpred import (
    CfgInfo,
    apportion,
    branch_probabilities,
    hybrid_profile,
    invert_enabled,
    propagate_units,
    synthesize_profile,
)

# -- structured random CFGs --------------------------------------------------

#: Random structured-program trees: a leaf is a straight-line block;
#: interior nodes sequence, branch, or loop their children.  Structured
#: programs compile to reducible CFGs, the class the analyses target.
TREES = st.recursive(
    st.just("block"),
    lambda children: st.one_of(
        st.tuples(st.just("seq"), children, children),
        st.tuples(st.just("if"), children, children),
        st.tuples(st.just("loop"), children),
    ),
    max_leaves=12,
)


def compile_tree(tree, name="p"):
    """Compile a structured tree to a Procedure ending in RETURN.

    Returns ``(proc, loop_count)``; each ``loop`` node becomes a
    conditional header with a back edge from its body's tail.
    """
    counter = itertools.count()
    pending = []
    loops = 0

    def emit(node, cont):
        nonlocal loops
        if node == "block":
            label = f"b{next(counter)}"
            pending.append((label, 2, Terminator.FALLTHROUGH, (cont,)))
            return label
        kind = node[0]
        if kind == "seq":
            return emit(node[1], emit(node[2], cont))
        if kind == "if":
            then_entry = emit(node[1], cont)
            else_entry = emit(node[2], cont)
            label = f"b{next(counter)}"
            pending.append(
                (label, 2, Terminator.COND_BRANCH, (then_entry, else_entry))
            )
            return label
        assert kind == "loop"
        loops += 1
        header = f"b{next(counter)}"
        body_entry = emit(node[1], header)  # body tail jumps back
        pending.append(
            (header, 2, Terminator.COND_BRANCH, (body_entry, cont))
        )
        return header

    entry = emit(tree, "exit")
    proc = Procedure(name)
    # The entry must be the first block added; emission is post-order.
    by_label = {row[0]: row for row in pending}
    proc.add_block(*by_label.pop(entry))
    for row in pending:
        if row[0] in by_label:
            proc.add_block(*row)
    proc.add_block("exit", 2, Terminator.RETURN)
    return proc, loops


def seal(proc):
    binary = Binary()
    binary.add_procedure(proc)
    binary.seal()
    return binary


class TestCfgInfo:
    def make_loop_proc(self):
        proc = Procedure("p")
        proc.add_block("entry", 2, Terminator.FALLTHROUGH, succs=("head",))
        proc.add_block(
            "head", 2, Terminator.COND_BRANCH, succs=("body", "exit")
        )
        proc.add_block("body", 4, Terminator.UNCOND_BRANCH, succs=("head",))
        proc.add_block("exit", 2, Terminator.RETURN)
        proc.add_block("island", 2, Terminator.RETURN)  # unreachable
        return seal(proc).proc("p")

    def test_reachability_excludes_islands(self):
        proc = self.make_loop_proc()
        info = CfgInfo(proc)
        island = proc.block("island").bid
        assert island not in info.reachable
        assert len(info.reachable) == 4
        assert island not in info.depth

    def test_dominators(self):
        proc = self.make_loop_proc()
        info = CfgInfo(proc)
        entry, head = proc.block("entry").bid, proc.block("head").bid
        body, exit_ = proc.block("body").bid, proc.block("exit").bid
        assert info.idom[head] == entry
        assert info.idom[body] == head
        assert info.idom[exit_] == head
        assert info.dominates(entry, exit_)
        assert not info.dominates(body, exit_)

    def test_natural_loop(self):
        proc = self.make_loop_proc()
        info = CfgInfo(proc)
        head, body = proc.block("head").bid, proc.block("body").bid
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header == head
        assert loop.body == frozenset({head, body})
        assert loop.back_edges == ((body, head),)
        assert info.depth[head] == 1 and info.depth[body] == 1
        assert info.depth[proc.block("exit").bid] == 0
        assert info.innermost_loop(body) is loop
        assert info.innermost_loop(proc.block("entry").bid) is None

    @settings(max_examples=40, deadline=None)
    @given(tree=TREES)
    def test_structured_cfgs_are_reducible(self, tree):
        """On structured programs: every block reachable, one natural
        loop per loop construct, loop bodies dominated by their
        headers, retreating edges exactly the back edges."""
        proc, loop_count = compile_tree(tree)
        proc = seal(proc).proc("p")
        info = CfgInfo(proc)
        assert len(info.reachable) == len(list(proc.blocks))
        assert len(info.loops) == loop_count
        for loop in info.loops:
            for bid in loop.body:
                assert info.dominates(loop.header, bid)
            for src, dst in loop.back_edges:
                assert dst == loop.header and src in loop.body
        for block in proc.blocks:
            for dst in block.succs:
                if info.is_retreating(block.bid, dst):
                    assert (block.bid, dst) in info.back_edges
                    assert info.dominates(dst, block.bid)


class TestHeuristics:
    def test_probabilities_sum_to_one(self):
        proc, _ = compile_tree(("loop", ("if", "block", "block")))
        proc = seal(proc).proc("p")
        probs = branch_probabilities(proc)
        outgoing = {}
        for (src, _dst), p in probs.items():
            outgoing[src] = outgoing.get(src, 0.0) + p
        for total in outgoing.values():
            assert total == pytest.approx(1.0)

    def test_loop_branch_prefers_the_back_edge(self):
        proc = Procedure("p")
        proc.add_block(
            "head", 2, Terminator.COND_BRANCH, succs=("body", "exit")
        )
        proc.add_block("body", 4, Terminator.UNCOND_BRANCH, succs=("head",))
        proc.add_block("exit", 2, Terminator.RETURN)
        proc = seal(proc).proc("p")
        probs = branch_probabilities(proc)
        head, body = proc.block("head").bid, proc.block("body").bid
        assert probs[(head, body)] > 0.5

    def test_invert_flips_the_prediction(self, monkeypatch):
        proc = Procedure("p")
        proc.add_block(
            "head", 2, Terminator.COND_BRANCH, succs=("body", "exit")
        )
        proc.add_block("body", 4, Terminator.UNCOND_BRANCH, succs=("head",))
        proc.add_block("exit", 2, Terminator.RETURN)
        proc = seal(proc).proc("p")
        head, body = proc.block("head").bid, proc.block("body").bid
        straight = branch_probabilities(proc)[(head, body)]
        monkeypatch.setenv("REPRO_STATIC_INVERT", "1")
        assert invert_enabled()
        inverted = branch_probabilities(proc)[(head, body)]
        assert inverted == pytest.approx(1.0 - straight)
        assert inverted < 0.5 < straight

    def test_invert_flag_parsing(self, monkeypatch):
        for value, expected in (("", False), ("0", False), ("1", True),
                                ("yes", True)):
            monkeypatch.setenv("REPRO_STATIC_INVERT", value)
            assert invert_enabled() is expected
        monkeypatch.delenv("REPRO_STATIC_INVERT")
        assert invert_enabled() is False


class TestApportion:
    def test_exact_and_deterministic(self):
        parts = apportion(10, [0.5, 0.3, 0.2])
        assert sum(parts) == 10
        assert parts == apportion(10, [0.5, 0.3, 0.2])

    def test_zero_shares_split_uniformly(self):
        assert sum(apportion(7, [0.0, 0.0])) == 7

    @settings(max_examples=50, deadline=None)
    @given(
        units=st.integers(min_value=0, max_value=10_000),
        probs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6
        ),
    )
    def test_parts_sum_exactly(self, units, probs):
        parts = apportion(units, probs)
        assert sum(parts) == units
        assert all(part >= 0 for part in parts)


class TestPropagation:
    @settings(max_examples=40, deadline=None)
    @given(tree=TREES, units=st.integers(min_value=1, max_value=50_000))
    def test_kirchhoff_conservation(self, tree, units):
        """count == inflow == outflow at every block; all units drain
        through RETURN sinks (structured CFGs never trap flow)."""
        proc, _ = compile_tree(tree)
        proc = seal(proc).proc("p")
        probs = branch_probabilities(proc)
        flow = propagate_units(proc, probs, units)
        inflow = {}
        outflow = {}
        for (src, dst), count in flow.edges.items():
            outflow[src] = outflow.get(src, 0) + count
            inflow[dst] = inflow.get(dst, 0) + count
        entry = proc.entry.bid
        for block in proc.blocks:
            bid = block.bid
            count = flow.counts.get(bid, 0)
            seeded = units if bid == entry else 0
            assert inflow.get(bid, 0) + seeded == count
            if block.terminator is Terminator.RETURN:
                assert flow.return_units.get(bid, 0) == count
            else:
                assert outflow.get(bid, 0) == count
        assert flow.trapped == 0
        assert sum(flow.return_units.values()) == units

    def test_infinite_loop_traps_without_conservation_lies(self):
        proc = Procedure("p")
        proc.add_block("entry", 2, Terminator.FALLTHROUGH, succs=("spin",))
        proc.add_block("spin", 2, Terminator.UNCOND_BRANCH, succs=("spin",))
        proc = seal(proc).proc("p")
        flow = propagate_units(proc, branch_probabilities(proc), 100)
        assert flow.trapped == 100
        assert not flow.return_units


def make_call_binary():
    """Two-proc binary: a looping root repeatedly calling a leaf."""
    binary = Binary()
    root = Procedure("root")
    root.add_block("entry", 2, Terminator.FALLTHROUGH, succs=("head",))
    root.add_block("head", 2, Terminator.COND_BRANCH, succs=("call", "done"))
    root.add_block(
        "call", 3, Terminator.CALL, succs=("back",), call_target="leaf"
    )
    root.add_block("back", 1, Terminator.UNCOND_BRANCH, succs=("head",))
    root.add_block("done", 2, Terminator.RETURN)
    binary.add_procedure(root)
    leaf = Procedure("leaf")
    leaf.add_block("entry", 2, Terminator.COND_BRANCH, succs=("a", "b"))
    leaf.add_block("a", 4, Terminator.FALLTHROUGH, succs=("out",))
    leaf.add_block("b", 9, Terminator.FALLTHROUGH, succs=("out",))
    leaf.add_block("out", 2, Terminator.RETURN)
    binary.add_procedure(leaf)
    binary.seal()
    return binary


class TestSynthesize:
    def test_flow_conserving_across_calls(self):
        binary = make_call_binary()
        profile = synthesize_profile(binary)
        report = check_profile(binary, profile, target="static")
        assert not report.diagnostics, report.render()
        # The callee runs once per call-site execution.
        call = binary.proc("root").block("call").bid
        leaf_entry = binary.proc("leaf").entry.bid
        assert profile.count(leaf_entry) == profile.count(call) > 0

    def test_deterministic(self):
        binary = make_call_binary()
        assert (
            synthesize_profile(binary).fingerprint()
            == synthesize_profile(binary).fingerprint()
        )

    @settings(max_examples=25, deadline=None)
    @given(tree=TREES)
    def test_random_structured_binaries_pass_prf(self, tree):
        """Satellite: synthesized profiles satisfy the PRF001-PRF006
        flow-conservation family on random reducible CFGs."""
        proc, _ = compile_tree(tree)
        binary = seal(proc)
        profile = synthesize_profile(binary)
        report = check_profile(binary, profile, target="static")
        assert not report.diagnostics, report.render()
        assert profile.total_blocks_executed > 0

    def test_cold_island_roots_get_a_trickle(self):
        binary = Binary()
        main = Procedure("main")
        main.add_block(
            "head", 2, Terminator.COND_BRANCH, succs=("body", "out")
        )
        main.add_block("body", 4, Terminator.UNCOND_BRANCH, succs=("head",))
        main.add_block("out", 2, Terminator.RETURN)
        binary.add_procedure(main)
        island = Procedure("island")  # no loops, no calls, never called
        island.add_block("only", 4, Terminator.RETURN)
        binary.add_procedure(island)
        binary.seal()
        profile = synthesize_profile(binary)
        main_entry = binary.proc("main").entry.bid
        island_entry = binary.proc("island").entry.bid
        assert profile.count(island_entry) > 0  # still reachable flow
        assert profile.count(main_entry) > 64 * profile.count(island_entry)


class TestHybrid:
    def test_blend_conserves_flow(self):
        binary = make_call_binary()
        static = synthesize_profile(binary)
        heavy = synthesize_profile(binary, root_units=65_536)
        blended = hybrid_profile(heavy, static)
        report = check_profile(binary, blended, target="hybrid")
        assert not report.diagnostics, report.render()
        assert (
            blended.total_blocks_executed
            > heavy.total_blocks_executed
        )

    def test_prior_weight_bounds_the_static_share(self):
        binary = make_call_binary()
        static = synthesize_profile(binary)
        heavy = synthesize_profile(binary, root_units=1_048_576)
        blended = hybrid_profile(heavy, static, prior_weight=0.25)
        static_share = (
            blended.total_blocks_executed - heavy.total_blocks_executed
        ) / heavy.total_blocks_executed
        assert 0.1 <= static_share <= 0.5

    def test_mismatched_binaries_rejected(self):
        one, two = make_call_binary(), make_call_binary()
        with pytest.raises(ProfileError):
            hybrid_profile(synthesize_profile(one), synthesize_profile(two))

    def test_nonpositive_prior_rejected(self):
        binary = make_call_binary()
        static = synthesize_profile(binary)
        with pytest.raises(ProfileError):
            hybrid_profile(static, static, prior_weight=0.0)
