"""Tests for Pettis-Hansen ordering, including the paper's Figure 2 example."""

import numpy as np
import pytest

from repro.ir import Binary, CodeUnit, Procedure, Terminator, UnitCallGraph
from repro.layout import order_units


def five_proc_binary():
    """Five one-block procedures A..E (Figure 2's node set)."""
    binary = Binary()
    for name in "ABCDE":
        proc = Procedure(name)
        proc.add_block("b", 8, Terminator.RETURN)
        binary.add_procedure(proc)
    binary.seal()
    return binary


def units_of(binary):
    return [
        CodeUnit(name=n, proc_name=n, block_ids=(binary.proc(n).entry.bid,))
        for n in binary.proc_order()
    ]


def counts_for(binary, heat):
    counts = np.zeros(binary.num_blocks, dtype=np.int64)
    for name, value in heat.items():
        counts[binary.proc(name).entry.bid] = value
    return counts


class TestFigure2Golden:
    def test_merge_sequence_reproduces_paper_order(self):
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        # Weights chosen so the merge sequence is the paper's: A-C first,
        # then B-D, then (B,D) onto (A,C) via the A-B edge, then E via D-E.
        graph.add_weight("A", "C", 10)
        graph.add_weight("B", "D", 8)
        graph.add_weight("A", "B", 7)
        graph.add_weight("D", "E", 2)
        graph.add_weight("B", "C", 1)
        counts = counts_for(binary, {"A": 10, "B": 8, "C": 10, "D": 8, "E": 2})
        result = order_units(binary, units, graph, counts)
        order = [u.name for u in result.units]
        # The paper reaches E,D,B,A,C; a mirrored chain has identical
        # adjacency and is equally valid.
        assert order in (["E", "D", "B", "A", "C"], ["C", "A", "B", "D", "E"])
        assert result.merges == 4

    def test_parallel_edges_are_summed(self):
        graph = UnitCallGraph(["x", "y"])
        graph.add_weight("x", "y", 3)
        graph.add_weight("y", "x", 4)
        assert graph.weight("x", "y") == 7


class TestOrderingBehaviour:
    def test_unconnected_cold_units_keep_relative_order(self):
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        graph.add_weight("D", "E", 5)
        counts = counts_for(binary, {"D": 5, "E": 5})
        result = order_units(binary, units, graph, counts)
        order = [u.name for u in result.units]
        # Hot cluster (D,E) first; cold A,B,C after in original order.
        assert order[:2] in (["D", "E"], ["E", "D"])
        assert order[2:] == ["A", "B", "C"]

    def test_hotter_cluster_placed_first(self):
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        graph.add_weight("A", "B", 1)
        graph.add_weight("C", "D", 1)
        counts = counts_for(binary, {"A": 1, "B": 1, "C": 50, "D": 50})
        result = order_units(binary, units, graph, counts)
        order = [u.name for u in result.units]
        assert set(order[:2]) == {"C", "D"}

    def test_displacement_guard_refuses_giant_merges(self):
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        graph.add_weight("A", "B", 9)
        counts = counts_for(binary, {"A": 9, "B": 9})
        # Each unit is 8 instructions = 32 bytes; cap below 64 bytes.
        result = order_units(binary, units, graph, counts, max_displacement=48)
        assert result.displacement_refusals == 1
        assert result.merges == 0

    def test_every_unit_appears_exactly_once(self):
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        graph.add_weight("A", "B", 2)
        graph.add_weight("B", "C", 9)
        graph.add_weight("C", "D", 4)
        graph.add_weight("D", "E", 6)
        graph.add_weight("A", "E", 1)
        counts = counts_for(binary, {n: 5 for n in "ABCDE"})
        result = order_units(binary, units, graph, counts)
        assert sorted(u.name for u in result.units) == ["A", "B", "C", "D", "E"]

    def test_self_edges_ignored(self):
        graph = UnitCallGraph(["x"])
        graph.add_weight("x", "x", 100)
        assert graph.edges_by_weight() == []

    def test_unknown_unit_in_edge_rejected(self):
        from repro.errors import LayoutError

        graph = UnitCallGraph(["x"])
        with pytest.raises(LayoutError):
            graph.add_weight("x", "ghost", 1)

    def test_orientation_uses_original_weights(self):
        # Clusters (A,B) and (C,D) with the strongest original link B-C:
        # the merge must join B's end to C's start.
        binary = five_proc_binary()
        units = units_of(binary)
        graph = UnitCallGraph(u.name for u in units)
        graph.add_weight("A", "B", 10)
        graph.add_weight("C", "D", 9)
        graph.add_weight("B", "C", 5)
        counts = counts_for(binary, {n: 5 for n in "ABCD"})
        result = order_units(binary, units, graph, counts)
        order = [u.name for u in result.units if u.name != "E"]
        joined = "".join(order)
        assert "BC" in joined or "CB" in joined
        assert joined in ("ABCD", "DCBA")
