"""The repro.sim facade: hierarchy composition, result shapes, engines."""

import numpy as np
import pytest

from repro import obs
from repro.cache import CacheGeometry
from repro.errors import SimulationError
from repro.sim import (
    MemoryHierarchy,
    classic,
    simulate,
    simulate_grid,
)

L1I = CacheGeometry(1024, 64, 2)
L2 = CacheGeometry(8 * 1024, 64, 1)


def make_stream(rng, spans=200, addr_space=64 * 1024):
    starts = (rng.integers(0, addr_space // 4, size=spans) * 4).astype(np.int64)
    counts = rng.integers(1, 40, size=spans).astype(np.int64)
    return starts, counts


@pytest.fixture
def streams():
    rng = np.random.default_rng(7)
    return [make_stream(rng) for _ in range(2)]


@pytest.fixture
def data_streams(streams):
    rng = np.random.default_rng(11)
    out = []
    for starts, counts in streams:
        n = 150
        addresses = (rng.integers(0, 1 << 16, size=n) * 8).astype(np.int64)
        positions = np.sort(rng.integers(0, counts.sum(), size=n)).astype(
            np.int64
        )
        out.append((addresses, positions))
    return out


class TestHierarchy:
    def test_l1i_only(self):
        h = MemoryHierarchy.l1i_only(L1I)
        assert h.l2 is None and h.dcache is None and h.itlb_entries == 0

    def test_negative_itlb_rejected(self):
        with pytest.raises(SimulationError, match="itlb_entries"):
            MemoryHierarchy(l1i=L1I, itlb_entries=-1)

    def test_detail_with_l2_rejected(self):
        with pytest.raises(SimulationError, match="detail"):
            MemoryHierarchy(l1i=L1I, l2=L2, detail=True)

    def test_from_platform(self):
        from repro.timing import ALPHA_21164

        h = MemoryHierarchy.from_platform(ALPHA_21164)
        assert h.l1i == ALPHA_21164.icache
        assert h.l2 == ALPHA_21164.l2
        assert h.itlb_entries == ALPHA_21164.itlb_entries

    def test_str_names_the_levels(self):
        text = str(MemoryHierarchy(l1i=L1I, l2=L2, itlb_entries=48))
        assert "L1I" in text and "L2" in text and "iTLB 48e" in text


class TestFacade:
    def test_lru_path_matches_classic(self, streams):
        result = simulate(streams, MemoryHierarchy.l1i_only(L1I))
        reference = classic.lru_result(streams, L1I)
        assert result.misses == reference.misses
        assert result.icache is not None
        assert result.icache.misses == reference.misses
        assert result.l2 is None and result.itlb is None

    def test_instructions_and_mpki(self, streams):
        result = simulate(streams, MemoryHierarchy.l1i_only(L1I))
        expected = sum(int(c.sum()) for _, c in streams)
        assert result.instructions == expected
        assert result.mpki == pytest.approx(
            1000.0 * result.misses / expected
        )

    def test_detail_flag_produces_locality_metrics(self, streams):
        result = simulate(
            [streams[0]], MemoryHierarchy.l1i_only(L1I, detail=True)
        )
        assert result.icache.locality is not None

    def test_l2_path_matches_manual_composition(self, streams, data_streams):
        from repro.cache.l2 import simulate_l1i_misses

        hierarchy = MemoryHierarchy(
            l1i=L1I, l2=L2, dcache=L1I, itlb_entries=32
        )
        result = simulate(streams, hierarchy, data_streams=data_streams)

        refills = []
        for cpu, (starts, counts) in enumerate(streams):
            addr, pos = simulate_l1i_misses(starts, counts, L1I)
            dres = classic.dcache_result(
                data_streams[cpu][0], L1I, data_streams[cpu][1]
            )
            refills.append((
                np.concatenate([addr, dres.miss_addresses]),
                np.concatenate([pos, dres.miss_positions]),
            ))
        reference_l2 = classic.l2_result(refills, L2)
        assert result.l2.misses_instr == reference_l2.misses_instr
        assert result.l2.misses_data == reference_l2.misses_data
        assert result.l1i_misses == sum(
            len(simulate_l1i_misses(s, c, L1I)[0]) for s, c in streams
        )
        assert result.itlb.misses == classic.itlb_result(
            streams, entries=32
        ).misses
        assert result.dcache.misses == sum(
            classic.dcache_result(a, L1I, p).misses for a, p in data_streams
        )

    def test_dcache_skipped_without_data_streams(self, streams):
        result = simulate(streams, MemoryHierarchy(l1i=L1I, dcache=L1I))
        assert result.dcache is None


class TestSimulateGrid:
    SIZES = (1024, 2048, 4096)
    LINES = (32, 64)

    def test_engines_agree(self, streams):
        batched = simulate_grid(streams, self.SIZES, self.LINES)
        classic_grid = simulate_grid(
            streams, self.SIZES, self.LINES, engine="classic"
        )
        assert batched == classic_grid

    def test_unknown_engine_rejected(self, streams):
        with pytest.raises(SimulationError, match="valid engines"):
            simulate_grid(streams, self.SIZES, self.LINES, engine="turbo")

    def test_empty_streams_rejected(self):
        with pytest.raises(SimulationError, match="no streams"):
            simulate_grid([], self.SIZES, self.LINES)

    def test_grid_covers_every_cell(self, streams):
        grid = simulate_grid(streams, self.SIZES, self.LINES)
        assert set(grid) == {
            (s, line) for s in self.SIZES for line in self.LINES
        }

    def test_matches_per_cell_reference(self, streams):
        grid = simulate_grid(streams, self.SIZES, self.LINES)
        for (size, line), misses in grid.items():
            geometry = CacheGeometry(size, line, 1)
            expected = sum(
                classic.direct_mapped_misses(s, c, geometry)
                for s, c in streams
            )
            assert misses == expected

    def test_obs_counters_recorded(self, streams):
        chunks_before = obs.counter("sim.chunks").value
        points_before = len(obs.series("sim.batch_occupancy").points)
        simulate_grid(streams, self.SIZES, self.LINES, chunk_instructions=512)
        assert obs.counter("sim.chunks").value > chunks_before
        assert len(obs.series("sim.batch_occupancy").points) > points_before

    def test_shared_bytes_counter(self, streams):
        before = obs.counter("sim.shared_bytes").value
        simulate_grid(streams, (1024,), (64,))
        expected = sum(16 * len(s) for s, _ in streams)
        assert obs.counter("sim.shared_bytes").value == before + expected

    def test_parallel_matches_serial(self, streams):
        serial = simulate_grid(streams, self.SIZES, self.LINES, jobs=1)
        fanned = simulate_grid(streams, self.SIZES, self.LINES, jobs=2)
        assert serial == fanned
