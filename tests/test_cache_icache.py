"""Tests for the instruction-cache simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.cache import (
    APP,
    KERNEL,
    CacheGeometry,
    ICacheSim,
    collapse_consecutive,
    expand_line_runs,
    simulate_direct_mapped,
    simulate_lru,
)
from repro.osmodel.kernel import KERNEL_BASE


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestGeometry:
    def test_num_sets(self):
        assert CacheGeometry(64 * 1024, 128, 1).num_sets == 512
        assert CacheGeometry(64 * 1024, 128, 4).num_sets == 128

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            CacheGeometry(1000, 128, 1)

    def test_str(self):
        assert "64KB" in str(CacheGeometry(64 * 1024, 128, 2))


class TestExpandLineRuns:
    def test_single_span_one_line(self):
        starts, counts = spans((0, 4))
        lines, lo, hi, span = expand_line_runs(starts, counts, 64)
        assert lines.tolist() == [0]
        assert lo.tolist() == [0]
        assert hi.tolist() == [3]

    def test_span_crossing_lines(self):
        # 20 instructions from byte 32: bytes 32..112 over 64B lines.
        starts, counts = spans((32, 20))
        lines, lo, hi, span = expand_line_runs(starts, counts, 64)
        assert lines.tolist() == [0, 1]
        assert lo.tolist() == [8, 0]
        assert hi.tolist() == [15, 11]

    def test_zero_count_spans_dropped(self):
        starts, counts = spans((0, 0), (64, 2))
        lines, lo, hi, span = expand_line_runs(starts, counts, 64)
        assert lines.tolist() == [1]
        assert span.tolist() == [1]

    def test_span_indices_preserved(self):
        starts, counts = spans((0, 2), (128, 2))
        _, _, _, span = expand_line_runs(starts, counts, 64)
        assert span.tolist() == [0, 1]

    def test_collapse_consecutive(self):
        lines = np.array([1, 1, 2, 2, 2, 1])
        keep = collapse_consecutive(lines)
        assert lines[keep].tolist() == [1, 2, 1]


class TestDirectMapped:
    def test_cold_misses_only(self):
        geom = CacheGeometry(1024, 64, 1)
        starts, counts = spans((0, 16), (0, 16))
        assert simulate_direct_mapped(starts, counts, geom) == 1

    def test_conflict_thrash(self):
        geom = CacheGeometry(1024, 64, 1)
        # Two lines 1024 bytes apart map to the same set.
        starts, counts = spans(*([(0, 4), (1024, 4)] * 5))
        assert simulate_direct_mapped(starts, counts, geom) == 10

    def test_distinct_sets_no_conflict(self):
        geom = CacheGeometry(1024, 64, 1)
        starts, counts = spans(*([(0, 4), (64, 4)] * 5))
        assert simulate_direct_mapped(starts, counts, geom) == 2

    def test_requires_direct_mapped(self):
        geom = CacheGeometry(1024, 64, 2)
        with pytest.raises(SimulationError):
            simulate_direct_mapped(*spans((0, 4)), geometry=geom)

    def test_agrees_with_lru_sim_when_assoc_1(self):
        geom = CacheGeometry(512, 64, 1)
        rng = np.random.default_rng(9)
        starts = rng.integers(0, 4096, size=400) * 4
        counts = rng.integers(1, 20, size=400)
        dm = simulate_direct_mapped(starts, counts, geom)
        lru = simulate_lru([(starts, counts)], geom).misses
        assert dm == lru


class TestLruSim:
    def test_associativity_avoids_thrash(self):
        dm = CacheGeometry(1024, 64, 1)
        w2 = CacheGeometry(1024, 64, 2)
        starts, counts = spans(*([(0, 4), (1024, 4)] * 5))
        assert simulate_lru([(starts, counts)], dm).misses == 10
        assert simulate_lru([(starts, counts)], w2).misses == 2

    def test_lru_eviction_order(self):
        geom = CacheGeometry(128, 64, 2)  # one set, two ways
        # a, b, c -> c evicts a; then a misses again.
        starts, counts = spans((0, 4), (1024, 4), (2048, 4), (0, 4))
        assert simulate_lru([(starts, counts)], geom).misses == 4

    def test_lru_hit_refreshes(self):
        geom = CacheGeometry(128, 64, 2)
        # a, b, a, c -> c evicts b; a still resident.
        starts, counts = spans((0, 4), (1024, 4), (0, 4), (2048, 4), (0, 4))
        assert simulate_lru([(starts, counts)], geom).misses == 3

    def test_space_attribution(self):
        geom = CacheGeometry(1024, 64, 1)
        starts, counts = spans((0, 4), (KERNEL_BASE, 4))
        result = simulate_lru([(starts, counts)], geom)
        assert result.misses_app == 1
        assert result.misses_kernel == 1

    def test_interference_matrix(self):
        geom = CacheGeometry(128, 64, 1)  # 2 sets
        # App line then kernel line in the same set, alternating.
        k = KERNEL_BASE  # multiple of 128 -> same set as address 0
        starts, counts = spans((0, 4), (k, 4), (0, 4), (k, 4))
        result = simulate_lru([(starts, counts)], geom)
        matrix = result.interference
        # Only the very first access finds the set empty.
        assert matrix.cold == {APP: 1, KERNEL: 0}
        assert matrix.counts[APP][KERNEL] == 1
        assert matrix.counts[KERNEL][APP] == 2
        assert matrix.misses(APP) == 2
        assert matrix.misses(KERNEL) == 2

    def test_unique_lines_footprint(self):
        geom = CacheGeometry(1024, 64, 1)
        starts, counts = spans((0, 32), (0, 32))
        result = simulate_lru([(starts, counts)], geom)
        assert result.unique_lines == 2

    def test_multi_stream_merge(self):
        geom = CacheGeometry(1024, 64, 1)
        s1 = spans((0, 16))
        s2 = spans((0, 16))
        result = simulate_lru([s1, s2], geom)
        assert result.misses == 2  # private caches: each misses once

    def test_empty_streams_rejected(self):
        with pytest.raises(SimulationError):
            simulate_lru([], CacheGeometry(1024, 64, 1))


class TestDetailedStats:
    def test_word_usage_full_line(self):
        geom = CacheGeometry(128, 128, 1)  # single frame of 32 words
        sim = ICacheSim(geom, detail=True)
        starts, counts = spans((0, 32), (1 << 20, 1))  # full use then evict
        sim.access_stream(starts, counts)
        result = sim.finish()
        locality = result.locality
        assert locality.unique_words[32] == 1

    def test_word_usage_partial_line(self):
        geom = CacheGeometry(128, 128, 1)
        sim = ICacheSim(geom, detail=True)
        starts, counts = spans((0, 8), (1 << 20, 1))
        sim.access_stream(starts, counts)
        locality = sim.finish().locality
        assert locality.unique_words[8] == 1

    def test_reuse_counts(self):
        geom = CacheGeometry(128, 128, 1)
        sim = ICacheSim(geom, detail=True)
        # Fetch words 0..7 three times, then evict.
        starts, counts = spans((0, 8), (0, 8), (0, 8), (1 << 20, 1))
        sim.access_stream(starts, counts)
        locality = sim.finish().locality
        assert locality.word_reuse[3] == 8   # 8 words used 3x
        assert locality.word_reuse[0] == 24 + 31  # unused words of both lines

    def test_unused_fraction(self):
        geom = CacheGeometry(128, 128, 1)
        sim = ICacheSim(geom, detail=True)
        starts, counts = spans((0, 16), (1 << 20, 1))
        sim.access_stream(starts, counts)
        locality = sim.finish().locality
        assert locality.words_loaded == 64
        assert locality.words_used == 17
        assert locality.unused_fraction == pytest.approx(1 - 17 / 64)

    def test_lifetime_buckets(self):
        geom = CacheGeometry(128, 128, 1)
        sim = ICacheSim(geom, detail=True)
        starts, counts = spans((0, 4), (1 << 20, 1))
        sim.access_stream(starts, counts)
        locality = sim.finish().locality
        assert locality.lifetimes.sum() == 2

    def test_detail_misses_match_plain(self):
        geom = CacheGeometry(512, 64, 2)
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 2048, size=300) * 4
        counts = rng.integers(1, 12, size=300)
        plain = simulate_lru([(starts, counts)], geom, detail=False)
        detailed = simulate_lru([(starts, counts)], geom, detail=True)
        assert plain.misses == detailed.misses


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=6), st.data())
    def test_lru_inclusion_bigger_cache_fewer_misses(self, shift, data):
        """With LRU and fixed line size/assoc-per-set scaling by sets,
        doubling the sets never increases misses (set-refinement holds
        for power-of-two set counts under address-modulo indexing)."""
        n = data.draw(st.integers(min_value=10, max_value=120))
        addr = data.draw(
            st.lists(st.integers(min_value=0, max_value=255), min_size=n, max_size=n)
        )
        starts = np.array(addr, dtype=np.int64) * 64
        counts = np.ones(n, dtype=np.int64)
        small = CacheGeometry(1024, 64, 1)
        big = CacheGeometry(2048, 64, 1)
        m_small = simulate_lru([(starts, counts)], small).misses
        m_big = simulate_lru([(starts, counts)], big).misses
        assert m_big <= m_small

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_full_assoc_lru_monotone_in_size(self, data):
        n = data.draw(st.integers(min_value=10, max_value=100))
        addr = data.draw(
            st.lists(st.integers(min_value=0, max_value=63), min_size=n, max_size=n)
        )
        starts = np.array(addr, dtype=np.int64) * 64
        counts = np.ones(n, dtype=np.int64)
        small = CacheGeometry(256, 64, 4)   # fully assoc, 4 lines
        big = CacheGeometry(512, 64, 8)     # fully assoc, 8 lines
        m_small = simulate_lru([(starts, counts)], small).misses
        m_big = simulate_lru([(starts, counts)], big).misses
        assert m_big <= m_small

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_misses_bounded_by_accesses(self, data):
        n = data.draw(st.integers(min_value=1, max_value=80))
        addr = data.draw(
            st.lists(st.integers(min_value=0, max_value=500), min_size=n, max_size=n)
        )
        starts = np.array(addr, dtype=np.int64) * 4
        counts = np.ones(n, dtype=np.int64)
        geom = CacheGeometry(512, 64, 2)
        result = simulate_lru([(starts, counts)], geom)
        assert 0 <= result.misses <= result.accesses
