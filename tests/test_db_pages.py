"""Tests for slotted pages and the page store."""

import pytest

from repro.errors import PageError
from repro.db.pages import HEADER_SIZE, PAGE_SIZE, Page, SLOT_SIZE
from repro.db.storage import PageStore


class TestPage:
    def test_insert_and_read(self):
        page = Page(1)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_slots_are_sequential(self):
        page = Page(1)
        assert [page.insert(bytes([i])) for i in range(5)] == list(range(5))

    def test_free_space_decreases(self):
        page = Page(1)
        before = page.free_space
        page.insert(b"x" * 100)
        assert page.free_space == before - 100 - SLOT_SIZE

    def test_overflow_rejected(self):
        page = Page(1)
        big = b"x" * (PAGE_SIZE - HEADER_SIZE - SLOT_SIZE + 1)
        with pytest.raises(PageError):
            page.insert(big)

    def test_fill_to_capacity(self):
        page = Page(1)
        count = 0
        while page.fits(100):
            page.insert(b"y" * 100)
            count += 1
        assert count == (PAGE_SIZE - HEADER_SIZE) // (100 + SLOT_SIZE)
        with pytest.raises(PageError):
            page.insert(b"y" * 100)

    def test_empty_record_rejected(self):
        with pytest.raises(PageError):
            Page(1).insert(b"")

    def test_update_same_size_in_place(self):
        page = Page(1)
        slot = page.insert(b"aaaa")
        free = page.free_space
        page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"
        assert page.free_space == free

    def test_update_smaller_shrinks(self):
        page = Page(1)
        slot = page.insert(b"aaaaaaaa")
        page.update(slot, b"bb")
        assert page.read(slot) == b"bb"

    def test_update_larger_relocates(self):
        page = Page(1)
        slot = page.insert(b"aa")
        page.update(slot, b"bbbbbbbb")
        assert page.read(slot) == b"bbbbbbbb"

    def test_delete_tombstones(self):
        page = Page(1)
        s0 = page.insert(b"first")
        s1 = page.insert(b"second")
        page.delete(s0)
        assert page.is_deleted(s0)
        with pytest.raises(PageError):
            page.read(s0)
        assert page.read(s1) == b"second"  # other RIDs stay valid

    def test_double_delete_rejected(self):
        page = Page(1)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_records_skips_tombstones(self):
        page = Page(1)
        page.insert(b"a")
        dead = page.insert(b"b")
        page.insert(b"c")
        page.delete(dead)
        assert page.records() == [b"a", b"c"]

    def test_roundtrip_through_bytes(self):
        page = Page(7)
        page.insert(b"payload")
        page.set_lsn(42)
        clone = Page(7, bytearray(page.to_bytes()))
        assert clone.read(0) == b"payload"
        assert clone.lsn == 42
        assert clone.checksum() == page.checksum()

    def test_wrong_page_id_detected(self):
        page = Page(7)
        with pytest.raises(PageError):
            Page(8, bytearray(page.to_bytes()))

    def test_bad_buffer_size_rejected(self):
        with pytest.raises(PageError):
            Page(1, bytearray(10))

    def test_bad_slot_index(self):
        page = Page(1)
        with pytest.raises(PageError):
            page.read(0)


class TestPageStore:
    def test_allocate_assigns_increasing_ids(self):
        store = PageStore()
        first = store.allocate()
        second = store.allocate()
        assert second.page_id == first.page_id + 1

    def test_write_then_read_roundtrip(self):
        store = PageStore()
        page = store.allocate()
        page.insert(b"data")
        store.write(page)
        again = store.read(page.page_id)
        assert again.read(0) == b"data"

    def test_read_unknown_page_raises(self):
        with pytest.raises(PageError):
            PageStore().read(99)

    def test_write_unallocated_rejected(self):
        store = PageStore()
        with pytest.raises(PageError):
            store.write(Page(55))

    def test_io_hooks_fire(self):
        store = PageStore()
        events = []
        store.on_read = lambda pid: events.append(("r", pid))
        store.on_write = lambda pid: events.append(("w", pid))
        page = store.allocate()
        store.write(page)
        store.read(page.page_id)
        assert events == [("w", page.page_id), ("r", page.page_id)]

    def test_counters(self):
        store = PageStore()
        page = store.allocate()
        store.write(page)
        store.read(page.page_id)
        store.read(page.page_id)
        assert store.writes == 1
        assert store.reads == 2
        assert store.num_pages == 1
