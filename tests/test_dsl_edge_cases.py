"""Edge cases of the DSL compiler, walker and instrumentation."""

import pytest

from repro.db.instrument import CallEvent, CallTrace, NullTrace
from repro.errors import SimulationError
from repro.execution import CfgWalker
from repro.ir import Terminator
from repro.progen import (
    Call,
    CallSeq,
    Loop,
    RoutineSpec,
    Straight,
    build_binary,
)


def make_walker(app_specs):
    app = build_binary(app_specs, "app")
    kernel = build_binary([RoutineSpec("k.x", body=[Straight(1)])], "kern")
    return CfgWalker(app, kernel)


def event(name, children=(), **bindings):
    ev = CallEvent(name, dict(bindings))
    ev.bindings.setdefault("salt", 1)
    ev.children = list(children)
    return ev


class TestCallSeqArities:
    def test_single_match_has_no_dispatch(self):
        callee = RoutineSpec("a", body=[Straight(1)])
        node = CallSeq(("a",))
        walker = make_walker([RoutineSpec("r", body=[node]), callee])
        header = walker.app.binary.block(node.bid)
        # Header falls straight into the call block (no dispatch cmp).
        call_block = walker.app.binary.block(getattr(node, "_call_0"))
        assert header.fallthrough == call_block.bid
        out = walker.expand(
            [event("r", children=[event("a"), event("a")])]
        ).tolist()
        assert out.count(call_block.bid) == 2

    def test_three_matches_dispatch_chain(self):
        specs = [RoutineSpec(n, body=[Straight(1)]) for n in ("a", "b", "c")]
        node = CallSeq(("a", "b", "c"))
        walker = make_walker([RoutineSpec("r", body=[node])] + specs)
        out = walker.expand(
            [event("r", children=[event("c"), event("a"), event("b")])]
        ).tolist()
        # Reaching arm c executes both dispatch compares.
        d0 = getattr(node, "_dispatch_0")
        d1 = getattr(node, "_dispatch_1")
        assert out.count(d0) == 3   # every iteration tests arm 0
        assert out.count(d1) == 2   # arms b and c go further

    def test_empty_run_emits_exit_test_only(self):
        callee = RoutineSpec("a", body=[Straight(1)])
        tail = RoutineSpec("t", body=[Straight(1)])
        node = CallSeq(("a",))
        walker = make_walker(
            [RoutineSpec("r", body=[node, Call("t")]), callee, tail]
        )
        out = walker.expand([event("r", children=[event("t")])]).tolist()
        assert out.count(node.bid) == 1
        assert node.latch_bid not in out


class TestLoopMinus:
    def test_minus_subtracts(self):
        body = Straight(2)
        loop = Loop("depth", body=[body], minus=1)
        walker = make_walker([RoutineSpec("r", body=[loop])])
        out = walker.expand([event("r", depth=3)]).tolist()
        assert out.count(body.bid) == 2

    def test_minus_floors_at_zero(self):
        body = Straight(2)
        loop = Loop("depth", body=[body], minus=5)
        walker = make_walker([RoutineSpec("r", body=[loop])])
        out = walker.expand([event("r", depth=3)]).tolist()
        assert body.bid not in out


class TestCallTrace:
    def test_take_inside_open_op_rejected(self):
        trace = CallTrace()
        with pytest.raises(RuntimeError):
            with trace.op("x"):
                trace.take()

    def test_salt_autobinds_and_varies(self):
        trace = CallTrace()
        with trace.op("a"):
            pass
        with trace.op("b"):
            pass
        events = trace.take()
        assert events[0].bindings["salt"] != events[1].bindings["salt"]

    def test_explicit_salt_kept(self):
        trace = CallTrace()
        with trace.op("a", salt=42):
            pass
        assert trace.take()[0].bindings["salt"] == 42

    def test_find_descends(self):
        trace = CallTrace()
        with trace.op("outer"):
            with trace.op("inner"):
                trace.leaf("leafy")
        outer = trace.take()[0]
        assert [e.name for e in outer.find("leafy")] == ["leafy"]

    def test_null_trace_is_noop(self):
        trace = NullTrace()
        with trace.op("anything", x=1) as ev:
            ev.bind(y=2)
        assert trace.take() == []


class TestWalkerMisc:
    def test_unknown_routine_raises(self):
        walker = make_walker([RoutineSpec("r", body=[Straight(1)])])
        from repro.errors import IRError

        with pytest.raises(IRError):
            walker.expand([event("ghost")])

    def test_total_blocks(self):
        walker = make_walker([RoutineSpec("r", body=[Straight(1)])])
        assert walker.total_blocks == (
            walker.app.binary.num_blocks + walker.kernel.binary.num_blocks
        )
