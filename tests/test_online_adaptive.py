"""End-to-end tests of the online adaptation loop (quick scale)."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError, LayoutError
from repro.harness.experiment import Experiment
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF
from repro.harness.store import ArtifactStore
from repro.layout import SpikeOptimizer
from repro.online import (
    AdaptiveRelayout,
    OnlineConfig,
    phased_experiment_config,
    run_online_experiment,
)


@pytest.fixture(scope="module")
def exp():
    experiment = Experiment(phased_experiment_config())
    _ = experiment.trace
    return experiment


@pytest.fixture(scope="module")
def report(exp):
    return run_online_experiment(exp, OnlineConfig(epochs=3))


class TestOnlineExperiment:
    def test_acceptance(self, report):
        # The ISSUE's bar: post-drift the adaptive layout lands within
        # 10% of a freshly re-profiled offline layout while the static
        # layout decays measurably.
        assert report.passes(margin=1.10)
        assert report.decay_ratio > 1.5
        assert report.final.adaptive_mpki < report.final.static_mpki

    def test_detects_the_phase_shift(self, report):
        assert report.swaps >= 1
        assert any(r.action == "swap" for r in report.rows)
        assert max(r.drift_score for r in report.rows) > 0.40

    def test_report_shape(self, report):
        assert len(report.rows) == 3
        assert [r.epoch for r in report.rows] == [0, 1, 2]
        for row in report.rows:
            assert row.instructions > 0
            for arm in ("static", "adaptive", "reprofiled", "oracle"):
                assert getattr(row, f"{arm}_mpki") >= 0.0
            assert row.action in ("swap", "refresh", "consolidate", "hold")

    def test_first_epoch_is_pre_shift(self, report):
        # Before the shift every arm runs a TPC-B-trained layout:
        # static must not yet have decayed.
        first = report.rows[0]
        assert first.static_mpki == pytest.approx(first.reprofiled_mpki)
        assert first.adaptive_mpki == pytest.approx(first.static_mpki)

    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["config"]["epochs"] == 3
        assert len(payload["epochs"]) == 3
        assert payload["swaps"] == report.swaps
        assert payload["recovery_ratio"] == round(report.recovery_ratio, 4)

    def test_render_mentions_the_summary(self, report):
        text = report.render()
        assert "layout swaps" in text
        assert f"{report.recovery_ratio:.3f}x" in text

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="epochs"):
            OnlineConfig(epochs=1)
        with pytest.raises(ConfigError, match="shift_after"):
            OnlineConfig(shift_after=0)


class TestAdaptiveRelayout:
    def test_layouts_cached_by_profile_fingerprint(self, exp, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        relayout = AdaptiveRelayout(exp.app.binary, store=store)
        first = relayout.rebuild(exp.profile)
        assert first.cache == CACHE_MISS
        second = relayout.rebuild(exp.profile)
        assert second.cache == CACHE_HIT
        assert second.layout.block_order() == first.layout.block_order()
        assert second.rebuilt_procs == ()

    def test_without_store_every_rebuild_is_cold(self, exp):
        relayout = AdaptiveRelayout(exp.app.binary)
        result = relayout.rebuild(exp.profile)
        assert result.cache == CACHE_OFF
        assert result.rebuilt_procs == ("*",)

    def test_incremental_rebuild_reuses_unchanged_chains(self, exp):
        relayout = AdaptiveRelayout(exp.app.binary)
        baseline = relayout.rebuild(exp.profile)
        # Same profile again: nothing drifted, everything is reusable.
        incremental = relayout.rebuild(
            exp.profile,
            previous=baseline.optimizer,
            reference=exp.profile,
        )
        assert incremental.rebuilt_procs == ()
        assert incremental.reused_chains > 0
        assert incremental.layout.block_order() == baseline.layout.block_order()

    def test_corrupt_cache_entry_degrades_to_rebuild(self, exp, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        relayout = AdaptiveRelayout(exp.app.binary, store=store)
        first = relayout.rebuild(exp.profile)
        path = store.path(exp.profile.fingerprint(), "online-layout-all.json")
        path.write_text("{not json")
        again = relayout.rebuild(exp.profile)
        assert again.cache == CACHE_MISS
        assert again.layout.block_order() == first.layout.block_order()


class TestReuseChainings:
    def test_rejects_optimizer_for_different_binary(self, exp):
        ours = SpikeOptimizer(exp.app.binary, exp.profile)
        theirs = SpikeOptimizer(
            exp.kernel.binary, exp.kernel_profile
        )
        with pytest.raises(LayoutError, match="binary"):
            ours.reuse_chainings(theirs, rebuild=())


class TestOnlineCli:
    def test_cli_runs_and_checks(self, capsys):
        code = main(
            ["--no-cache", "--quiet", "online", "--epochs", "3", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "layout swaps" in out

    def test_cli_json_output(self, capsys):
        code = main(
            ["--no-cache", "--quiet", "online", "--epochs", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["epochs"] == 3
        assert payload["recovery_ratio"] <= 1.10
