"""Tests for the DSS workload (read-only aggregation queries)."""

import numpy as np
import pytest

from repro.db import CallTrace, Engine
from repro.errors import WorkloadError
from repro.execution import CfgWalker, OltpSystem, SystemConfig
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, build_app_program
from repro.workloads import (
    DssClient,
    DssConfig,
    DssQuery,
    DssWorkload,
    QUERY_MIX,
    TpcbConfig,
    load_database,
    run_transactions,
)


def small_dss(seed=3):
    return DssConfig(tpcb=TpcbConfig(branches=3, accounts_per_branch=80),
                     seed=seed)


def loaded_engine(config, trace=None):
    engine = Engine(pool_capacity=2048, btree_order=32, trace=trace)
    load_database(engine, config.tpcb)
    return engine


class TestDssQueries:
    def test_q1_branch_balance_correct(self):
        config = small_dss()
        engine = loaded_engine(config)
        net = run_transactions(engine, config.tpcb, 30)
        # Sum across branches via Q1 equals the OLTP net delta.
        total = 0
        for branch in range(config.tpcb.branches):
            txn = engine.begin()
            rows = engine.scan_rows(
                txn, "account", lambda r, b=branch: r["branch_id"] == b
            )
            engine.commit(txn)
            total += sum(r["balance"] for r in rows)
        assert total == net

    def test_q2_teller_summary_correct(self):
        config = small_dss()
        engine = loaded_engine(config)
        net = run_transactions(engine, config.tpcb, 20)
        import random

        query = DssQuery(engine, "q2_teller_summary", config, random.Random(0))
        while not query.done:
            query.run_step()
        assert query.result == net

    def test_q3_probes_run(self):
        config = small_dss()
        engine = loaded_engine(config)
        import random

        query = DssQuery(engine, "q3_spot_check", config, random.Random(1))
        while not query.done:
            query.run_step()
        assert query.result == 0  # all balances zero before any updates

    def test_unknown_kind_rejected(self):
        config = small_dss()
        engine = loaded_engine(config)
        import random

        query = DssQuery(engine, "q9", config, random.Random(0))
        query.run_step()  # begin
        with pytest.raises(WorkloadError):
            query.run_step()

    def test_completed_query_rejects_steps(self):
        config = small_dss()
        engine = loaded_engine(config)
        import random

        query = DssQuery(engine, "q2_teller_summary", config, random.Random(0))
        while not query.done:
            query.run_step()
        with pytest.raises(WorkloadError):
            query.run_step()

    def test_client_round_robins_mix(self):
        config = small_dss()
        engine = loaded_engine(config)
        client = DssClient(config, pid=0)
        kinds = [client.next_transaction(engine).kind
                 for _ in range(2 * len(QUERY_MIX))]
        assert kinds == list(QUERY_MIX) * 2


class TestDssTracing:
    def test_scan_event_protocol(self):
        trace = CallTrace()
        config = small_dss()
        engine = loaded_engine(config, trace=trace)
        trace.take()
        txn = engine.begin()
        rows = engine.scan_rows(txn, "account")
        engine.commit(txn)
        events = trace.take()
        scan = next(e for e in events if e.name == "sql_scan")
        assert scan.bindings["rows"] == len(rows) == config.tpcb.accounts
        assert scan.bindings["pages"] >= 1
        assert scan.find("buffer_get")

    def test_scan_expands_through_walker(self):
        app = build_app_program(
            AppCodeConfig(scale=0.5, filler_routines=5, filler_instructions=1000)
        )
        kernel = build_kernel_program(
            KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
        )
        walker = CfgWalker(app, kernel)
        trace = CallTrace()
        config = small_dss()
        engine = loaded_engine(config, trace=trace)
        trace.take()
        txn = engine.begin()
        engine.scan_rows(txn, "teller")
        engine.commit(txn)
        out = []
        for event in trace.take():
            walker.walk_event(event, out)
        scan_spec = app.spec("sql_scan@teller")
        assert scan_spec.prologue_bid in out


class TestDssSystem:
    def test_system_runs_dss(self):
        app = build_app_program(
            AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2000)
        )
        kernel = build_kernel_program(
            KernelCodeConfig(scale=0.5, filler_routines=4, filler_instructions=800)
        )
        system = OltpSystem(
            app, kernel,
            system_config=SystemConfig(cpus=2, processes_per_cpu=2),
            workload=DssWorkload(small_dss()),
        )
        trace = system.run(transactions=9, warmup=2)
        assert trace.transactions == 9
        # Read-only: branch balances untouched.
        engine = system.engine
        txn = engine.begin()
        assert engine.get_row(txn, "branch", 0)["balance"] == 0
        engine.commit(txn)


class TestRangeQueries:
    def test_range_search_matches_point_lookups(self):
        config = small_dss()
        engine = loaded_engine(config)
        pairs = engine.tables["account"].index.range_search(10, 25)
        assert [k for k, _ in pairs] == list(range(10, 26))

    def test_range_search_empty_and_inverted(self):
        config = small_dss()
        engine = loaded_engine(config)
        index = engine.tables["account"].index
        assert index.range_search(10**6, 2 * 10**6) == []
        assert index.range_search(20, 10) == []

    def test_range_rows_returns_decoded_rows(self):
        config = small_dss()
        engine = loaded_engine(config)
        txn = engine.begin()
        rows = engine.range_rows(txn, "account", 5, 9)
        engine.commit(txn)
        assert [r["account_id"] for r in rows] == [5, 6, 7, 8, 9]

    def test_range_rows_traced_and_walkable(self):
        from repro.db import CallTrace

        trace = CallTrace()
        config = small_dss()
        engine = loaded_engine(config, trace=trace)
        trace.take()
        txn = engine.begin()
        engine.range_rows(txn, "account", 0, 30)
        engine.commit(txn)
        app = build_app_program(
            AppCodeConfig(scale=0.5, filler_routines=5, filler_instructions=1000)
        )
        kernel = build_kernel_program(
            KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
        )
        walker = CfgWalker(app, kernel)
        out = []
        for event in trace.take():
            walker.walk_event(event, out)
        assert app.spec("index_scan@account").prologue_bid in out

    def test_q4_query_correct_after_updates(self):
        config = small_dss()
        engine = loaded_engine(config)
        run_transactions(engine, config.tpcb, 15)
        txn = engine.begin()
        rows = engine.range_rows(txn, "account", 0, config.tpcb.accounts - 1)
        full = engine.scan_rows(txn, "account")
        engine.commit(txn)
        assert sum(r["balance"] for r in rows) == sum(r["balance"] for r in full)

    def test_unindexed_table_rejected(self):
        from repro.errors import DatabaseError

        config = small_dss()
        engine = loaded_engine(config)
        txn = engine.begin()
        with pytest.raises(DatabaseError):
            engine.range_rows(txn, "history", 0, 10)
        engine.abort(txn)
