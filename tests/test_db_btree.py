"""Tests for the B+tree index, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatabaseError, DuplicateKeyError, KeyNotFoundError
from repro.db.btree import BTree
from repro.db.buffer import BufferPool
from repro.db.storage import PageStore


def make_tree(order=8, capacity=256):
    pool = BufferPool(PageStore(), capacity=capacity)
    return BTree("t", pool, order=order)


class TestBTreeBasics:
    def test_empty_search(self):
        tree = make_tree()
        assert tree.search(1) is None

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert(5, (1, 0))
        assert tree.search(5) == (1, 0)

    def test_lookup_raises_on_missing(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.lookup(42)

    def test_duplicate_rejected(self):
        tree = make_tree()
        tree.insert(1, (1, 0))
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, (1, 1))

    def test_order_validated(self):
        with pytest.raises(DatabaseError):
            make_tree(order=2)

    def test_split_grows_height(self):
        tree = make_tree(order=4)
        assert tree.height == 1
        for key in range(10):
            tree.insert(key, (1, key))
        assert tree.height > 1
        for key in range(10):
            assert tree.search(key) == (1, key)

    def test_many_keys_sequential(self):
        tree = make_tree(order=8)
        for key in range(500):
            tree.insert(key, (key // 100 + 1, key % 100))
        for key in range(500):
            assert tree.search(key) == (key // 100 + 1, key % 100)
        assert tree.search(500) is None

    def test_many_keys_reverse(self):
        tree = make_tree(order=8)
        for key in reversed(range(300)):
            tree.insert(key, (1, key % 60))
        for key in range(300):
            assert tree.search(key) == (1, key % 60)

    def test_items_in_key_order(self):
        tree = make_tree(order=4)
        import random

        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, (1, key % 50))
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_delete_removes_key(self):
        tree = make_tree(order=4)
        for key in range(20):
            tree.insert(key, (1, key))
        tree.delete(7)
        assert tree.search(7) is None
        assert tree.search(8) == (1, 8)
        with pytest.raises(KeyNotFoundError):
            tree.delete(7)

    def test_descent_hook(self):
        tree = make_tree(order=4)
        seen = []
        tree.on_descent = lambda levels, found: seen.append((levels, found))
        for key in range(30):
            tree.insert(key, (1, key))
        tree.search(5)
        tree.search(999)
        assert seen[-2] == (tree.height, True)
        assert seen[-1] == (tree.height, False)

    def test_node_too_big_for_page_rejected(self):
        with pytest.raises(DatabaseError):
            make_tree(order=1000)


class TestBTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), unique=True,
                    min_size=1, max_size=200))
    def test_insert_then_find_all(self, keys):
        tree = make_tree(order=6, capacity=1024)
        for i, key in enumerate(keys):
            tree.insert(key, (1 + i // 100, i % 100))
        for i, key in enumerate(keys):
            assert tree.search(key) == (1 + i // 100, i % 100)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), unique=True,
                    min_size=2, max_size=150))
    def test_items_sorted_invariant(self, keys):
        tree = make_tree(order=5, capacity=1024)
        for key in keys:
            tree.insert(key, (1, 0))
        listed = [k for k, _ in tree.items()]
        assert listed == sorted(keys)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5000), unique=True,
                 min_size=10, max_size=100),
        st.data(),
    )
    def test_delete_subset(self, keys, data):
        tree = make_tree(order=5, capacity=1024)
        for key in keys:
            tree.insert(key, (1, 0))
        victims = data.draw(st.sets(st.sampled_from(keys), max_size=len(keys) // 2))
        for key in victims:
            tree.delete(key)
        for key in keys:
            if key in victims:
                assert tree.search(key) is None
            else:
                assert tree.search(key) == (1, 0)
