"""Tests for victim cache, temporal ordering, and branch statistics."""

import numpy as np
import pytest

from repro.errors import LayoutError, SimulationError
from repro.analysis import branch_stats, merge_branch_stats
from repro.cache import CacheGeometry, simulate_lru, simulate_victim_cache
from repro.ir import Binary, CodeUnit, Procedure, Terminator
from repro.layout import build_trg, temporal_order


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestVictimCache:
    GEOM = CacheGeometry(1024, 64, 1)

    def test_absorbs_two_way_conflict(self):
        # Two lines thrashing one DM set: a victim cache fixes it.
        starts, counts = spans(*([(0, 4), (1024, 4)] * 20))
        result = simulate_victim_cache(starts, counts, self.GEOM, 4)
        assert result.raw_misses == 40
        assert result.misses == 2  # only the two cold misses remain

    def test_capacity_misses_not_absorbed(self):
        # A cyclic sweep over 4x the cache with a small victim buffer.
        lines = [(i * 64, 16) for i in range(64)] * 4
        starts, counts = spans(*lines)
        result = simulate_victim_cache(starts, counts, self.GEOM, 4)
        assert result.conflict_fraction < 0.35

    def test_more_entries_absorb_more(self):
        starts, counts = spans(*([(0, 4), (1024, 4), (2048, 4)] * 20))
        small = simulate_victim_cache(starts, counts, self.GEOM, 1)
        big = simulate_victim_cache(starts, counts, self.GEOM, 8)
        assert big.victim_hits >= small.victim_hits

    def test_zero_entries_rejected(self):
        with pytest.raises(SimulationError):
            simulate_victim_cache(*spans((0, 4)), geometry=self.GEOM,
                                  victim_entries=0)

    def test_raw_misses_match_plain_cache(self):
        rng = np.random.default_rng(8)
        starts = (rng.integers(0, 2000, size=300) * 64).astype(np.int64)
        counts = np.full(300, 8, dtype=np.int64)
        plain = simulate_lru([(starts, counts)], self.GEOM).misses
        victim = simulate_victim_cache(starts, counts, self.GEOM, 4)
        assert victim.raw_misses == plain


def _temporal_fixture():
    binary = Binary()
    for name in ("a", "b", "c", "d"):
        proc = Procedure(name)
        proc.add_block("x", 16, Terminator.RETURN)
        binary.add_procedure(proc)
    binary.seal()
    units = [
        CodeUnit(name=n, proc_name=n, block_ids=(binary.proc(n).entry.bid,))
        for n in binary.proc_order()
    ]
    bid = {n: binary.proc(n).entry.bid for n in "abcd"}
    return binary, units, bid


class TestTemporalOrdering:
    def test_trg_weights_cooccurrence(self):
        binary, units, bid = _temporal_fixture()
        # a and b alternate tightly; c appears once; d never.
        stream = np.array([bid["a"], bid["b"]] * 10 + [bid["c"]], dtype=np.int64)
        graph = build_trg(binary, units, [stream], window=4)
        assert graph.weight("a", "b") > graph.weight("a", "c")
        assert graph.weight("a", "d") == 0

    def test_window_limits_reach(self):
        binary, units, bid = _temporal_fixture()
        stream = np.array(
            [bid["a"], bid["b"], bid["c"], bid["d"]], dtype=np.int64
        )
        tight = build_trg(binary, units, [stream], window=1)
        # With window 1, only adjacent entries connect.
        assert tight.weight("a", "c") == 0
        assert tight.weight("a", "b") > 0

    def test_consecutive_repeats_collapse(self):
        binary, units, bid = _temporal_fixture()
        stream = np.array([bid["a"]] * 50 + [bid["b"]], dtype=np.int64)
        graph = build_trg(binary, units, [stream], window=8)
        assert graph.weight("a", "b") == 1

    def test_temporal_order_places_affine_units_adjacent(self):
        binary, units, bid = _temporal_fixture()
        stream = np.array([bid["a"], bid["c"]] * 30, dtype=np.int64)
        counts = np.zeros(binary.num_blocks, dtype=np.int64)
        counts[bid["a"]] = 30
        counts[bid["c"]] = 30
        layout = temporal_order(binary, units, [stream], counts, window=4)
        order = [u.name for u in layout.units]
        assert abs(order.index("a") - order.index("c")) == 1

    def test_bad_window_rejected(self):
        binary, units, _ = _temporal_fixture()
        with pytest.raises(LayoutError):
            build_trg(binary, units, [], window=0)


class TestBranchStats:
    def test_no_breaks_in_straight_run(self):
        stats = branch_stats(*spans((0, 4), (16, 4), (32, 4)))
        assert stats.breaks == 0
        assert stats.transitions == 2

    def test_breaks_counted(self):
        stats = branch_stats(*spans((0, 4), (100, 4), (116, 4), (0, 4)))
        assert stats.breaks == 2
        assert stats.break_fraction == pytest.approx(2 / 3)

    def test_merge(self):
        a = branch_stats(*spans((0, 4), (100, 4)))
        b = branch_stats(*spans((0, 4), (16, 4)))
        merged = merge_branch_stats([a, b])
        assert merged.breaks == 1
        assert merged.transitions == 2
        assert merged.instructions == 16

    def test_empty(self):
        stats = branch_stats(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert stats.break_fraction == 0.0
