"""Mutation tests for the PRF* profile/CFG-consistency analyses, plus
the flow-graph estimator regression the checker was built to catch."""

from collections import defaultdict

import numpy as np
import pytest

from repro.check import check_flow_graph, check_profile
from repro.ir import Binary, FlowGraph, Procedure, Terminator
from repro.ir.flowgraph import flow_graph_from_block_counts
from repro.profiles import PixieProfiler, Profile
from repro.progen import AppCodeConfig, build_app_program


@pytest.fixture(scope="module")
def program():
    return build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000)
    )


@pytest.fixture(scope="module")
def profile(program):
    from repro.db.instrument import CallEvent
    from repro.execution import CfgWalker
    from repro.osmodel import KernelCodeConfig, build_kernel_program

    kernel = build_kernel_program(
        KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
    )
    walker = CfgWalker(program, kernel)
    out = []
    for salt in range(200):
        walker.walk_event(CallEvent("txn_begin", {"salt": salt}), out)
    blocks = np.asarray(out, dtype=np.int64)
    profiler = PixieProfiler(program.binary)
    profiler.add_stream(blocks[blocks < walker.kernel_offset])
    return profiler.profile()


def clone(profile):
    fresh = Profile(profile.binary)
    fresh.block_counts = profile.block_counts.copy()
    fresh.edge_counts = defaultdict(int, profile.edge_counts)
    return fresh


def codes_of(program, profile):
    return check_profile(program.binary, profile).codes()


class TestProfileMutations:
    def test_clean_profile_has_no_errors_or_warnings(self, program, profile):
        report = check_profile(program.binary, profile)
        assert not report.errors, report.render()
        assert not report.warnings, report.render()

    def test_prf001_missing_inflow(self, program, profile):
        binary = program.binary
        bad = clone(profile)
        entries = {binary.entry_bid(name) for name in binary.proc_order()}
        victim = max(
            (bid for bid in range(binary.num_blocks) if bid not in entries),
            key=bad.count,
        )
        assert bad.count(victim) > 100  # hot enough to beat the slack
        for (src, dst) in list(bad.edge_counts):
            if dst == victim:
                del bad.edge_counts[(src, dst)]
        assert "PRF001" in codes_of(program, bad)

    def test_prf002_inflated_edge(self, program, profile):
        bad = clone(profile)
        edge = max(bad.edge_counts, key=bad.edge_counts.get)
        bad.edge_counts[edge] = bad.edge_counts[edge] * 10 + 10_000
        assert "PRF002" in codes_of(program, bad)

    def test_prf003_illegal_transition(self, program, profile):
        binary = program.binary
        bad = clone(profile)
        src = next(
            b for b in binary.blocks()
            if b.terminator is Terminator.COND_BRANCH and bad.count(b.bid) > 0
        )
        dst = next(
            bid for bid in range(binary.num_blocks) if bid not in src.succs
        )
        bad.edge_counts[(src.bid, dst)] += 5
        assert "PRF003" in codes_of(program, bad)

    def test_prf004_callsites_outnumber_entries(self, program, profile):
        binary = program.binary
        bad = clone(profile)
        caller = max(
            (b for b in binary.blocks() if b.terminator is Terminator.CALL),
            key=lambda b: bad.count(b.bid),
        )
        assert bad.count(caller.bid) > 100
        bad.block_counts[binary.entry_bid(caller.call_target)] = 0
        assert "PRF004" in codes_of(program, bad)


class TestReachability:
    @pytest.fixture()
    def orphan_binary(self):
        proc = Procedure("p")
        proc.add_block("entry", 4, Terminator.UNCOND_BRANCH, succs=("exit",))
        proc.add_block("orphan", 4, Terminator.UNCOND_BRANCH, succs=("exit",))
        proc.add_block("exit", 2, Terminator.RETURN)
        binary = Binary()
        binary.add_procedure(proc)
        binary.seal()
        return binary, proc.blocks[1].bid

    def test_prf006_dead_unreachable_block(self, orphan_binary):
        binary, orphan = orphan_binary
        report = check_profile(binary, Profile(binary))
        assert "PRF006" in report.codes()
        assert not report.errors and not report.warnings

    def test_prf005_executed_unreachable_block(self, orphan_binary):
        binary, orphan = orphan_binary
        profile = Profile(binary)
        profile.block_counts[orphan] = 50
        report = check_profile(binary, profile)
        assert "PRF005" in report.codes()
        assert report.warnings and not report.errors


class TestFlowGraphEstimator:
    """Regression for the latent estimator defect: per-edge
    min(src, dst) weights summed over two hot arms exceeded the
    source block's own execution count."""

    @pytest.fixture()
    def diamond(self):
        proc = Procedure("d")
        proc.add_block("entry", 4, Terminator.COND_BRANCH, succs=("left", "right"))
        proc.add_block("left", 4, Terminator.UNCOND_BRANCH, succs=("exit",))
        proc.add_block("right", 4, Terminator.FALLTHROUGH, succs=("exit",))
        proc.add_block("exit", 2, Terminator.RETURN)
        binary = Binary()
        binary.add_procedure(proc)
        binary.seal()
        counts = np.zeros(binary.num_blocks, dtype=np.int64)
        # Both arms hot: min(entry, arm) sums to 1700 > 1000 executions.
        for label, n in (("entry", 1000), ("left", 900), ("right", 800),
                         ("exit", 1000)):
            counts[proc.block(label).bid] = n
        return proc, counts

    def test_unscaled_min_estimate_violates_conservation(self, diamond):
        proc, counts = diamond
        graph = FlowGraph(proc)
        for block in proc.blocks:  # the pre-fix estimator, verbatim
            for dst in block.succs:
                graph.set_weight(
                    block.bid, dst,
                    min(float(counts[block.bid]), float(counts[dst])),
                )
        findings = check_flow_graph(graph, counts)
        assert any(d.code == "PRF002" for d in findings)

    def test_fixed_estimator_conserves_flow(self, diamond):
        proc, counts = diamond
        graph = flow_graph_from_block_counts(proc, counts)
        assert check_flow_graph(graph, counts) == []
        entry = proc.block("entry")
        outflow = sum(graph.weight(entry.bid, dst) for dst in entry.succs)
        assert outflow == pytest.approx(float(counts[entry.bid]))

    def test_fixed_estimator_on_real_binary(self, program, profile):
        binary = program.binary
        for name in binary.proc_order():
            proc = binary.proc(name)
            graph = flow_graph_from_block_counts(proc, profile.block_counts)
            assert check_flow_graph(graph, profile.block_counts) == [], name
