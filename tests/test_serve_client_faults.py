"""Fault injection against the layout client (ISSUE satellite).

Every scenario drives a real :class:`LayoutClient` into a misbehaving
peer — dropped connections, a server that never answers (timeout), a
server that answers garbage (malformed frames) — and asserts the
resilience policy: retries happen (``serve.retries`` moves), the
last-known-good fallback is served, and the circuit breaker walks
open -> half-open -> closed (``serve.breaker_state`` moves).
"""

import socket
import threading
import time

import pytest

from repro import obs
from repro.errors import ServeError
from repro.serve.client import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    SOURCE_FALLBACK,
    ClientConfig,
    LayoutClient,
)
from repro.serve.protocol import LayoutRequest
from repro.serve.server import ServerConfig, ServerThread


def counter_value(name):
    payload = obs.registry().snapshot().get(name)
    return payload["value"] if payload else 0


def series_points(name):
    payload = obs.registry().snapshot().get(name)
    return len(payload.get("points", [])) if payload else 0


class FaultyServer:
    """A TCP listener with a pluggable per-connection fault."""

    def __init__(self, handler):
        self.handler = handler
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(16)
        self.address = self.listener.getsockname()
        self.connections = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                self.handler(conn)
            except Exception:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self.listener.close()
        self._thread.join(timeout=5)


@pytest.fixture()
def warm_client(serve_env, tmp_path):
    """A client that already served one layout from a live server.

    Yields ``(client, profile, expected_document)``; the server is shut
    down before the test body runs, so the client holds a last-known-
    good layout and nothing else.
    """
    binary, (profile, _) = serve_env
    handle = ServerThread.start(
        binary, store=None, config=ServerConfig(workers=0)
    )
    client = LayoutClient(
        handle.address,
        ClientConfig(
            timeout_s=0.5,
            max_attempts=2,
            backoff_s=0.01,
            backoff_max_s=0.05,
            breaker_threshold=3,
            breaker_cooldown_s=0.2,
        ),
        name="fault-client",
    )
    response = client.fetch_layout(profile, "all")
    assert response.ok and response.source != SOURCE_FALLBACK
    handle.stop()
    yield client, profile, response.layout


class TestDroppedConnections:
    def test_fallback_after_connection_drops(self, warm_client):
        client, profile, expected = warm_client
        dropper = FaultyServer(lambda conn: conn.close())
        client.address = dropper.address
        retries_before = counter_value("serve.retries")
        fallbacks_before = counter_value("serve.fallbacks")
        try:
            response = client.fetch_layout(profile, "all")
        finally:
            dropper.close()
        assert response.ok
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected
        assert dropper.connections >= 2  # both attempts hit the wire
        assert counter_value("serve.retries") > retries_before
        assert counter_value("serve.fallbacks") == fallbacks_before + 1
        assert client.stats.fallbacks == 1

    def test_refused_connection_falls_back(self, warm_client):
        client, profile, expected = warm_client
        # The warm server is stopped; its port now refuses connections.
        response = client.fetch_layout(profile, "all")
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected

    def test_cold_client_surfaces_serve_error(self, serve_env):
        _, (profile, _) = serve_env
        errors_before = counter_value("serve.client_errors")
        client = LayoutClient(
            ("127.0.0.1", 1),  # nothing listens here
            ClientConfig(timeout_s=0.2, max_attempts=1),
        )
        with pytest.raises(ServeError, match="no last-known-good"):
            client.fetch_layout(profile, "all")
        assert counter_value("serve.client_errors") > errors_before


class TestSlowServer:
    def test_timeout_retries_then_falls_back(self, warm_client):
        client, profile, expected = warm_client

        def sleepy(conn):
            # Accept, read the request, never answer.
            time.sleep(1.2)

        slow = FaultyServer(sleepy)
        client.address = slow.address
        retries_before = counter_value("serve.retries")
        started = time.monotonic()
        try:
            response = client.fetch_layout(profile, "all")
        finally:
            slow.close()
        elapsed = time.monotonic() - started
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected
        # Two attempts, each bounded by the 0.5 s socket deadline.
        assert elapsed < 5.0
        assert counter_value("serve.retries") > retries_before
        assert client.stats.retries >= 1


class TestMalformedResponses:
    def test_garbage_reply_falls_back(self, warm_client):
        client, profile, expected = warm_client

        def garbage(conn):
            conn.makefile("rb").read(4)  # let the request start
            conn.sendall(b"\xde\xad\xbe\xef not a frame at all")

        faulty = FaultyServer(garbage)
        client.address = faulty.address
        try:
            response = client.fetch_layout(profile, "all")
        finally:
            faulty.close()
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected

    def test_truncated_reply_falls_back(self, warm_client):
        client, profile, expected = warm_client

        def truncating(conn):
            # A plausible frame header, then the connection dies.
            conn.sendall(b"\x00\x00\x01\x00{\"v\":1")

        faulty = FaultyServer(truncating)
        client.address = faulty.address
        try:
            response = client.fetch_layout(profile, "all")
        finally:
            faulty.close()
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected


class TestCircuitBreaker:
    def test_open_half_open_closed_cycle(self, serve_env, warm_client):
        client, profile, expected = warm_client
        binary, _ = serve_env
        trips_before = counter_value("serve.breaker_trips")
        points_before = series_points("serve.breaker_state")

        # breaker_threshold=3, max_attempts=2: the first fetch records
        # two consecutive failures, the second fetch's first failure
        # opens the breaker mid-call.
        assert client.fetch_layout(profile, "all").source == SOURCE_FALLBACK
        assert client.breaker.state == BREAKER_CLOSED
        assert client.fetch_layout(profile, "all").source == SOURCE_FALLBACK
        assert client.breaker.state == BREAKER_OPEN
        assert client.breaker.trips == 1
        assert counter_value("serve.breaker_trips") == trips_before + 1
        assert series_points("serve.breaker_state") > points_before

        # While open: fail fast (no socket work) but still degrade to
        # the fallback layout.
        response = client.fetch_layout(profile, "all")
        assert response.source == SOURCE_FALLBACK
        assert client.breaker.state == BREAKER_OPEN

        # A failed half-open probe reopens immediately (one strike).
        time.sleep(client.config.breaker_cooldown_s + 0.05)
        assert client.fetch_layout(profile, "all").source == SOURCE_FALLBACK
        assert client.breaker.state == BREAKER_OPEN
        assert client.breaker.trips == 2

        # After the cooldown a healthy server closes it via the
        # half-open probe.
        handle = ServerThread.start(
            binary, store=None, config=ServerConfig(workers=0)
        )
        try:
            client.address = handle.address
            client._submitted.clear()  # re-submit to the fresh server
            time.sleep(client.config.breaker_cooldown_s + 0.05)
            response = client.fetch_layout(profile, "all")
            assert response.ok and response.source != SOURCE_FALLBACK
            assert client.breaker.state == BREAKER_CLOSED
            assert client.breaker.failures == 0
        finally:
            handle.stop()

    def test_open_breaker_raises_for_cold_requests(self, warm_client):
        client, profile, _ = warm_client
        client.breaker.record_failure()
        client.breaker.record_failure()
        client.breaker.record_failure()
        assert client.breaker.state == BREAKER_OPEN
        with pytest.raises(ServeError, match="circuit breaker open"):
            client._call(LayoutRequest("unseen-fingerprint", "all"))


class TestFallbackForDriftedProfiles:
    def test_latest_good_serves_unseen_fingerprint(self, serve_env, warm_client):
        client, profile, expected = warm_client
        binary, (_, other_profile) = serve_env
        assert other_profile.fingerprint() != profile.fingerprint()
        # The service is down and this exact profile was never served,
        # but the client still runs on the freshest layout it has.
        response = client.fetch_layout(other_profile, "all")
        assert response.source == SOURCE_FALLBACK
        assert response.layout == expected
