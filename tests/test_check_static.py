"""The STA static-vs-measured differential lint family.

Two properties are pinned: a *self-diff* (any profile against itself)
yields exactly zero findings, and each STA code fires on a crafted
divergence.  All STA findings are advisories -- the report stays
``ok`` even when every pass fires.
"""

from repro.check import check_static_diff
from repro.ir import Binary, Procedure, Terminator
from repro.profiles import Profile
from repro.staticpred import synthesize_profile

from tests.test_staticpred import make_call_binary


def make_two_loop_binary():
    """One procedure with two sequential natural loops (h1, h2)."""
    binary = Binary()
    proc = Procedure("p")
    proc.add_block("e", 2, Terminator.FALLTHROUGH, succs=("h1",))
    proc.add_block("h1", 2, Terminator.COND_BRANCH, succs=("b1", "h2"))
    proc.add_block("b1", 2, Terminator.UNCOND_BRANCH, succs=("h1",))
    proc.add_block("h2", 2, Terminator.COND_BRANCH, succs=("b2", "out"))
    proc.add_block("b2", 2, Terminator.UNCOND_BRANCH, succs=("h2",))
    proc.add_block("out", 2, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


def make_two_proc_binary():
    """Two straight-line six-block procedures (disjoint hot sets)."""
    binary = Binary()
    for name in ("alpha", "beta"):
        proc = Procedure(name)
        for i in range(5):
            proc.add_block(f"s{i}", 2, Terminator.FALLTHROUGH,
                           succs=(f"s{i + 1}",))
        proc.add_block("s5", 2, Terminator.RETURN)
        binary.add_procedure(proc)
    binary.seal()
    return binary


def codes(report):
    return [d.code for d in report.diagnostics]


class TestSelfDiffIsClean:
    def test_synthesized_self_diff_has_zero_findings(self):
        binary = make_call_binary()
        profile = synthesize_profile(binary)
        report = check_static_diff(binary, profile, profile)
        assert not report.diagnostics, report.render()
        assert report.ok

    def test_handmade_self_diff_has_zero_findings(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        profile = Profile(binary)
        profile.block_counts[proc.block("h1").bid] = 1000
        profile.block_counts[proc.block("b1").bid] = 990
        profile.block_counts[proc.block("h2").bid] = 10
        profile.edge_counts[(proc.block("h1").bid,
                             proc.block("b1").bid)] = 990
        report = check_static_diff(binary, profile, profile)
        assert not report.diagnostics, report.render()


class TestEachCodeFires:
    def test_sta001_hot_set_divergence(self):
        binary = make_two_proc_binary()
        measured, static = Profile(binary), Profile(binary)
        for block in binary.proc("alpha").blocks:
            measured.block_counts[block.bid] = 100
        for block in binary.proc("beta").blocks:
            static.block_counts[block.bid] = 100
            measured.block_counts[block.bid] = 1  # sampled, so not STA004
        for block in binary.proc("alpha").blocks:
            static.block_counts[block.bid] = 1
        report = check_static_diff(binary, measured, static)
        assert "STA001" in codes(report)
        assert report.ok  # advisories only

    def test_sta002_branch_direction_misprediction(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        h1 = proc.block("h1").bid
        b1, h2 = proc.block("b1").bid, proc.block("h2").bid
        measured, static = Profile(binary), Profile(binary)
        measured.block_counts[h1] = 1000
        measured.edge_counts[(h1, b1)] = 900
        measured.edge_counts[(h1, h2)] = 100
        static.block_counts[h1] = 60
        static.edge_counts[(h1, b1)] = 10
        static.edge_counts[(h1, h2)] = 50
        findings = [d for d in check_static_diff(
            binary, measured, static).diagnostics if d.code == "STA002"]
        assert len(findings) == 1
        assert findings[0].severity.value == "warn"
        assert "p.h1" in findings[0].message

    def test_sta002_respects_the_decisive_margin(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        h1 = proc.block("h1").bid
        b1, h2 = proc.block("b1").bid, proc.block("h2").bid
        measured, static = Profile(binary), Profile(binary)
        measured.block_counts[h1] = 1000
        measured.edge_counts[(h1, b1)] = 55   # 55:45 -- too close to call
        measured.edge_counts[(h1, h2)] = 45
        static.edge_counts[(h1, b1)] = 1
        static.edge_counts[(h1, h2)] = 99
        report = check_static_diff(binary, measured, static)
        assert "STA002" not in codes(report)

    def test_sta003_loop_rank_inversion(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        h1, h2 = proc.block("h1").bid, proc.block("h2").bid
        measured, static = Profile(binary), Profile(binary)
        measured.block_counts[h1] = 1000
        measured.block_counts[h2] = 100
        static.block_counts[h1] = 10
        static.block_counts[h2] = 500
        findings = [d for d in check_static_diff(
            binary, measured, static).diagnostics if d.code == "STA003"]
        assert len(findings) == 1
        assert "inverted" in findings[0].message

    def test_sta004_statically_cold_measured_hot(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        h1, b1 = proc.block("h1").bid, proc.block("b1").bid
        measured, static = Profile(binary), Profile(binary)
        measured.block_counts[h1] = 1000
        measured.block_counts[b1] = 990
        static.block_counts[h1] = 500  # b1 carries zero static flow
        findings = [d for d in check_static_diff(
            binary, measured, static).diagnostics if d.code == "STA004"]
        assert len(findings) == 1
        assert "'p'" in findings[0].message

    def test_sta005_unreached_but_sampled(self):
        binary = make_two_loop_binary()
        proc = binary.proc("p")
        h1, out = proc.block("h1").bid, proc.block("out").bid
        measured, static = Profile(binary), Profile(binary)
        measured.block_counts[h1] = 1000  # hot set is {h1} alone
        measured.block_counts[out] = 5    # sampled, not hot
        static.block_counts[h1] = 1000
        report = check_static_diff(binary, measured, static)
        findings = [d for d in report.diagnostics if d.code == "STA005"]
        assert len(findings) == 1
        assert findings[0].severity.value == "info"
        assert report.ok
