"""Tests for fine-grain splitting, hot/cold splitting, and CFA layout."""

import numpy as np
import pytest

from repro.ir import Binary, Procedure, Terminator, assign_addresses, Layout
from repro.layout import (
    cfa_layout,
    chain_blocks,
    split_chains,
    split_hot_cold,
    split_procedure_source_order,
)
from repro.ir import flow_graph_from_edge_counts


def segmented_binary():
    """Procedure with an obvious segment structure:

        a(3) cond -> (c | b); b(4) uncond -> d; c(2) return; d(5) return
    """
    binary = Binary()
    proc = Procedure("p")
    proc.add_block("a", 3, Terminator.COND_BRANCH, succs=("c", "b"))
    proc.add_block("b", 4, Terminator.UNCOND_BRANCH, succs=("d",))
    proc.add_block("c", 2, Terminator.RETURN)
    proc.add_block("d", 5, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


class TestSourceOrderSplitting:
    def test_segments_end_at_uncond_and_return(self):
        binary = segmented_binary()
        units = split_procedure_source_order(binary, "p")
        labels = [
            [binary.block(b).label for b in u.block_ids] for u in units
        ]
        assert labels == [["a", "b"], ["c"], ["d"]]

    def test_exactly_one_entry_unit(self):
        binary = segmented_binary()
        units = split_procedure_source_order(binary, "p")
        assert [u.is_entry for u in units] == [True, False, False]

    def test_trailing_open_segment_is_flushed(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("a", 1, Terminator.RETURN)
        proc.add_block("b", 2, Terminator.FALLTHROUGH, succs=("c",))
        proc.add_block("c", 2, Terminator.COND_BRANCH, succs=("b", "c"))
        binary.add_procedure(proc)
        binary.seal()
        units = split_procedure_source_order(binary, "p")
        assert len(units) == 2
        assert len(units[1].block_ids) == 2


class TestChainedSplitting:
    def test_segments_respect_chain_boundaries(self):
        binary = segmented_binary()
        proc = binary.proc("p")
        counts = np.array([100, 90, 10, 90], dtype=np.int64)
        edges = {
            (proc.block("a").bid, proc.block("b").bid): 90,
            (proc.block("a").bid, proc.block("c").bid): 10,
            (proc.block("b").bid, proc.block("d").bid): 90,
        }
        chaining = chain_blocks(proc, flow_graph_from_edge_counts(proc, edges), counts)
        units = split_chains(binary, chaining)
        labels = [
            [binary.block(b).label for b in u.block_ids] for u in units
        ]
        # Hot chain a-b-d: segment breaks after b? No: b's uncond target
        # d is chained right after it, so the chain is a,b,d; b ends a
        # segment (uncond terminator) -> segments [a,b], [d], [c].
        assert labels == [["a", "b"], ["d"], ["c"]]

    def test_all_blocks_covered_once(self):
        binary = segmented_binary()
        proc = binary.proc("p")
        counts = np.ones(4, dtype=np.int64)
        chaining = chain_blocks(
            proc, flow_graph_from_edge_counts(proc, {}), counts
        )
        units = split_chains(binary, chaining)
        covered = [b for u in units for b in u.block_ids]
        assert sorted(covered) == sorted(proc.block_ids())


class TestHotColdSplitting:
    def test_unexecuted_blocks_go_cold(self):
        binary = segmented_binary()
        counts = np.array([100, 0, 100, 0], dtype=np.int64)
        units = split_hot_cold(binary, "p", counts)
        by_name = {u.name: u for u in units}
        hot_labels = {binary.block(b).label for b in by_name["p.hot"].block_ids}
        cold_labels = {binary.block(b).label for b in by_name["p.cold"].block_ids}
        assert hot_labels == {"a", "c"}
        assert cold_labels == {"b", "d"}

    def test_entry_forced_hot(self):
        binary = segmented_binary()
        counts = np.zeros(4, dtype=np.int64)
        units = split_hot_cold(binary, "p", counts)
        entry = binary.proc("p").entry.bid
        assert entry in units[0].block_ids
        assert units[0].is_entry

    def test_fully_hot_proc_has_no_cold_unit(self):
        binary = segmented_binary()
        counts = np.array([10, 10, 10, 10], dtype=np.int64)
        units = split_hot_cold(binary, "p", counts)
        assert [u.name for u in units] == ["p.hot"]


class TestCfaLayout:
    def make_units(self, binary):
        return split_procedure_source_order(binary, "p")

    def test_hot_units_fill_reserved_area_first(self):
        binary = segmented_binary()
        counts = np.array([100, 100, 0, 100], dtype=np.int64)
        units = self.make_units(binary)
        layout, report = cfa_layout(
            binary, units, counts, cache_bytes=256, reserved_fraction=0.5
        )
        assert report.reserved_bytes == 128
        assert report.hot_units >= 1
        amap = assign_addresses(binary, layout)
        # The hottest unit starts at address 0.
        first = layout.units[0]
        assert amap.unit_starts[first.name] == 0

    def test_cold_code_avoids_reserved_sets(self):
        binary = segmented_binary()
        counts = np.array([100, 100, 0, 100], dtype=np.int64)
        units = self.make_units(binary)
        cache = 256
        layout, report = cfa_layout(
            binary, units, counts, cache_bytes=cache, reserved_fraction=0.5,
            alignment=8,
        )
        amap = assign_addresses(binary, layout)
        hot_names = {u.name for u in layout.units[: report.hot_units]}
        for unit in layout.units:
            if unit.name in hot_names:
                continue
            start = amap.unit_starts[unit.name]
            assert start % cache >= report.reserved_bytes

    def test_overflow_reported_when_hot_code_too_big(self):
        binary = segmented_binary()
        counts = np.array([100, 100, 100, 100], dtype=np.int64)
        units = self.make_units(binary)
        # Reserve only 4 bytes: nothing fits, everything overflows.
        layout, report = cfa_layout(
            binary, units, counts, cache_bytes=64, reserved_fraction=0.0625
        )
        assert report.hot_units == 0
        assert report.hot_overflow_bytes == sum(
            binary.block(b).size for u in units for b in u.block_ids
        ) * 4

    def test_bad_fraction_rejected(self):
        from repro.errors import LayoutError

        binary = segmented_binary()
        with pytest.raises(LayoutError):
            cfa_layout(binary, self.make_units(binary), np.zeros(4), 256, 1.5)
