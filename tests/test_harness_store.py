"""Tests for trace/profile serialization."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.execution.trace import CpuTrace, SystemTrace
from repro.harness.store import load_profile, load_trace, save_profile, save_trace
from repro.ir import Binary, Procedure, Terminator
from repro.profiles import PixieProfiler


def make_trace():
    return SystemTrace(
        cpus=[
            CpuTrace(
                blocks=np.array([0, 3, 1], dtype=np.int64),
                pids=np.array([0, 0, 1], dtype=np.int16),
            ),
            CpuTrace(
                blocks=np.array([2], dtype=np.int64),
                pids=np.array([2], dtype=np.int16),
            ),
        ],
        data_addresses=[np.array([64, 128], dtype=np.int64),
                        np.zeros(0, dtype=np.int64)],
        data_positions=[np.array([0, 2], dtype=np.int64),
                        np.zeros(0, dtype=np.int64)],
        kernel_offset=3,
        transactions=7,
    )


def make_binary():
    binary = Binary()
    proc = Procedure("p")
    proc.add_block("a", 4, Terminator.COND_BRANCH, succs=("a", "b"))
    proc.add_block("b", 2, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


class TestTraceRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.kernel_offset == 3
        assert loaded.transactions == 7
        assert len(loaded.cpus) == 2
        for original, restored in zip(trace.cpus, loaded.cpus):
            assert np.array_equal(original.blocks, restored.blocks)
            assert np.array_equal(original.pids, restored.pids)
        assert np.array_equal(trace.data_addresses[0], loaded.data_addresses[0])

    def test_loaded_trace_usable(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.app_block_stream(0).tolist() == [0, 1]

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(str(path), something=np.arange(3))
        with pytest.raises(SimulationError):
            load_trace(path)


class TestProfileRoundtrip:
    def test_roundtrip(self, tmp_path):
        binary = make_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 0, 1])
        profile = profiler.profile()
        path = tmp_path / "profile.npz"
        save_profile(profile, path)
        loaded = load_profile(binary, path)
        assert np.array_equal(loaded.block_counts, profile.block_counts)
        assert loaded.edge_counts == dict(profile.edge_counts)

    def test_stale_binary_rejected(self, tmp_path):
        binary = make_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 1])
        path = tmp_path / "profile.npz"
        save_profile(profiler.profile(), path)
        other = Binary()
        proc = Procedure("q")
        proc.add_block("only", 1, Terminator.RETURN)
        other.add_procedure(proc)
        other.seal()
        with pytest.raises(SimulationError):
            load_profile(other, path)

    def test_empty_profile_roundtrip(self, tmp_path):
        binary = make_binary()
        from repro.profiles import Profile

        path = tmp_path / "empty.npz"
        save_profile(Profile(binary), path)
        loaded = load_profile(binary, path)
        assert loaded.total_blocks_executed == 0
        assert loaded.edge_counts == {}
