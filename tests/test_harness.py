"""End-to-end tests of the experiment harness (quick configuration)."""

import pytest

from repro.cache import CacheGeometry
from repro.harness import figures, quick_experiment
from repro.sim import classic


@pytest.fixture(scope="module")
def exp():
    experiment = quick_experiment()
    _ = experiment.profile
    _ = experiment.trace
    return experiment


class TestPipelineProducts:
    def test_profile_covers_hot_routines(self, exp):
        counts = exp.profile.proc_counts()
        # TPC-B exercises updates and history inserts...
        assert counts["sql_update@account"] > 0
        assert counts["sql_insert@history"] > 0
        assert counts["buffer_get"] > 0
        # ...but never point selects.
        assert counts["sql_select@account"] == 0

    def test_kernel_profile_nonzero(self, exp):
        assert exp.kernel_profile.total_blocks_executed > 0

    def test_profile_and_measurement_runs_differ(self, exp):
        # Different request streams: traces differ in length.
        measure_blocks = sum(c.num_blocks for c in exp.trace.cpus)
        assert measure_blocks > 0
        assert exp.profile.total_blocks_executed != measure_blocks

    def test_layouts_cached(self, exp):
        assert exp.layout("all") is exp.layout("all")

    def test_address_maps_cached(self, exp):
        assert exp.address_map("base") is exp.address_map("base")

    def test_app_streams_shapes(self, exp):
        streams = exp.streams("base", scope="app")
        assert len(streams) == exp.config.system.cpus
        for starts, counts in streams:
            assert len(starts) == len(counts)

    def test_optimization_reduces_misses(self, exp):
        geometry = CacheGeometry(32 * 1024, 128, 1)
        base = sum(
            classic.direct_mapped_misses(s, c, geometry)
            for s, c in exp.streams("base", scope="app")
        )
        optimized = sum(
            classic.direct_mapped_misses(s, c, geometry)
            for s, c in exp.streams("all", scope="app")
        )
        assert optimized < 0.7 * base

    def test_kernel_layout_optimization_available(self, exp):
        amap = exp.address_map("all", "all")
        assert amap is exp.address_map("all", "all")


class TestStreamsApi:
    def test_streamset_provenance(self, exp):
        streams = exp.streams("base", scope="app")
        assert (streams.scope, streams.combo, streams.kernel_combo) == \
            ("app", "base", "base")
        assert len(streams) == exp.config.system.cpus
        assert streams.instructions > 0

    def test_removed_wrappers_are_fully_deleted(self, exp):
        # The *_streams shims went warning -> RemovedAPIError -> gone;
        # the attribute itself no longer exists.
        for legacy in (
            "app_streams", "kernel_streams",
            "combined_streams", "per_process_streams",
        ):
            assert not hasattr(exp, legacy)

    def test_combined_scope_includes_kernel(self, exp):
        from repro.osmodel import KERNEL_BASE

        for starts, _counts in exp.streams("base", scope="combined"):
            assert (starts >= KERNEL_BASE).any()

    def test_kernel_scope_all_kernel(self, exp):
        from repro.osmodel import KERNEL_BASE

        for starts, _counts in exp.streams(scope="kernel"):
            assert (starts >= KERNEL_BASE).all()

    def test_per_process_scope_one_stream_per_process(self, exp):
        streams = exp.streams("base", scope="per-process")
        assert len(streams) == len(exp.trace.per_process_app_streams())

    def test_unknown_scope_rejected(self, exp):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="per-process"):
            exp.streams("base", scope="bogus")

    def test_unknown_combo_lists_valid_names(self, exp):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError, match="chain\\+split"):
            exp.streams("bogus", scope="app")
        with pytest.raises(LayoutError, match="valid combos"):
            exp.layout("nope")

    def test_combo_enum_accepted(self, exp):
        from repro.layout import Combo

        assert exp.layout(Combo.ALL) is exp.layout("all")


class TestFigureAssembly:
    def test_fig03(self, exp):
        table = figures.fig03_execution_profile(exp)
        assert table.rows
        captured = [row[1] for row in table.rows]
        assert captured == sorted(captured)

    def test_fig06(self, exp):
        table = figures.fig06_associativity(exp)
        assert len(table.rows) == len(figures.SWEEP_SIZES)

    def test_fig08(self, exp):
        summary, histogram = figures.fig08_sequences(exp)
        values = {row[0]: row[1] for row in summary.rows}
        assert values["optimized"] > values["base"]
        assert len(histogram.rows) == 33

    def test_fig12(self, exp):
        table = figures.fig12_combined(exp, "base")
        for _size, combined, app, kernel in table.rows:
            assert combined >= app
            assert combined >= kernel

    def test_fig13(self, exp):
        table = figures.fig13_interference(exp, "base")
        rows = {r[0]: (r[1], r[2]) for r in table.rows}
        assert rows["both"][0] == rows["kernel"][0] + rows["application"][0]

    def test_fig15(self, exp):
        table = figures.fig15_exec_time(exp, combos=("base", "all"))
        rows = {r[0]: r[1:] for r in table.rows}
        assert rows["base"] == [100.0, 100.0]
        assert all(v < 100.0 for v in rows["all"])

    def test_table_renders(self, exp):
        text = figures.fig03_execution_profile(exp).render()
        assert "Figure 3" in text
        assert "note:" in text
