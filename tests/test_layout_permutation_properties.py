"""Property tests: ANY permutation layout is a valid address space.

The optimizer only ever permutes code units; these properties pin the
guarantee that the address machinery (fixups included) preserves the
program under arbitrary permutations -- which is what makes the
trace-replay methodology sound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    Binary,
    CodeUnit,
    INSTRUCTION_BYTES,
    Layout,
    Procedure,
    Terminator,
    assign_addresses,
)
from repro.progen import AppCodeConfig, build_app_program
from repro.layout.splitting import split_procedure_source_order


@pytest.fixture(scope="module")
def program():
    return build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=6, filler_instructions=1_500)
    )


def permuted_layout(binary, rng, split=False, alignment=4):
    units = []
    for name in binary.proc_order():
        if split:
            units.extend(split_procedure_source_order(binary, name))
        else:
            units.append(CodeUnit(
                name=name, proc_name=name,
                block_ids=tuple(binary.proc(name).block_ids()),
            ))
    rng.shuffle(units)
    return Layout(units=units, alignment=alignment, name="perm")


class TestPermutationProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           split=st.booleans(),
           alignment=st.sampled_from([4, 8, 16, 32]))
    def test_blocks_never_overlap(self, program, seed, split, alignment):
        rng = np.random.default_rng(seed)
        layout = permuted_layout(program.binary, rng, split, alignment)
        amap = assign_addresses(program.binary, layout)
        spans = sorted(
            (int(amap.addr[b.bid]),
             int(amap.addr[b.bid]) + int(amap.n_fetch[b.bid]) * INSTRUCTION_BYTES)
            for b in program.binary.blocks()
            if amap.n_fetch[b.bid] > 0
        )
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_unit_alignment_respected(self, program, seed):
        rng = np.random.default_rng(seed)
        layout = permuted_layout(program.binary, rng, alignment=32)
        amap = assign_addresses(program.binary, layout)
        for start in amap.unit_starts.values():
            assert start % 32 == 0

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fixups_conserve_non_branch_instructions(self, program, seed):
        """Fixups only add/remove branch instructions: every block's
        placed size differs from its source size by at most 1."""
        rng = np.random.default_rng(seed)
        layout = permuted_layout(program.binary, rng, split=True)
        amap = assign_addresses(program.binary, layout)
        for block in program.binary.blocks():
            delta = int(amap.n_fetch[block.bid]) - block.size
            assert delta in (-1, 0, 1)
            if delta == -1:
                assert block.terminator is Terminator.UNCOND_BRANCH

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_total_bytes_bounded(self, program, seed):
        """A permuted layout can shrink (deleted branches) or grow
        (appended branches + padding), but stays within one extra
        instruction + alignment pad per block/unit."""
        rng = np.random.default_rng(seed)
        layout = permuted_layout(program.binary, rng, split=False, alignment=16)
        amap = assign_addresses(program.binary, layout)
        static = program.binary.static_size * INSTRUCTION_BYTES
        slack = (program.binary.num_blocks + len(layout.units) * 4) * \
            INSTRUCTION_BYTES
        assert static - slack <= amap.total_bytes <= static + slack

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_replay_equivalence_on_random_walk(self, program, seed):
        """A random executable block walk replays under any permutation
        with consistent per-transition fetch counts."""
        rng = np.random.default_rng(seed)
        binary = program.binary
        # Build a short legal walk: follow successors where possible.
        walk = []
        block = binary.proc(binary.proc_order()[0]).entry
        for _ in range(200):
            walk.append(block.bid)
            if block.succs:
                block = binary.block(int(rng.choice(block.succs)))
            else:
                proc = binary.proc(
                    binary.proc_order()[int(rng.integers(binary.num_procedures))]
                )
                block = proc.entry
        blocks = np.asarray(walk, dtype=np.int64)
        layout = permuted_layout(binary, rng)
        amap = assign_addresses(binary, layout)
        counts = amap.n_fetch[blocks]
        taken = amap.taken_succ[blocks[:-1]] == blocks[1:]
        adjusted = counts.copy()
        adjusted[:-1][taken] = amap.n_fetch_taken[blocks[:-1]][taken]
        # Fetch counts are within 1 of source sizes along the walk.
        sizes = np.array([binary.block(int(b)).size for b in blocks])
        assert (np.abs(adjusted - sizes) <= 1).all()
