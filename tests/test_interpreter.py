"""Tests for the CFG interpreter (execution.interpreter)."""

import numpy as np
import pytest

from repro.db.instrument import CallEvent
from repro.errors import SimulationError
from repro.execution import CfgWalker
from repro.progen import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
    build_binary,
)


def make_programs(app_specs, kernel_specs=None):
    app = build_binary(app_specs, "app")
    kernel_specs = kernel_specs or [RoutineSpec("k.read", body=[Straight(3)])]
    kernel = build_binary(kernel_specs, "kern")
    return CfgWalker(app, kernel)


def event(name, children=(), **bindings):
    ev = CallEvent(name, dict(bindings))
    ev.bindings.setdefault("salt", 1)
    ev.children = list(children)
    return ev


class TestBasicWalking:
    def test_straight_routine(self):
        s = Straight(5)
        walker = make_programs([RoutineSpec("r", body=[s])])
        out = walker.expand([event("r")])
        spec = walker.app.spec("r")
        assert out.tolist() == [spec.prologue_bid, s.bid, spec.epilogue_bid]

    def test_if_takes_bound_side(self):
        then_node = Straight(1)
        else_node = Straight(2)
        cond = If("hit", then=[then_node], orelse=[else_node])
        walker = make_programs([RoutineSpec("r", body=[cond])])
        hit = walker.expand([event("r", hit=True)]).tolist()
        miss = walker.expand([event("r", hit=False)]).tolist()
        assert then_node.bid in hit and else_node.bid not in hit
        assert cond.then_exit_bid in hit  # jump over the else-arm
        assert else_node.bid in miss and then_node.bid not in miss

    def test_loop_runs_bound_count(self):
        body = Straight(2)
        loop = Loop("n", body=[body])
        walker = make_programs([RoutineSpec("r", body=[loop])])
        out = walker.expand([event("r", n=3)]).tolist()
        assert out.count(body.bid) == 3
        assert out.count(loop.bid) == 4  # header tested n+1 times
        assert out.count(loop.latch_bid) == 3

    def test_loop_zero_iterations(self):
        body = Straight(2)
        loop = Loop("n", body=[body])
        walker = make_programs([RoutineSpec("r", body=[loop])])
        out = walker.expand([event("r", n=0)]).tolist()
        assert body.bid not in out
        assert out.count(loop.bid) == 1

    def test_coldpath_emits_guard_only(self):
        cold = ColdPath(20, blocks=3)
        walker = make_programs([RoutineSpec("r", body=[cold])])
        out = walker.expand([event("r")]).tolist()
        assert out.count(cold.bid) == 1
        assert len(out) == 3  # prologue, guard, epilogue


class TestCallsAndChildren:
    def test_call_consumes_child(self):
        callee_body = Straight(4)
        callee = RoutineSpec("callee", body=[callee_body])
        call = Call("callee")
        walker = make_programs([RoutineSpec("r", body=[call]), callee])
        out = walker.expand([event("r", children=[event("callee")])]).tolist()
        assert call.bid in out
        assert callee_body.bid in out
        # Callee blocks nest between call block and caller epilogue.
        assert out.index(callee_body.bid) > out.index(call.bid)

    def test_missing_child_raises(self):
        callee = RoutineSpec("callee", body=[Straight(1)])
        walker = make_programs(
            [RoutineSpec("r", body=[Call("callee")]), callee]
        )
        with pytest.raises(SimulationError):
            walker.expand([event("r")])

    def test_wrong_child_name_raises(self):
        callee = RoutineSpec("callee", body=[Straight(1)])
        other = RoutineSpec("other", body=[Straight(1)])
        walker = make_programs(
            [RoutineSpec("r", body=[Call("callee")]), callee, other]
        )
        with pytest.raises(SimulationError):
            walker.expand([event("r", children=[event("other")])])

    def test_unconsumed_children_raise(self):
        walker = make_programs([RoutineSpec("r", body=[Straight(1)]),
                                RoutineSpec("x", body=[Straight(1)])])
        with pytest.raises(SimulationError):
            walker.expand([event("r", children=[event("x")])])

    def test_table_specialization_resolution(self):
        shared = RoutineSpec("fetch", body=[Straight(1)])
        special_body = Straight(9)
        special = RoutineSpec("fetch@acct", body=[special_body], suffix="acct")
        walker = make_programs([shared, special])
        out = walker.expand([event("fetch", table="acct")]).tolist()
        assert special_body.bid in out

    def test_subcall_inherits_bindings(self):
        helper_then = Straight(3)
        helper = RoutineSpec("helper", body=[If("flag", then=[helper_then])])
        walker = make_programs(
            [RoutineSpec("r", body=[SubCall("helper")]), helper]
        )
        with_flag = walker.expand([event("r", flag=True)]).tolist()
        without = walker.expand([event("r", flag=False)]).tolist()
        assert helper_then.bid in with_flag
        assert helper_then.bid not in without

    def test_callseq_consumes_matching_run(self):
        a_body = Straight(1)
        b_body = Straight(2)
        a = RoutineSpec("a", body=[a_body])
        b = RoutineSpec("b", body=[b_body])
        seq = CallSeq(("a", "b"))
        tail = RoutineSpec("tail", body=[Straight(1)])
        walker = make_programs(
            [RoutineSpec("r", body=[seq, Call("tail")]), a, b, tail]
        )
        children = [event("a"), event("b"), event("a"), event("tail")]
        out = walker.expand([event("r", children=children)]).tolist()
        assert out.count(a_body.bid) == 2
        assert out.count(b_body.bid) == 1
        assert out.count(seq.bid) == 4  # 3 iterations + exit test
        assert out.count(seq.latch_bid) == 3


class TestKernelDispatch:
    def test_syscall_walks_kernel_with_offset(self):
        kread_body = Straight(7)
        kernel = [RoutineSpec("k.read", body=[kread_body])]
        sys_node = Syscall("k.read")
        walker = make_programs(
            [RoutineSpec("r", body=[sys_node])], kernel
        )
        out = walker.expand(
            [event("r", children=[event("k.read")])]
        )
        kernel_bids = out[out >= walker.kernel_offset]
        assert len(kernel_bids) == 3  # prologue, body, epilogue
        assert (kread_body.bid + walker.kernel_offset) in out.tolist()

    def test_syscall_rejects_app_event(self):
        other = RoutineSpec("other", body=[Straight(1)])
        walker = make_programs(
            [RoutineSpec("r", body=[Syscall("k.read")]), other]
        )
        # Build a child that matches the name check but is not kernel.
        with pytest.raises(SimulationError):
            walker.expand([event("r", children=[event("other")])])

    def test_top_level_kernel_event(self):
        kread_body = Straight(7)
        walker = make_programs(
            [RoutineSpec("r", body=[Straight(1)])],
            [RoutineSpec("k.read", body=[kread_body])],
        )
        out = walker.expand([event("k.read")])
        assert (out >= walker.kernel_offset).all()

    def test_is_kernel_bid(self):
        walker = make_programs([RoutineSpec("r", body=[Straight(1)])])
        assert not walker.is_kernel_bid(0)
        assert walker.is_kernel_bid(walker.kernel_offset)
