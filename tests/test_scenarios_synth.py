"""Tests for the seeded synthetic Markov workload generator."""

import pytest

from repro.db import Engine
from repro.errors import WorkloadError
from repro.scenarios.synth import (
    MIX_PRESETS,
    OP_KINDS,
    SynthOp,
    SynthPhase,
    SyntheticClient,
    SyntheticConfig,
    SyntheticWorkload,
    _renormalized,
)
from repro.workloads.tpcb import TpcbConfig


def small_config(**kwargs):
    kwargs.setdefault("tpcb", TpcbConfig(branches=3, accounts_per_branch=80))
    return SyntheticConfig(**kwargs)


def loaded_engine(config):
    engine = Engine(pool_capacity=2048, btree_order=32)
    SyntheticWorkload(config).load(engine)
    return engine


def run_to_completion(txn):
    while not txn.done:
        txn.run_step()
    return txn


class TestConfigValidation:
    def test_presets_rows_cover_all_ops(self):
        for preset in MIX_PRESETS.values():
            assert set(preset) == set(OP_KINDS)
            for row in preset.values():
                assert abs(sum(row.values()) - 1.0) < 1e-9

    def test_bad_ops_per_txn(self):
        with pytest.raises(WorkloadError, match="ops_per_txn"):
            small_config(ops_per_txn=0)

    def test_bad_hot_fraction(self):
        with pytest.raises(WorkloadError, match="hot_fraction"):
            small_config(hot_fraction=0.0)

    def test_bad_hot_probability(self):
        with pytest.raises(WorkloadError, match="hot_probability"):
            small_config(hot_probability=1.5)

    def test_unknown_op(self):
        with pytest.raises(WorkloadError, match="unknown op"):
            small_config(ops=("read", "delete"))

    def test_empty_ops(self):
        with pytest.raises(WorkloadError, match="at least one op"):
            small_config(ops=())

    def test_unknown_phase_mix(self):
        with pytest.raises(WorkloadError, match="unknown synthetic mix"):
            SynthPhase("olap", 5)

    def test_unbounded_non_final_phase(self):
        with pytest.raises(WorkloadError, match="final phase"):
            small_config(phases=(SynthPhase("oltp", 0), SynthPhase("scan", 0)))

    def test_hot_keys_at_least_one(self):
        config = small_config(hot_fraction=0.001)
        assert config.hot_keys == 1


class TestDeterminism:
    def test_equal_configs_draw_identical_streams(self):
        ops_a = SyntheticClient(small_config(), pid=3)._draw_ops("oltp")
        ops_b = SyntheticClient(small_config(), pid=3)._draw_ops("oltp")
        assert ops_a == ops_b

    def test_pids_differ(self):
        config = small_config()
        ops_a = SyntheticClient(config, pid=0)._draw_ops("oltp")
        ops_b = SyntheticClient(config, pid=1)._draw_ops("oltp")
        assert ops_a != ops_b

    def test_seeds_differ(self):
        ops_a = SyntheticClient(small_config(seed=1), pid=0)._draw_ops("oltp")
        ops_b = SyntheticClient(small_config(seed=2), pid=0)._draw_ops("oltp")
        assert ops_a != ops_b


class TestLockDiscipline:
    def test_lock_ops_sorted_by_key(self):
        ops = [
            SynthOp("update", key=9),
            SynthOp("scan", key=1),
            SynthOp("read", key=2),
            SynthOp("update", key=5),
        ]
        ordered = SyntheticClient._order_locks(ops)
        keys = [op.key for op in ordered if op.kind in ("read", "update")]
        assert keys == sorted(keys)
        # Non-locking ops keep their positions.
        assert ordered[1].kind == "scan"

    def test_read_of_updated_key_takes_x_lock_up_front(self):
        ops = [SynthOp("read", key=4), SynthOp("update", key=4)]
        ordered = SyntheticClient._order_locks(ops)
        read = next(op for op in ordered if op.kind == "read")
        assert read.for_update

    def test_plain_read_keeps_shared_lock(self):
        ops = [SynthOp("read", key=4), SynthOp("update", key=7)]
        ordered = SyntheticClient._order_locks(ops)
        read = next(op for op in ordered if op.kind == "read")
        assert not read.for_update

    def test_drawn_transactions_obey_the_discipline(self):
        client = SyntheticClient(small_config(ops_per_txn=8), pid=0)
        for _ in range(50):
            ops = client._draw_ops("oltp")
            keys = [op.key for op in ops if op.kind in ("read", "update")]
            assert keys == sorted(keys)


class TestPhaseSchedule:
    def test_walks_the_schedule(self):
        config = small_config(
            phases=(SynthPhase("oltp", 2), SynthPhase("scan", 0))
        )
        engine = loaded_engine(config)
        client = SyntheticWorkload(config).client(pid=0)
        mixes = []
        for _ in range(4):
            mixes.append(client.phase.mix)
            run_to_completion(client.next_transaction(engine))
        assert mixes == ["oltp", "oltp", "scan", "scan"]

    def test_clients_advance_independently(self):
        config = small_config(
            phases=(SynthPhase("oltp", 1), SynthPhase("scan", 0))
        )
        engine = loaded_engine(config)
        workload = SyntheticWorkload(config)
        ahead, behind = workload.client(pid=0), workload.client(pid=1)
        run_to_completion(ahead.next_transaction(engine))
        assert ahead.phase.mix == "scan"
        assert behind.phase.mix == "oltp"


class TestRenormalization:
    def test_restricted_vocabulary_rows_sum_to_one(self):
        rows = _renormalized(MIX_PRESETS["oltp"], ("read", "update"))
        for row in rows.values():
            assert abs(sum(w for _, w in row) - 1.0) < 1e-9
            assert {dst for dst, _ in row} == {"read", "update"}

    def test_zero_mass_row_degrades_to_uniform(self):
        # The scan preset gives "insert" zero outgoing mass toward
        # {update, insert}; the chain must still be able to move.
        rows = _renormalized(MIX_PRESETS["scan"], ("update", "insert"))
        weights = [w for _, w in rows["insert"]]
        assert all(abs(w - 0.5) < 1e-9 for w in weights)


class TestProtocol:
    def test_transactions_execute_against_the_engine(self):
        config = small_config(ops_per_txn=6)
        engine = loaded_engine(config)
        client = SyntheticWorkload(config).client(pid=0)
        for _ in range(10):
            txn = client.next_transaction(engine)
            steps = 0
            while not txn.done:
                assert txn.step_index == steps
                txn.run_step()
                steps += 1
            assert steps == config.ops_per_txn + 2  # begin + ops + commit

    def test_completed_transaction_refuses_more_steps(self):
        config = small_config()
        engine = loaded_engine(config)
        txn = run_to_completion(
            SyntheticWorkload(config).client(pid=0).next_transaction(engine)
        )
        with pytest.raises(WorkloadError, match="complete"):
            txn.run_step()

    def test_workload_reexported_from_repro_workloads(self):
        from repro.workloads import SyntheticWorkload as reexported

        assert reexported is SyntheticWorkload
