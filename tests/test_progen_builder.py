"""Tests for the routine DSL compiler (progen.builder)."""

import pytest

from repro.errors import IRError
from repro.ir import Terminator
from repro.progen import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
    build_binary,
    eval_cond,
    eval_count,
    iter_nodes,
)


def compile_one(body, name="r", extra=()):
    specs = [RoutineSpec(name, body=body)] + list(extra)
    return build_binary(specs)


class TestConditions:
    def test_plain_binding(self):
        assert eval_cond("hit", {"hit": True})
        assert not eval_cond("hit", {"hit": 0})

    def test_negation(self):
        assert eval_cond("!hit", {"hit": False})

    def test_never(self):
        assert not eval_cond("never", {})
        assert eval_cond("!never", {})

    def test_missing_binding_raises(self):
        with pytest.raises(IRError):
            eval_cond("ghost", {})

    def test_pseudo_random_deterministic(self):
        first = eval_cond("?40", {"salt": 123}, nonce=7)
        second = eval_cond("?40", {"salt": 123}, nonce=7)
        assert first == second

    def test_pseudo_random_rates(self):
        hits = sum(
            eval_cond("?30", {"salt": salt}, nonce=11) for salt in range(2000)
        )
        assert 0.25 < hits / 2000 < 0.35

    def test_pseudo_extremes(self):
        assert not any(eval_cond("?0", {"salt": s}, nonce=3) for s in range(50))
        assert all(eval_cond("?100", {"salt": s}, nonce=3) for s in range(50))

    def test_count_from_binding_and_minus(self):
        assert eval_count("depth", 0, {"depth": 3}) == 3
        assert eval_count("depth", 5, {"depth": 3}) == 0
        assert eval_count(7, 2, {}) == 5

    def test_count_missing_raises(self):
        with pytest.raises(IRError):
            eval_count("ghost", 0, {})


class TestCompilation:
    def test_straight_chain(self):
        program = compile_one([Straight(5), Straight(7)])
        proc = program.binary.proc("r")
        # prologue, s1, s2, epilogue
        assert [b.size for b in proc.blocks] == [4, 5, 7, 3]
        assert proc.blocks[0].terminator is Terminator.FALLTHROUGH
        assert proc.blocks[-1].terminator is Terminator.RETURN

    def test_spec_bids_annotated(self):
        node = Straight(5)
        program = compile_one([node])
        spec = program.spec("r")
        assert spec.prologue_bid >= 0
        assert node.bid >= 0

    def test_if_two_sided_wiring(self):
        node = If("hit", then=[Straight(2)], orelse=[Straight(3)])
        program = compile_one([node])
        binary = program.binary
        cmp_blk = binary.block(node.bid)
        assert cmp_blk.terminator is Terminator.COND_BRANCH
        # Fallthrough successor is the then-arm.
        then_bid = node.then[0].bid
        else_bid = node.orelse[0].bid
        assert cmp_blk.fallthrough == then_bid
        assert cmp_blk.taken == else_bid
        then_exit = binary.block(node.then_exit_bid)
        assert then_exit.terminator is Terminator.UNCOND_BRANCH

    def test_if_with_empty_then_rejected(self):
        with pytest.raises(IRError):
            compile_one([If("hit", then=[], orelse=[Straight(1)])])

    def test_loop_wiring(self):
        node = Loop(3, body=[Straight(4)])
        program = compile_one([node])
        binary = program.binary
        header = binary.block(node.bid)
        assert header.terminator is Terminator.COND_BRANCH
        latch = binary.block(node.latch_bid)
        assert latch.terminator is Terminator.UNCOND_BRANCH
        assert latch.succs == (node.bid,)

    def test_call_resolution_plain(self):
        callee = RoutineSpec("callee", body=[Straight(1)])
        node = Call("callee")
        program = compile_one([node], extra=[callee])
        assert node.target == "callee"
        blk = program.binary.block(node.bid)
        assert blk.terminator is Terminator.CALL
        assert blk.call_target == "callee"

    def test_call_resolution_prefers_specialized(self):
        shared = RoutineSpec("fetch", body=[Straight(1)])
        special = RoutineSpec("fetch@acct", body=[Straight(2)], suffix="acct")
        node = Call("fetch")
        caller = RoutineSpec("main@acct", body=[node], suffix="acct")
        program = build_binary([caller, shared, special])
        assert node.target == "fetch@acct"

    def test_unknown_call_target_rejected(self):
        with pytest.raises(IRError):
            compile_one([Call("ghost")])

    def test_subcall_compiles_to_call(self):
        helper = RoutineSpec("helper", body=[Straight(2)])
        node = SubCall("helper")
        program = compile_one([node], extra=[helper])
        blk = program.binary.block(node.bid)
        assert blk.terminator is Terminator.CALL
        assert blk.call_target == "helper"

    def test_coldpath_out_of_line_banked_after_epilogue(self):
        node = ColdPath(12, blocks=3, inline=False)
        program = compile_one([Straight(5), node, Straight(5)])
        proc = program.binary.proc("r")
        guard = program.binary.block(node.bid)
        assert guard.terminator is Terminator.COND_BRANCH
        # Guard's fallthrough continues the hot path; taken goes to the
        # cold bank, which sits after the epilogue in source order.
        cold_entry = guard.taken
        epilogue_index = next(
            i for i, b in enumerate(proc.blocks)
            if b.terminator is Terminator.RETURN
        )
        cold_index = next(
            i for i, b in enumerate(proc.blocks) if b.bid == cold_entry
        )
        assert cold_index > epilogue_index

    def test_coldpath_inline_branches_around(self):
        node = ColdPath(12, blocks=2, inline=True)
        nxt = Straight(5)
        program = compile_one([Straight(5), node, nxt])
        guard = program.binary.block(node.bid)
        # Inline: taken skips the cold code to the next node.
        assert guard.taken == nxt.bid

    def test_callseq_structure(self):
        a = RoutineSpec("a", body=[Straight(1)])
        b = RoutineSpec("b", body=[Straight(1)])
        node = CallSeq(("a", "b"))
        program = compile_one([node], extra=[a, b])
        binary = program.binary
        header = binary.block(node.bid)
        assert header.terminator is Terminator.COND_BRANCH
        call_a = binary.block(getattr(node, "_call_0"))
        call_b = binary.block(getattr(node, "_call_1"))
        assert call_a.call_target == "a"
        assert call_b.call_target == "b"
        latch = binary.block(node.latch_bid)
        assert latch.succs == (node.bid,)

    def test_duplicate_spec_rejected(self):
        with pytest.raises(IRError):
            build_binary([
                RoutineSpec("x", body=[Straight(1)]),
                RoutineSpec("x", body=[Straight(1)]),
            ])

    def test_resolve_event_names(self):
        shared = RoutineSpec("fetch", body=[Straight(1)])
        special = RoutineSpec("fetch@acct", body=[Straight(2)], suffix="acct")
        program = build_binary([shared, special])
        assert program.resolve("fetch", None) == "fetch"
        assert program.resolve("fetch", "acct") == "fetch@acct"
        assert program.resolve("fetch", "other") == "fetch"
        with pytest.raises(IRError):
            program.resolve("ghost", None)

    def test_iter_nodes_descends(self):
        body = [
            Straight(1),
            If("x", then=[Straight(2)], orelse=[Loop(2, body=[Straight(3)])]),
        ]
        kinds = [type(n).__name__ for n in iter_nodes(body)]
        assert kinds == ["Straight", "If", "Straight", "Loop", "Straight"]
