"""Hard timeouts and crashed-worker detection in parallel_map."""

import os
import time

import pytest

from repro.errors import ParallelError
from repro.harness.parallel import fork_available, parallel_map, resolve_jobs

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


def _square(value):
    return value * value


def _sleepy(value):
    if value < 0:
        time.sleep(60.0)
    return value


def _exit_hard(value):
    if value < 0:
        os._exit(13)  # simulates an OOM-killed / crashed worker
    return value


class TestTimeout:
    def test_normal_map_honours_timeout_quietly(self):
        result = parallel_map(_square, range(8), jobs=2, timeout=30.0)
        assert result == [v * v for v in range(8)]

    def test_hung_worker_raises_naming_the_task(self):
        started = time.monotonic()
        with pytest.raises(ParallelError) as excinfo:
            parallel_map(_sleepy, [1, 2, -1, 4], jobs=2, timeout=1.0)
        elapsed = time.monotonic() - started
        # The pool was terminated, not joined: nowhere near the 60 s nap.
        assert elapsed < 20.0
        message = str(excinfo.value)
        assert "task 2" in message
        assert "1s hard timeout" in message

    def test_serial_path_ignores_timeout(self):
        # jobs=1 is the plain comprehension; timeout does not apply.
        assert parallel_map(_square, [3], jobs=1, timeout=0.0) == [9]


class TestCrashedWorker:
    def test_crash_with_timeout_names_the_task(self):
        with pytest.raises(ParallelError, match="crashed while running task"):
            parallel_map(_exit_hard, [1, -1, 3], jobs=2, timeout=30.0)

    def test_crash_without_timeout_still_raises(self):
        with pytest.raises(ParallelError, match="worker crashed"):
            parallel_map(_exit_hard, [1, -1, 3], jobs=2)


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1

    def test_negative_means_per_cpu(self):
        assert resolve_jobs(-1) == (os.cpu_count() or 1)
