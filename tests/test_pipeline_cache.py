"""Tests for the cached, parallel experiment pipeline: config
fingerprints, the ArtifactStore cold/warm cycle, corruption fallback,
and serial/parallel output equality."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.execution import SystemConfig
from repro.harness import (
    ArtifactStore,
    Experiment,
    ExperimentConfig,
    figures,
    parallel_map,
    resolve_jobs,
)
from repro.osmodel import KernelCodeConfig
from repro.progen import AppCodeConfig
from repro.workloads import TpcbConfig


def tiny_config(**overrides):
    """A deliberately small pipeline so each test run stays sub-second."""
    base = dict(
        app=AppCodeConfig(scale=0.5, filler_routines=30, filler_instructions=10_000),
        kernel=KernelCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000),
        tpcb=TpcbConfig(branches=2, accounts_per_branch=50),
        system=SystemConfig(cpus=2, processes_per_cpu=2),
        profile_transactions=12,
        measure_transactions=12,
        warmup_transactions=2,
        pool_capacity=256,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert tiny_config().fingerprint() == tiny_config().fingerprint()

    def test_sensitive_to_config_changes(self):
        fingerprints = {
            tiny_config().fingerprint(),
            tiny_config(measure_transactions=13).fingerprint(),
            tiny_config(tpcb=TpcbConfig(branches=3, accounts_per_branch=50)).fingerprint(),
            tiny_config(cache_salt="other").fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_workload_factory_requires_salt(self):
        config = tiny_config(workload_factory=lambda tpcb, offset: None)
        with pytest.raises(ConfigError):
            config.fingerprint()

    def test_workload_factory_excluded_given_salt(self):
        salted = tiny_config(cache_salt="dss")
        with_factory = tiny_config(
            cache_salt="dss", workload_factory=lambda tpcb, offset: None
        )
        assert salted.fingerprint() == with_factory.fingerprint()

    def test_workload_factory_typed_as_callable(self):
        fields = {f.name: f for f in dataclasses.fields(ExperimentConfig)}
        assert "Callable" in str(fields["workload_factory"].type)


class TestArtifactStoreRoundtrip:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = Experiment(tiny_config(), store=store)
        cold_grid = figures.fig04_cache_sweep(cold, "all")
        assert "miss" in cold.runlog.cache_states("codegen")
        assert cold.runlog.cache_states("profile") == ["miss"]
        assert cold.runlog.cache_states("trace") == ["miss"]

        warm = Experiment(tiny_config(), store=store)
        warm_grid = figures.fig04_cache_sweep(warm, "all")
        _ = warm.profile
        assert warm.runlog.all_hits("codegen", "profile", "trace", "layout")
        assert warm_grid == cold_grid

    def test_warm_products_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = Experiment(tiny_config(), store=store)
        warm = Experiment(tiny_config(), store=store)
        _ = cold.profile, cold.trace
        _ = warm.profile, warm.trace
        assert np.array_equal(cold.profile.block_counts, warm.profile.block_counts)
        assert dict(cold.profile.edge_counts) == dict(warm.profile.edge_counts)
        for mine, theirs in zip(cold.trace.cpus, warm.trace.cpus):
            assert np.array_equal(mine.blocks, theirs.blocks)
            assert np.array_equal(mine.pids, theirs.pids)
        assert [u.name for u in cold.layout("all").units] == \
            [u.name for u in warm.layout("all").units]

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = Experiment(tiny_config(), store=store)
        _ = cold.trace
        reference = cold.trace.cpus[0].blocks.copy()
        fingerprint = cold.fingerprint
        store.path(fingerprint, "trace.npz").write_bytes(b"not a trace")
        store.path(fingerprint, "layout-all.json").write_text("{broken json")

        recovered = Experiment(tiny_config(), store=store)
        assert np.array_equal(recovered.trace.cpus[0].blocks, reference)
        assert recovered.runlog.cache_states("trace") == ["miss"]
        assert [u.name for u in recovered.layout("all").units] == \
            [u.name for u in cold.layout("all").units]

    def test_stale_entry_for_other_binary_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        small = Experiment(tiny_config(), store=store)
        _ = small.profile
        # Forge a cache dir collision: copy the small experiment's
        # profile under a bigger config's fingerprint.
        other_config = tiny_config(
            app=AppCodeConfig(scale=1.0, filler_routines=60, filler_instructions=20_000)
        )
        forged = store.prepare(other_config.fingerprint(), "profile-app.npz")
        forged.write_bytes(
            store.path(small.fingerprint, "profile-app.npz").read_bytes()
        )
        other = Experiment(other_config, store=store)
        _ = other.profile  # must reject the stale entry, not crash
        assert other.runlog.cache_states("profile") == ["miss"]

    def test_store_info_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        assert store.info().experiments == 0
        exp = Experiment(tiny_config(), store=store)
        _ = exp.trace
        info = store.info()
        assert info.experiments == 1
        assert info.files >= 3  # app.pkl, kernel.pkl, trace.npz
        assert info.total_bytes > 0
        assert store.clear() == 1
        assert store.info().experiments == 0

    def test_no_store_means_cache_off(self):
        exp = Experiment(tiny_config())
        _ = exp.trace
        assert exp.runlog.cache_states("trace") == ["off"]


class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def exp(self):
        return Experiment(tiny_config())

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [i * i for i in items]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1

    def test_fig04_jobs4_matches_serial(self, exp):
        serial = figures.fig04_table(
            figures.fig04_cache_sweep(exp, "base", jobs=1), "base"
        ).render()
        parallel = figures.fig04_table(
            figures.fig04_cache_sweep(exp, "base", jobs=4), "base"
        ).render()
        assert parallel == serial

    def test_fig06_jobs4_matches_serial(self, exp):
        serial = figures.fig06_associativity(exp, jobs=1).render()
        parallel = figures.fig06_associativity(exp, jobs=4).render()
        assert parallel == serial

    def test_fig07_jobs4_matches_serial(self, exp):
        combos = ("base", "chain")
        serial = figures.fig07_ablation(exp, combos=combos, jobs=1).render()
        parallel = figures.fig07_ablation(exp, combos=combos, jobs=4).render()
        assert parallel == serial


def _square(value):
    return value * value
