"""Run-report rendering and the report/bench-diff/trace-export CLI."""

import io
import json
import pathlib

import pytest

from repro import obs
from repro.cli import main
from repro.obs.benchdiff import compare_dirs
from repro.obs.report import render_html, render_report

DATA = pathlib.Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.reset_metrics()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def fixture_document(rows, metrics=None):
    doc = {
        "schema": 2,
        "name": "fig99",
        "title": "Figure 99 (test): synthetic",
        "columns": ["size_KB", "misses"],
        "rows": rows,
        "notes": ["synthetic fixture"],
        "run": {"id": "deadbeef0000", "timestamp": "2026-01-01T00:00:00+00:00"},
    }
    if metrics:
        doc["metrics"] = metrics
    return doc


def write_results(tmp_path, rows, metrics=None):
    results = tmp_path / "results"
    results.mkdir(parents=True, exist_ok=True)
    (results / "BENCH_fig99.json").write_text(
        json.dumps(fixture_document(rows, metrics))
    )
    return results


FIXTURE_METRICS = {
    "icache.misses": {"kind": "counter", "value": 123},
    "online.drift_score": {"kind": "gauge", "value": 0.41},
    "pipeline.sweep.seconds": {
        "kind": "histogram",
        "count": 2,
        "sum": 3.0,
        "min": 1.0,
        "max": 2.0,
        "mean": 1.5,
    },
    "l2.window_miss_rate": {
        "kind": "series",
        "count": 4,
        "stride": 1,
        "points": [[0, 0.5], [1, 0.25], [2, 0.125], [3, 0.0625]],
    },
}

FIXTURE_SPANS = [
    {
        "type": "span", "name": "stage.sweep", "span_id": "1:1",
        "parent_id": None, "pid": 1, "tid": 1, "ts": 100.0,
        "wall_s": 2.0, "cpu_s": 1.9, "rss_kb": 1000, "attrs": {},
    },
    {
        "type": "span", "name": "layout.build", "span_id": "1:2",
        "parent_id": "1:1", "pid": 1, "tid": 1, "ts": 100.1,
        "wall_s": 0.5, "cpu_s": 0.5, "rss_kb": 1000,
        "attrs": {"combo": "all"},
    },
]


def write_trace(tmp_path):
    trace = tmp_path / "trace.jsonl"
    trace.write_text(
        "".join(json.dumps(e) + "\n" for e in FIXTURE_SPANS)
    )
    return trace


class TestRenderReport:
    def test_matches_golden_file(self, tmp_path):
        results = write_results(
            tmp_path, [[32, 100], [64, 50]], FIXTURE_METRICS
        )
        trace = write_trace(tmp_path)
        rendered = render_report(results, trace_path=trace)
        golden = (DATA / "report_golden.md").read_text()
        assert rendered == golden

    def test_empty_directory_mentions_no_documents(self, tmp_path):
        rendered = render_report(tmp_path)
        assert "No `BENCH_*.json` documents" in rendered

    def test_html_wrapper_escapes(self, tmp_path):
        results = write_results(tmp_path, [[32, 100]])
        html = render_html(render_report(results))
        assert html.startswith("<!DOCTYPE html>")
        assert "<h1>" not in html  # markdown served preformatted
        assert "Figure 99" in html


class TestReportCli:
    def test_report_to_stdout(self, tmp_path):
        results = write_results(tmp_path, [[32, 100]], FIXTURE_METRICS)
        code, text = run_cli("report", str(results))
        assert code == 0
        assert "# Run report" in text
        assert "deadbeef0000" in text
        assert "icache.misses" in text

    def test_report_to_file_html(self, tmp_path):
        results = write_results(tmp_path, [[32, 100]])
        out = tmp_path / "report.html"
        code, text = run_cli("report", str(results), "--html", "--out", str(out))
        assert code == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_report_includes_flamegraph(self, tmp_path):
        results = write_results(tmp_path, [[32, 100]])
        trace = write_trace(tmp_path)
        code, text = run_cli(
            "report", str(results), "--trace-file", str(trace)
        )
        assert code == 0
        assert "Span flamegraph" in text
        assert "layout.build" in text


class TestBenchDiff:
    def _dirs(self, tmp_path, fresh_rows):
        baseline = write_results(tmp_path / "b", [[32, 100], [64, 50]])
        fresh = write_results(tmp_path / "f", fresh_rows)
        return baseline, fresh

    def test_identical_passes(self, tmp_path):
        baseline, fresh = self._dirs(tmp_path, [[32, 100], [64, 50]])
        report = compare_dirs(fresh, baseline, threshold_pct=8)
        assert report.ok
        assert len(report.deltas) == 2

    def test_regression_beyond_threshold_fails(self, tmp_path):
        baseline, fresh = self._dirs(tmp_path, [[32, 110], [64, 50]])
        report = compare_dirs(fresh, baseline, threshold_pct=8)
        assert not report.ok
        (bad,) = report.regressions
        assert bad.row_key == "32"
        assert bad.pct_change == pytest.approx(10.0)

    def test_improvement_never_fails(self, tmp_path):
        baseline, fresh = self._dirs(tmp_path, [[32, 10], [64, 5]])
        assert compare_dirs(fresh, baseline, threshold_pct=8).ok

    def test_higher_is_better_columns_invert(self, tmp_path):
        baseline = tmp_path / "b"
        fresh = tmp_path / "f"
        for root, value in ((baseline, 90), (fresh, 50)):
            root.mkdir()
            (root / "BENCH_cov.json").write_text(
                json.dumps(
                    {
                        "name": "cov",
                        "columns": ["combo", "captured_%"],
                        "rows": [["all", value]],
                    }
                )
            )
        report = compare_dirs(fresh, baseline, threshold_pct=8)
        assert not report.ok  # captured% dropping 90 -> 50 is a regression

    def test_missing_rows_are_notes_not_failures(self, tmp_path):
        baseline, fresh = self._dirs(tmp_path, [[32, 100]])
        report = compare_dirs(fresh, baseline, threshold_pct=8)
        assert report.ok
        assert any("64" in note for note in report.notes)

    def test_cli_exit_codes(self, tmp_path):
        baseline, fresh = self._dirs(tmp_path, [[32, 100], [64, 50]])
        code, text = run_cli(
            "bench-diff", str(fresh), "--baseline", str(baseline)
        )
        assert code == 0 and "PASS" in text
        (fresh / "BENCH_fig99.json").write_text(
            json.dumps(fixture_document([[32, 200], [64, 50]]))
        )
        code, text = run_cli(
            "bench-diff", str(fresh), "--baseline", str(baseline)
        )
        assert code == 1 and "FAIL" in text


class TestTraceExportCli:
    def test_export_and_default_name(self, tmp_path):
        trace = write_trace(tmp_path)
        code, text = run_cli("trace-export", str(trace))
        assert code == 0
        exported = pathlib.Path(f"{trace}.chrome.json")
        assert exported.is_file()
        doc = json.loads(exported.read_text())
        assert {e["name"] for e in doc["traceEvents"]} == {
            "stage.sweep",
            "layout.build",
        }

    def test_cli_trace_flag_records_spans(self, tmp_path):
        # Other tests in the same process may have warmed the shared
        # quick experiment's in-memory stage products, which would let
        # the pipeline skip (and so never trace) stage.profile.
        from repro.harness.experiment import quick_experiment

        quick_experiment.cache_clear()
        trace = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "--no-cache", "--quiet", "--trace", str(trace), "figure", "fig03"
        )
        assert code == 0
        events = [
            e for e in map(json.loads, trace.read_text().splitlines()) if e
        ]
        names = {e.get("name") for e in events if e.get("type") == "span"}
        assert "stage.profile" in names
        assert any(e.get("type") == "metrics" for e in events)
