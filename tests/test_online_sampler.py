"""Tests for the online epoch sampler and trace epoch slicing."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.harness import quick_experiment
from repro.ir import Binary, Procedure, Terminator
from repro.online import EpochProfile, OnlineSampler, epoch_streams


def loop_binary():
    binary = Binary()
    proc = Procedure("loop")
    proc.add_block("head", 4, Terminator.COND_BRANCH, succs=("head", "exit"))
    proc.add_block("exit", 2, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


@pytest.fixture(scope="module")
def exp():
    experiment = quick_experiment()
    _ = experiment.trace
    return experiment


class TestOnlineSampler:
    def test_merges_cpu_samples_into_epoch_profile(self):
        binary = loop_binary()
        sampler = OnlineSampler(binary, cpus=2, period=4, min_samples=1)
        trace = np.zeros(400, dtype=np.int64)  # spin on "head"
        sampler.observe(0, trace)
        sampler.observe(1, trace)
        epoch = sampler.end_epoch()
        assert isinstance(epoch, EpochProfile)
        assert epoch.epoch == 0
        assert epoch.samples > 0
        assert epoch.reliable
        assert epoch.profile.block_counts[0] > 0
        assert epoch.profile.block_counts[1] == 0

    def test_epoch_index_increments(self):
        sampler = OnlineSampler(loop_binary(), cpus=1, period=4)
        assert sampler.epoch == 0
        first = sampler.end_epoch()
        second = sampler.end_epoch()
        assert (first.epoch, second.epoch) == (0, 1)
        assert sampler.epoch == 2

    def test_end_epoch_resets_hits_but_not_phase(self):
        binary = loop_binary()
        sampler = OnlineSampler(binary, cpus=1, period=4, min_samples=1)
        sampler.observe(0, np.zeros(401, dtype=np.int64))
        first = sampler.end_epoch()
        assert first.samples > 0
        # No new observations: the next epoch is empty...
        second = sampler.end_epoch()
        assert second.samples == 0
        assert not second.reliable
        assert second.profile.total_blocks_executed == 0
        # ...and feeding across the boundary is equivalent to one
        # continuous stream (phase carried, 401 % 4 != 0).
        sampler.observe(0, np.zeros(399, dtype=np.int64))
        third = sampler.end_epoch()
        whole = OnlineSampler(binary, cpus=1, period=4, min_samples=1)
        whole.observe(0, np.zeros(800, dtype=np.int64))
        reference = whole.end_epoch()
        assert first.samples + third.samples == reference.samples

    def test_min_samples_gates_reliability(self):
        sampler = OnlineSampler(loop_binary(), cpus=1, period=4, min_samples=50)
        sampler.observe(0, np.zeros(40, dtype=np.int64))  # ~10 samples
        assert not sampler.end_epoch().reliable

    def test_cpu_out_of_range_rejected(self):
        sampler = OnlineSampler(loop_binary(), cpus=2)
        with pytest.raises(ProfileError, match="cpu"):
            sampler.observe(2, np.zeros(8, dtype=np.int64))

    def test_constructor_validation(self):
        with pytest.raises(ProfileError):
            OnlineSampler(loop_binary(), cpus=0)
        with pytest.raises(ProfileError):
            OnlineSampler(loop_binary(), cpus=1, min_samples=-1)


class TestEpochStreams:
    def test_slices_concatenate_to_full_app_stream(self, exp):
        epochs = epoch_streams(exp.trace, 3)
        assert len(epochs) == 3
        for cpu_index, cpu in enumerate(exp.trace.cpus):
            mask = cpu.blocks < exp.trace.kernel_offset
            rebuilt = np.concatenate(
                [epochs[e][cpu_index][0] for e in range(3)]
            )
            assert np.array_equal(rebuilt, cpu.blocks[mask])
            rebuilt_pids = np.concatenate(
                [epochs[e][cpu_index][1] for e in range(3)]
            )
            assert np.array_equal(rebuilt_pids, cpu.pids[mask])

    def test_kernel_blocks_stripped(self, exp):
        for epoch in epoch_streams(exp.trace, 2):
            for blocks, _pids in epoch:
                assert (blocks < exp.trace.kernel_offset).all()

    def test_slices_roughly_equal(self, exp):
        epochs = epoch_streams(exp.trace, 4)
        for cpu_index in range(len(exp.trace.cpus)):
            lengths = [len(epochs[e][cpu_index][0]) for e in range(4)]
            assert max(lengths) - min(lengths) <= 1

    def test_epoch_count_validated(self, exp):
        with pytest.raises(ProfileError, match="epoch"):
            epoch_streams(exp.trace, 0)
