"""Tests for the application routine library and the kernel program."""

import random

import pytest

from repro.ir import Terminator
from repro.osmodel import KERNEL_BASE, KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, build_app_program, generate_code_run
from repro.progen.builder import iter_nodes
from repro.progen.dsl import ColdPath, If, Loop, Straight, SubCall
from repro.progen.library import CodeFactory, HELPERS


class TestGenerateCodeRun:
    def test_budget_roughly_respected(self):
        rng = random.Random(1)
        nodes = generate_code_run(rng, 200)
        static = sum(
            getattr(n, "size", 4) for n in iter_nodes(nodes)
            if isinstance(n, (Straight, If, Loop))
        )
        assert static > 100  # warm content near the budget

    def test_deterministic_for_seed(self):
        a = generate_code_run(random.Random(7), 100)
        b = generate_code_run(random.Random(7), 100)
        assert [type(n).__name__ for n in iter_nodes(a)] == [
            type(n).__name__ for n in iter_nodes(b)
        ]

    def test_block_sizes_small(self):
        rng = random.Random(2)
        nodes = generate_code_run(rng, 500)
        for node in iter_nodes(nodes):
            if isinstance(node, Straight):
                assert 3 <= node.size <= 9

    def test_contains_mixture(self):
        rng = random.Random(3)
        kinds = {type(n).__name__ for n in iter_nodes(generate_code_run(rng, 2000))}
        assert {"Straight", "If", "ColdPath"} <= kinds

    def test_helpers_optional(self):
        rng = random.Random(4)
        nodes = generate_code_run(rng, 2000, helpers=None)
        assert not any(isinstance(n, SubCall) for n in iter_nodes(nodes))


class TestCodeFactory:
    def test_outlines_private_functions(self):
        rng = random.Random(5)
        collector = []
        factory = CodeFactory(rng, HELPERS, collector=collector)
        nodes = factory.run(800, owner="myroutine")
        assert collector, "expected outlined private functions"
        for spec in collector:
            assert spec.name.startswith("myroutine.p")
        subcalls = [n for n in nodes if isinstance(n, SubCall)]
        private_targets = {s.target for s in subcalls if ".p" in s.target}
        assert private_targets == {s.name for s in collector}

    def test_no_collector_inlines_everything(self):
        rng = random.Random(6)
        factory = CodeFactory(rng, HELPERS, collector=None)
        nodes = factory.run(800, owner="myroutine")
        assert not any(
            isinstance(n, SubCall) and ".p" in n.target for n in nodes
        )


class TestAppProgram:
    @pytest.fixture(scope="class")
    def program(self):
        return build_app_program(
            AppCodeConfig(scale=1.0, filler_routines=50, filler_instructions=10_000)
        )

    def test_every_engine_event_has_a_routine(self, program):
        shared = ["buffer_get", "buffer_new", "lock_acquire", "stmt_lookup",
                  "sql_parse", "wal_append", "wal_flush", "txn_begin",
                  "txn_commit", "txn_abort"]
        for name in shared:
            assert name in program.specs
        for table in ("account", "teller", "branch", "history"):
            for base in ("sql_update", "sql_select", "sql_insert",
                         "btree_lookup", "row_fetch", "row_update",
                         "heap_insert", "plan_bind"):
                assert f"{base}@{table}" in program.specs

    def test_history_has_no_index_insert(self, program):
        assert "index_insert@account" in program.specs
        assert "index_insert@history" not in program.specs

    def test_filler_interleaved_with_hot(self, program):
        order = program.binary.proc_order()
        cold_positions = [i for i, n in enumerate(order) if n.startswith("cold_")]
        hot_positions = [i for i, n in enumerate(order) if not n.startswith("cold_")]
        # Cold filler appears before some hot code (scattered, not banked).
        assert min(cold_positions) < max(hot_positions)

    def test_private_functions_grouped_with_owner(self, program):
        order = program.binary.proc_order()
        for i, name in enumerate(order):
            if ".p" in name and not name.startswith("h."):
                owner = name.split(".p")[0]
                assert owner in order
                # The owner sits earlier, with no other protocol routine
                # in between (same module group).
                owner_pos = order.index(owner)
                assert owner_pos < i

    def test_deterministic(self):
        config = AppCodeConfig(scale=1.0, filler_routines=10,
                               filler_instructions=2_000, seed=77)
        a = build_app_program(config)
        b = build_app_program(config)
        assert a.binary.proc_order() == b.binary.proc_order()
        assert a.binary.static_size == b.binary.static_size

    def test_scale_grows_footprint(self):
        small = build_app_program(AppCodeConfig(scale=0.5, filler_routines=0))
        big = build_app_program(AppCodeConfig(scale=2.0, filler_routines=0))
        assert big.binary.static_size > 1.5 * small.binary.static_size


class TestKernelProgram:
    @pytest.fixture(scope="class")
    def kernel(self):
        return build_kernel_program(KernelCodeConfig(scale=1.0))

    def test_entry_points_present(self, kernel):
        for name in ("k.read", "k.write", "k.yield", "k.switch", "k.timer"):
            assert name in kernel.specs

    def test_kernel_base_above_typical_app(self):
        assert KERNEL_BASE >= 1 << 24

    def test_loops_bound_to_pages(self, kernel):
        spec = kernel.spec("k.read")
        loops = [n for n in iter_nodes(spec.body) if isinstance(n, Loop)]
        assert any(loop.count == "pages" for loop in loops)

    def test_filler_present(self, kernel):
        assert any(n.startswith("kcold_") for n in kernel.binary.proc_order())


class TestCalibration:
    def test_warm_footprint_excludes_filler(self):
        from repro.progen import (
            AppCodeConfig,
            build_app_program,
            warm_footprint_bytes,
        )

        with_filler = build_app_program(
            AppCodeConfig(scale=0.5, filler_routines=50,
                          filler_instructions=50_000, seed=5)
        )
        without = build_app_program(
            AppCodeConfig(scale=0.5, filler_routines=0, seed=5)
        )
        assert warm_footprint_bytes(with_filler) == warm_footprint_bytes(without)

    def test_calibrate_hits_target(self):
        from repro.progen import AppCodeConfig, calibrate_scale

        target = 60_000
        config, result = calibrate_scale(
            target, AppCodeConfig(scale=1.0, filler_routines=0),
            tolerance=0.10,
        )
        assert result.relative_error <= 0.10
        assert config.scale == result.scale

    def test_calibrate_scales_up_and_down(self):
        from repro.progen import AppCodeConfig, calibrate_scale

        small, small_result = calibrate_scale(
            30_000, AppCodeConfig(scale=1.0, filler_routines=0),
            tolerance=0.15,
        )
        big, big_result = calibrate_scale(
            200_000, AppCodeConfig(scale=1.0, filler_routines=0),
            tolerance=0.15,
        )
        assert big.scale > small.scale

    def test_bad_target_rejected(self):
        from repro.progen import calibrate_scale

        with pytest.raises(ValueError):
            calibrate_scale(0)
