"""Tests for basic block chaining, including the paper's Figure 1a example."""

import numpy as np
import pytest

from repro.ir import (
    Binary,
    Procedure,
    Terminator,
    flow_graph_from_block_counts,
    flow_graph_from_edge_counts,
)
from repro.layout import chain_blocks


def figure_1a_binary():
    """The paper's Figure 1a CFG (reconstructed).

    A1(10) -> A2(10) -> A3(10) -%60/40%-> A4(6) / A5(4)
    A4 -> A7;  A5 -%60/40%-> A6(2.4) / A7(1.6);  A6 -> A8; A7(7.6) -> A8(10)
    Source order: A1..A8.
    """
    binary = Binary()
    proc = Procedure("fig1a")
    proc.add_block("A1", 4, Terminator.FALLTHROUGH, succs=("A2",))
    proc.add_block("A2", 3, Terminator.FALLTHROUGH, succs=("A3",))
    proc.add_block("A3", 2, Terminator.COND_BRANCH, succs=("A5", "A4"))
    proc.add_block("A4", 5, Terminator.UNCOND_BRANCH, succs=("A7",))
    proc.add_block("A5", 3, Terminator.COND_BRANCH, succs=("A7", "A6"))
    proc.add_block("A6", 2, Terminator.FALLTHROUGH, succs=("A8",))
    proc.add_block("A7", 4, Terminator.FALLTHROUGH, succs=("A8",))
    proc.add_block("A8", 3, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


FIG1A_COUNTS = {
    "A1": 100, "A2": 100, "A3": 100, "A4": 60,
    "A5": 40, "A6": 24, "A7": 76, "A8": 100,
}

FIG1A_EDGES = {
    ("A1", "A2"): 100,
    ("A2", "A3"): 100,
    ("A3", "A4"): 60,
    ("A3", "A5"): 40,
    ("A4", "A7"): 60,
    ("A5", "A6"): 24,
    ("A5", "A7"): 16,
    ("A6", "A8"): 24,
    ("A7", "A8"): 76,
}


def fig1a_profile_arrays(binary):
    proc = binary.proc("fig1a")
    counts = np.zeros(binary.num_blocks, dtype=np.int64)
    for label, count in FIG1A_COUNTS.items():
        counts[proc.block(label).bid] = count
    edges = {
        (proc.block(s).bid, proc.block(d).bid): c
        for (s, d), c in FIG1A_EDGES.items()
    }
    return counts, edges


class TestFigure1aGolden:
    def test_hot_path_is_straightened(self):
        binary = figure_1a_binary()
        proc = binary.proc("fig1a")
        counts, edges = fig1a_profile_arrays(binary)
        graph = flow_graph_from_edge_counts(proc, edges)
        result = chain_blocks(proc, graph, counts)
        labels = [binary.block(b).label for b in result.block_order]
        # Greedy: A1-A2-A3-A4-A7-A8 becomes the entry chain (hot path
        # falls through); the cold A5-A6 chain is placed after.
        assert labels == ["A1", "A2", "A3", "A4", "A7", "A8", "A5", "A6"]

    def test_entry_chain_always_first_even_if_cold(self):
        binary = figure_1a_binary()
        proc = binary.proc("fig1a")
        counts, edges = fig1a_profile_arrays(binary)
        # Make the entry block cold: chains still start with A1's chain.
        counts[proc.block("A1").bid] = 0
        edges[(proc.block("A1").bid, proc.block("A2").bid)] = 0
        graph = flow_graph_from_edge_counts(proc, edges)
        result = chain_blocks(proc, graph, counts)
        assert result.block_order[0] == proc.block("A1").bid

    def test_block_count_estimator_gives_same_chains_here(self):
        binary = figure_1a_binary()
        proc = binary.proc("fig1a")
        counts, _ = fig1a_profile_arrays(binary)
        graph = flow_graph_from_block_counts(proc, counts)
        result = chain_blocks(proc, graph, counts)
        labels = [binary.block(b).label for b in result.block_order]
        assert labels == ["A1", "A2", "A3", "A4", "A7", "A8", "A5", "A6"]


class TestChainingProperties:
    def test_every_block_placed_exactly_once(self):
        binary = figure_1a_binary()
        proc = binary.proc("fig1a")
        counts, edges = fig1a_profile_arrays(binary)
        result = chain_blocks(proc, flow_graph_from_edge_counts(proc, edges), counts)
        assert sorted(result.block_order) == sorted(proc.block_ids())

    def test_zero_profile_preserves_source_order(self):
        binary = figure_1a_binary()
        proc = binary.proc("fig1a")
        counts = np.zeros(binary.num_blocks, dtype=np.int64)
        graph = flow_graph_from_block_counts(proc, counts)
        result = chain_blocks(proc, graph, counts)
        assert result.block_order == proc.block_ids()

    def test_no_cycle_in_chains(self):
        # A tight loop: header -> body -> header must not close a cycle.
        binary = Binary()
        proc = Procedure("loop")
        proc.add_block("head", 2, Terminator.COND_BRANCH, succs=("exit", "body"))
        proc.add_block("body", 5, Terminator.UNCOND_BRANCH, succs=("head",))
        proc.add_block("exit", 1, Terminator.RETURN)
        binary.add_procedure(proc)
        binary.seal()
        counts = np.array([100, 99, 1], dtype=np.int64)
        edges = {(0, 1): 99, (1, 0): 99, (0, 2): 1}
        graph = flow_graph_from_edge_counts(proc, edges)
        result = chain_blocks(proc, graph, counts)
        assert sorted(result.block_order) == [0, 1, 2]
        # head chains to body (or body to head), never both.
        assert len(result.chains) >= 2

    def test_chains_ordered_by_first_block_heat(self):
        binary = Binary()
        proc = Procedure("p")
        proc.add_block("e", 1, Terminator.INDIRECT_JUMP, succs=("h", "w", "c"))
        proc.add_block("c", 1, Terminator.RETURN)   # cold
        proc.add_block("h", 1, Terminator.RETURN)   # hottest
        proc.add_block("w", 1, Terminator.RETURN)   # warm
        binary.add_procedure(proc)
        binary.seal()
        counts = np.zeros(4, dtype=np.int64)
        proc_blocks = {b.label: b.bid for b in proc.blocks}
        counts[proc_blocks["e"]] = 100
        counts[proc_blocks["h"]] = 70
        counts[proc_blocks["w"]] = 25
        counts[proc_blocks["c"]] = 5
        # No chainable edges (indirect fan-out to 3 targets shares one
        # source): all blocks stay singleton chains.
        graph = flow_graph_from_edge_counts(proc, {})
        result = chain_blocks(proc, graph, counts)
        labels = [binary.block(c[0]).label for c in result.chains]
        assert labels == ["e", "h", "w", "c"]
