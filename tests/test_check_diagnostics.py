"""Tests for the diagnostics engine and its catalogue integrity."""

import json
import pathlib
import re

import pytest

from repro.check import (
    CODES,
    CheckContext,
    CheckReport,
    CheckRunner,
    Diagnostic,
    Severity,
)

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "CHECKS.md"


def diag(code="LAY001", severity=Severity.ERROR, message="m", **kw):
    return Diagnostic(code, severity, message, **kw)


class TestDiagnostic:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("LAY999", Severity.ERROR, "nope")

    def test_render_carries_code_severity_and_hint(self):
        d = diag(target="app/all", location="unit f.seg1", hint="fix it")
        text = d.render()
        assert "LAY001" in text
        assert "error" in text
        assert "[app/all]" in text
        assert "unit f.seg1" in text
        assert "hint: fix it" in text

    def test_render_without_optionals_is_one_line(self):
        assert "\n" not in diag().render()

    def test_to_dict_round_trips_through_json(self):
        d = diag(code="PRF001", severity=Severity.WARN)
        doc = json.loads(json.dumps(d.to_dict()))
        assert doc["code"] == "PRF001"
        assert doc["severity"] == "warn"

    def test_severity_str(self):
        assert str(Severity.ERROR) == "error"


class TestCheckReport:
    def test_severity_buckets_and_ok(self):
        report = CheckReport([
            diag(severity=Severity.ERROR),
            diag(code="PRF004", severity=Severity.WARN),
            diag(code="QLT001", severity=Severity.INFO),
        ])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert not report.ok
        assert CheckReport().ok

    def test_codes_sorted_distinct(self):
        report = CheckReport([diag(), diag(), diag(code="PRF001")])
        assert report.codes() == ["LAY001", "PRF001"]

    def test_render_ends_with_tally(self):
        report = CheckReport([diag()])
        assert report.render().strip().endswith(
            "spike lint: 1 error(s), 0 warning(s), 0 info(s)"
        )

    def test_extend_folds_reports(self):
        a = CheckReport([diag()])
        a.extend(CheckReport([diag(code="PRF001")]))
        assert len(a.diagnostics) == 2

    def test_to_json_shape(self):
        doc = CheckReport([diag()]).to_json()
        assert doc["errors"] == 1
        assert doc["codes"] == ["LAY001"]
        assert doc["diagnostics"][0]["code"] == "LAY001"


class TestCheckRunner:
    def test_runs_passes_in_order_and_collects(self):
        order = []

        def pass_a(ctx):
            order.append("a")
            yield diag()

        def pass_b(ctx):
            order.append("b")
            return []

        runner = CheckRunner().add("a", pass_a).add("b", pass_b)
        report = runner.run(CheckContext(target="t"))
        assert order == ["a", "b"]
        assert report.codes() == ["LAY001"]

    def test_counters_incremented(self):
        from repro import obs

        before = obs.counter("check.runs").value
        CheckRunner().run(CheckContext())
        assert obs.counter("check.runs").value == before + 1


class TestCatalogueIntegrity:
    def test_every_code_documented_in_checks_md(self):
        text = DOCS.read_text()
        missing = [code for code in CODES if f"`{code}`" not in text]
        assert not missing, f"codes not documented in docs/CHECKS.md: {missing}"

    def test_no_undocumented_codes_in_checks_md(self):
        text = DOCS.read_text()
        documented = set(re.findall(r"`((?:LAY|PRF|QLT|STA|DEP)\d{3})`", text))
        unknown = documented - set(CODES)
        assert not unknown, f"docs/CHECKS.md documents unregistered codes: {unknown}"

    def test_streams_shims_fully_deleted(self):
        # The DEP001 ladder completed: neither the Experiment shims nor
        # their scan registry exist any more.
        import repro.check as check
        from repro.harness.experiment import Experiment

        assert not hasattr(check, "DEPRECATED_APIS")
        for name in (
            "app_streams", "kernel_streams",
            "combined_streams", "per_process_streams",
        ):
            assert not hasattr(Experiment, name)
