"""Regression guard: headline metrics of the quick experiment.

Seeds are fixed, so these numbers are deterministic per code version;
the assertions use generous ranges so legitimate re-tuning passes while
silent behavioral regressions (lost optimizations, broken replay,
protocol drift) fail loudly.
"""

import numpy as np
import pytest

from repro.analysis import (
    dynamic_footprint_bytes,
    merge_sequence_stats,
    sequence_lengths,
    union_footprint_in_lines,
)
from repro.cache import CacheGeometry, simulate_direct_mapped, simulate_itlb
from repro.harness import quick_experiment


@pytest.fixture(scope="module")
def exp():
    experiment = quick_experiment()
    _ = experiment.profile
    _ = experiment.trace
    return experiment


def dm_misses(exp, combo, size_kb=32, line=128):
    geometry = CacheGeometry(size_kb * 1024, line, 1)
    return sum(
        simulate_direct_mapped(s, c, geometry) for s, c in exp.streams(combo, scope="app")
    )


class TestHeadlineRegression:
    def test_footprint_scale(self, exp):
        footprint = dynamic_footprint_bytes(exp.profile)
        assert 15_000 < footprint < 80_000  # quick config: tens of KB

    def test_miss_reduction_holds(self, exp):
        base = dm_misses(exp, "base")
        optimized = dm_misses(exp, "all")
        assert optimized < 0.6 * base

    def test_chain_alone_helps(self, exp):
        base = dm_misses(exp, "base")
        chain = dm_misses(exp, "chain")
        assert chain < 0.8 * base

    def test_sequence_lengths_band(self, exp):
        base = merge_sequence_stats(
            [sequence_lengths(s, c) for s, c in exp.streams("base", scope="app")]
        )
        optimized = merge_sequence_stats(
            [sequence_lengths(s, c) for s, c in exp.streams("all", scope="app")]
        )
        assert 5.0 < base.mean_length < 11.0
        assert optimized.mean_length > 1.2 * base.mean_length

    def test_packing_improves(self, exp):
        base_lines = union_footprint_in_lines(exp.streams("base", scope="app"), 128)
        opt_lines = union_footprint_in_lines(exp.streams("all", scope="app"), 128)
        assert opt_lines < base_lines

    def test_itlb_improves(self, exp):
        base = simulate_itlb(exp.streams("base", scope="combined"), entries=16).misses
        optimized = simulate_itlb(exp.streams("all", scope="combined"), entries=16).misses
        assert optimized < base

    def test_kernel_fraction_band(self, exp):
        trace = exp.trace
        kernel = sum(
            int((cpu.blocks >= trace.kernel_offset).sum()) for cpu in trace.cpus
        )
        total = sum(cpu.num_blocks for cpu in trace.cpus)
        assert 0.02 < kernel / total < 0.30

    def test_lock_waits_occur(self, exp):
        """The 40-branch hot rows must produce real contention."""
        # The quick experiment shares an engine per run; re-derive from
        # a fresh system at the same scale.
        from repro.execution import OltpSystem
        from repro.workloads import TpcbConfig

        system = OltpSystem(
            exp.app, exp.kernel,
            tpcb_config=TpcbConfig(branches=2, accounts_per_branch=50),
        )
        system.run(transactions=60)
        assert system.engine.locks.waits > 0

    @pytest.mark.parametrize("combo", ["base", "porder", "chain",
                                       "chain+split", "chain+porder", "all",
                                       "split", "hotcold"])
    def test_every_combo_replayable(self, exp, combo):
        streams = exp.streams(combo, scope="app")
        for starts, counts in streams:
            assert (starts >= 0).all()
            assert (counts >= 0).all()
            assert int(counts.sum()) > 0
