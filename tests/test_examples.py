"""Smoke tests: the fast example scripts run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "miss reduction" in result.stdout

    def test_custom_program_layout(self):
        result = run_example("custom_program_layout.py")
        assert result.returncode == 0, result.stderr
        assert "compiled Binary" in result.stdout

    def test_tpcb_database_demo(self):
        result = run_example("tpcb_database_demo.py")
        assert result.returncode == 0, result.stderr
        assert "balance conservation holds" in result.stdout
        assert "crash recovery" in result.stdout
