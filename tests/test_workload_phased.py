"""Tests for the phase-shifting (TPC-B -> DSS) workload."""

import pytest

from repro.db import Engine
from repro.errors import WorkloadError
from repro.workloads import (
    DssConfig,
    DssQuery,
    Phase,
    PhasedConfig,
    PhasedWorkload,
    TpcbConfig,
)
from repro.workloads.tpcb import TpcbTransaction


def small_config(shift_after=3):
    tpcb = TpcbConfig(branches=3, accounts_per_branch=80)
    return PhasedConfig(
        tpcb=tpcb,
        dss=DssConfig(tpcb=tpcb),
        phases=(Phase("tpcb", shift_after), Phase("dss", 0)),
    )


def loaded_engine(config):
    engine = Engine(pool_capacity=2048, btree_order=32)
    PhasedWorkload(config).load(engine)
    return engine


class TestPhaseValidation:
    def test_unknown_mix_rejected(self):
        with pytest.raises(WorkloadError, match="tpcb, dss"):
            Phase("olap", 5)

    def test_negative_transactions_rejected(self):
        with pytest.raises(WorkloadError, match="negative"):
            Phase("tpcb", -1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(WorkloadError, match="at least one phase"):
            PhasedConfig(phases=())

    def test_unbounded_non_final_phase_rejected(self):
        with pytest.raises(WorkloadError, match="final phase"):
            PhasedConfig(phases=(Phase("tpcb", 0), Phase("dss", 0)))

    def test_default_schedule_is_tpcb_then_dss(self):
        config = PhasedConfig()
        assert [p.mix for p in config.phases] == ["tpcb", "dss"]


class TestPhasedClient:
    def test_walks_the_schedule(self):
        config = small_config(shift_after=3)
        engine = loaded_engine(config)
        client = PhasedWorkload(config).client(pid=0)
        mixes = []
        for _ in range(5):
            mixes.append(client.phase.mix)
            txn = client.next_transaction(engine)
            while not txn.done:
                txn.run_step()
        assert mixes == ["tpcb"] * 3 + ["dss"] * 2

    def test_delegates_to_mix_clients(self):
        config = small_config(shift_after=1)
        engine = loaded_engine(config)
        client = PhasedWorkload(config).client(pid=0)
        first = client.next_transaction(engine)
        assert isinstance(first, TpcbTransaction)
        while not first.done:
            first.run_step()
        second = client.next_transaction(engine)
        assert isinstance(second, DssQuery)

    def test_final_phase_unbounded(self):
        config = small_config(shift_after=1)
        engine = loaded_engine(config)
        client = PhasedWorkload(config).client(pid=0)
        for _ in range(6):
            txn = client.next_transaction(engine)
            while not txn.done:
                txn.run_step()
        assert client.phase.mix == "dss"

    def test_three_phase_schedule(self):
        tpcb = TpcbConfig(branches=3, accounts_per_branch=80)
        config = PhasedConfig(
            tpcb=tpcb,
            dss=DssConfig(tpcb=tpcb),
            phases=(Phase("tpcb", 2), Phase("dss", 2), Phase("tpcb", 0)),
        )
        engine = loaded_engine(config)
        client = PhasedWorkload(config).client(pid=0)
        mixes = []
        for _ in range(6):
            mixes.append(client.phase.mix)
            txn = client.next_transaction(engine)
            while not txn.done:
                txn.run_step()
        assert mixes == ["tpcb", "tpcb", "dss", "dss", "tpcb", "tpcb"]

    def test_clients_have_independent_schedules(self):
        config = small_config(shift_after=2)
        engine = loaded_engine(config)
        workload = PhasedWorkload(config)
        ahead, behind = workload.client(pid=0), workload.client(pid=1)
        for _ in range(2):
            txn = ahead.next_transaction(engine)
            while not txn.done:
                txn.run_step()
        assert ahead.phase.mix == "dss"
        assert behind.phase.mix == "tpcb"


class TestPhasedWorkload:
    def test_default_config(self):
        workload = PhasedWorkload()
        assert workload.config.phases

    def test_load_populates_tpcb_tables(self):
        config = small_config()
        engine = loaded_engine(config)
        txn = engine.begin()
        rows = engine.scan_rows(txn, "branch", lambda r: True)
        engine.commit(txn)
        assert len(rows) == config.tpcb.branches
