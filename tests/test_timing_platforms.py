"""Additional timing-model coverage: the 21364-sim platform and the
composition of stall categories."""

import numpy as np
import pytest

from repro.timing import (
    ALPHA_21364_SIM,
    CycleBreakdown,
    estimate_cycles,
    relative_execution_time,
)


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestSimPlatform:
    def test_l2_hit_cheaper_than_memory(self):
        # Footprint fits L2 but not L1 -> misses cost l1 penalty only
        # after the first pass; a footprint exceeding L2 pays more.
        platform = ALPHA_21364_SIM
        small = [spans(*[(i * 64, 16) for i in range(2048)] * 4)]   # 128KB
        large = [spans(*[(i * 64, 16) for i in range(65536)])]      # 4MB, one pass
        small_b = estimate_cycles(small, platform)
        large_b = estimate_cycles(large, platform)
        small_cpi = small_b.total_cycles / small_b.instructions
        large_cpi = large_b.total_cycles / large_b.instructions
        assert large_cpi > small_cpi

    def test_breakdown_sums(self):
        streams = [spans((0, 200), (1 << 20, 50))]
        breakdown = estimate_cycles(streams, ALPHA_21364_SIM)
        assert breakdown.total_cycles == pytest.approx(
            breakdown.base_cycles + breakdown.icache_stall
            + breakdown.itlb_stall + breakdown.data_stall
        )

    def test_multi_cpu_streams_accumulate(self):
        one = estimate_cycles([spans((0, 500))], ALPHA_21364_SIM)
        two = estimate_cycles([spans((0, 500)), spans((0, 500))],
                              ALPHA_21364_SIM)
        assert two.instructions == 2 * one.instructions

    def test_relative_execution_ordering(self):
        # Same instruction volume; fast reuses 4 resident lines, slow
        # thrashes three lines aliasing one 2-way set.
        fast = estimate_cycles([spans(*([(0, 48)] * 100))], ALPHA_21364_SIM)
        slow_spans = [spans(*([(0, 16), (1 << 21, 16), (1 << 22, 16)] * 100))]
        slow = estimate_cycles(slow_spans, ALPHA_21364_SIM)
        assert fast.instructions == slow.instructions
        rel = relative_execution_time({"base": slow, "opt": fast})
        assert rel["opt"] < rel["base"] == 100.0
