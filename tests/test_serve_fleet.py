"""Fleet acceptance: healthy coalescing, degraded-mode survival."""

import math

import pytest

from repro.errors import ConfigError
from repro.harness.experiment import Experiment
from repro.online import phased_experiment_config
from repro.serve.fleet import FleetConfig, run_fleet


@pytest.fixture(scope="module")
def exp():
    experiment = Experiment(phased_experiment_config())
    _ = experiment.trace
    return experiment


@pytest.fixture(scope="module")
def healthy(exp):
    # No artifact store: the coalescing numbers must come from the
    # single-flight path, not a disk tier warmed by another test.
    return run_fleet(exp, FleetConfig(clients=4, epochs=2))


@pytest.fixture(scope="module")
def degraded(exp):
    return run_fleet(
        exp, FleetConfig(clients=3, epochs=3, kill_after=1)
    )


class TestConfigValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigError, match="client"):
            FleetConfig(clients=0)

    def test_rejects_kill_after_out_of_range(self):
        with pytest.raises(ConfigError, match="kill_after"):
            FleetConfig(epochs=3, kill_after=3)
        with pytest.raises(ConfigError, match="kill_after"):
            FleetConfig(epochs=3, kill_after=0)

    def test_kill_after_requires_owned_server(self, exp):
        with pytest.raises(ConfigError, match="driver-owned"):
            run_fleet(
                exp,
                FleetConfig(epochs=2, kill_after=1),
                address=("127.0.0.1", 1),
            )


class TestHealthyScenario:
    def test_passes_the_acceptance_gate(self, healthy):
        assert healthy.passes(), healthy.render()
        assert not healthy.unhandled_errors

    def test_every_request_served_and_gated(self, healthy):
        assert healthy.requests == 4 * 2
        for epoch in healthy.epochs:
            assert not epoch.degraded
            assert epoch.served == epoch.requests == 4
            assert epoch.failures == 0
            assert epoch.gate_ok
            assert epoch.instructions > 0
            assert math.isfinite(epoch.served_mpki)

    def test_coalescing_bounds_server_work(self, healthy):
        # Barrier-synchronized identical requests: one build per epoch,
        # everyone else coalesces (<= 8 optimizations is the ISSUE bar;
        # one per distinct profile is the expected value).
        assert 1 <= healthy.optimizations <= 8
        saved = healthy.coalesced + healthy.cache_hits
        assert saved >= healthy.requests - healthy.optimizations
        assert healthy.counters.get("serve.requests", 0) >= healthy.requests

    def test_served_layout_tracks_fresh_build(self, healthy):
        # The server optimizes the exact submitted profile, so the
        # served MPKI matches a fleet-side fresh build of the epoch.
        for epoch in healthy.epochs:
            assert epoch.decay == pytest.approx(1.0, rel=0.05)


class TestDegradedScenario:
    def test_passes_the_acceptance_gate(self, degraded):
        assert degraded.passes(), degraded.render()

    def test_no_unhandled_exceptions(self, degraded):
        assert degraded.unhandled_errors == []
        for epoch in degraded.epochs:
            assert epoch.failures == 0

    def test_post_kill_epochs_run_on_fallbacks(self, degraded):
        assert [e.degraded for e in degraded.epochs] == [False, True, True]
        for epoch in degraded.degraded_epochs:
            assert epoch.fallbacks == epoch.served == 3
            assert epoch.sources == {"fallback": 3}
            assert epoch.gate_ok

    def test_decay_is_reported_and_bounded(self, degraded):
        # Degraded epochs run drifted traffic on a stale layout: the
        # decay must be measured (>= 1) and bounded by the gate.
        assert degraded.decay_ratio >= 0.99
        assert degraded.decay_ratio <= 3.0
        for epoch in degraded.degraded_epochs:
            assert math.isfinite(epoch.decay)

    def test_report_serializes(self, degraded):
        payload = degraded.to_dict()
        assert payload["passes"] is True
        assert payload["fallbacks"] == 6
        assert len(payload["epochs"]) == 3
        assert payload["decay_ratio"] >= 1.0
        rendered = degraded.render()
        assert "degraded" in rendered
        assert "PASS" in rendered
