"""Property tests: expand_line_runs against a naive reference model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import expand_line_runs
from repro.ir import INSTRUCTION_BYTES


def reference_line_runs(starts, counts, line_bytes):
    """Word-at-a-time reference: one run per (span, line) pair."""
    words_per_line = line_bytes // INSTRUCTION_BYTES
    runs = []
    for span_idx, (start, count) in enumerate(zip(starts, counts)):
        if count <= 0:
            continue
        current_line = None
        for word_index in range(count):
            addr = start + word_index * INSTRUCTION_BYTES
            line = addr // line_bytes
            word = (addr // INSTRUCTION_BYTES) % words_per_line
            if line != current_line:
                runs.append([line, word, word, span_idx])
                current_line = line
            else:
                runs[-1][2] = word
    return runs


@st.composite
def span_streams(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    starts = draw(st.lists(
        st.integers(min_value=0, max_value=5000), min_size=n, max_size=n))
    counts = draw(st.lists(
        st.integers(min_value=0, max_value=70), min_size=n, max_size=n))
    line_bytes = draw(st.sampled_from([16, 32, 64, 128, 256]))
    return (
        np.array(starts, dtype=np.int64) * INSTRUCTION_BYTES,
        np.array(counts, dtype=np.int64),
        line_bytes,
    )


class TestExpandLineRunsReference:
    @settings(max_examples=120, deadline=None)
    @given(span_streams())
    def test_matches_reference(self, stream):
        starts, counts, line_bytes = stream
        lines, lo, hi, span = expand_line_runs(starts, counts, line_bytes)
        got = list(zip(lines.tolist(), lo.tolist(), hi.tolist(), span.tolist()))
        want = [tuple(r) for r in reference_line_runs(starts, counts, line_bytes)]
        assert got == want

    @settings(max_examples=60, deadline=None)
    @given(span_streams())
    def test_words_conserved(self, stream):
        """Total words across runs equals total instructions fetched."""
        starts, counts, line_bytes = stream
        _, lo, hi, _ = expand_line_runs(starts, counts, line_bytes)
        total_words = int((hi - lo + 1).sum()) if len(lo) else 0
        assert total_words == int(counts[counts > 0].sum())
