"""Tests for scenario specs: validation, identity, files, registry."""

import json
import sys

import pytest

from repro.errors import ScenarioError
from repro.scenarios.spec import (
    HierarchySpec,
    ScenarioSpec,
    WorkloadSpec,
    default_matrix,
    load_specs,
    register,
    registered,
    registry_names,
    select_specs,
)


def spec(**kwargs):
    kwargs.setdefault("name", "cell")
    return ScenarioSpec(**kwargs)


class TestValidation:
    def test_minimal_spec_valid(self):
        spec().validate()

    def test_bad_name(self):
        with pytest.raises(ScenarioError, match="name"):
            spec(name="no spaces allowed").validate()

    def test_unknown_workload_kind(self):
        with pytest.raises(ScenarioError, match="workload kind"):
            spec(workload=WorkloadSpec(kind="olap")).validate()

    def test_unknown_synthetic_mix(self):
        with pytest.raises(ScenarioError, match="mix"):
            spec(
                workload=WorkloadSpec(kind="synthetic", mix="zig")
            ).validate()

    def test_unknown_synthetic_op(self):
        with pytest.raises(ScenarioError, match="op"):
            spec(
                workload=WorkloadSpec(kind="synthetic", ops=("delete",))
            ).validate()

    def test_unknown_combo(self):
        with pytest.raises(ScenarioError, match="cell"):
            spec(combo="chain+sploot").validate()

    def test_unknown_drift(self):
        with pytest.raises(ScenarioError, match="drift"):
            spec(drift="wander").validate()

    def test_phased_plus_shift_rejected(self):
        with pytest.raises(ScenarioError, match="already a shift"):
            spec(workload=WorkloadSpec(kind="phased"), drift="shift").validate()

    def test_shift_after_must_be_positive(self):
        with pytest.raises(ScenarioError, match="shift_after"):
            spec(drift="shift", shift_after=0).validate()

    def test_batched_engine_rejects_associative_l1(self):
        with pytest.raises(ScenarioError, match="direct-mapped"):
            spec(hierarchy=HierarchySpec(assoc=2)).validate()

    def test_batched_engine_rejects_l2(self):
        with pytest.raises(ScenarioError, match="direct-mapped"):
            spec(hierarchy=HierarchySpec(l2_kb=512)).validate()

    def test_classic_engine_allows_associative_l2(self):
        spec(
            engine="classic",
            hierarchy=HierarchySpec(assoc=2, l2_kb=512),
        ).validate()

    def test_unknown_scope(self):
        with pytest.raises(ScenarioError, match="scope"):
            spec(scope="everything").validate()


class TestIdentity:
    def test_fingerprint_stable(self):
        assert spec().fingerprint() == spec().fingerprint()

    def test_name_excluded_from_fingerprint(self):
        assert spec(name="a").fingerprint() == spec(name="b").fingerprint()

    def test_axes_change_fingerprint(self):
        base = spec().fingerprint()
        assert spec(combo="chain").fingerprint() != base
        assert spec(hierarchy=HierarchySpec(l1i_kb=64)).fingerprint() != base
        assert spec(workload=WorkloadSpec(kind="dss")).fingerprint() != base

    def test_synth_knobs_only_fingerprint_synthetic_cells(self):
        # hot_probability is a synthetic knob; for tpcb it is inert.
        a = spec(workload=WorkloadSpec(kind="tpcb", hot_probability=0.5))
        b = spec(workload=WorkloadSpec(kind="tpcb", hot_probability=0.9))
        assert a.fingerprint() == b.fingerprint()
        c = spec(workload=WorkloadSpec(kind="synthetic", hot_probability=0.5))
        d = spec(workload=WorkloadSpec(kind="synthetic", hot_probability=0.9))
        assert c.fingerprint() != d.fingerprint()

    def test_plain_tpcb_shares_the_figure_cache(self):
        from repro.harness.experiment import quick_experiment

        assert spec().cache_salt() == ""
        assert (
            spec().experiment_config().fingerprint()
            == quick_experiment().config.fingerprint()
        )

    def test_other_workloads_salt_the_cache(self):
        dss = spec(workload=WorkloadSpec(kind="dss"))
        assert dss.cache_salt().startswith("scn-dss-")
        assert (
            dss.experiment_config().fingerprint()
            != spec().experiment_config().fingerprint()
        )

    def test_roundtrip_through_dict(self):
        original = spec(
            workload=WorkloadSpec(kind="synthetic", ops=("read", "scan")),
            drift="shift",
            shift_after=2,
        )
        rebuilt = ScenarioSpec.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.fingerprint() == original.fingerprint()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ScenarioError, match="colour"):
            ScenarioSpec.from_dict({"name": "x", "colour": "red"})
        with pytest.raises(ScenarioError, match="sockets"):
            ScenarioSpec.from_dict(
                {"name": "x", "hierarchy": {"sockets": 2}}
            )


class TestMatrixFiles:
    def test_load_json(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps({
            "scenario": [
                {"name": "a"},
                {"name": "b", "workload": {"kind": "dss"}},
            ]
        }))
        specs = load_specs(path)
        assert [s.name for s in specs] == ["a", "b"]
        assert specs[1].workload.kind == "dss"

    def test_load_toml(self, tmp_path):
        path = tmp_path / "matrix.toml"
        path.write_text(
            '[[scenario]]\nname = "a"\n\n'
            '[[scenario]]\nname = "b"\nengine = "classic"\n'
            "[scenario.hierarchy]\nl1i_kb = 64\nassoc = 2\n"
        )
        if sys.version_info < (3, 11):
            try:
                import tomli  # noqa: F401
            except ImportError:
                with pytest.raises(ScenarioError, match="TOML"):
                    load_specs(path)
                return
        specs = load_specs(path)
        assert specs[1].hierarchy.l1i_kb == 64

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps({"scenario": [{"name": "a"}] * 2}))
        with pytest.raises(ScenarioError, match="duplicate"):
            load_specs(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text("{}")
        with pytest.raises(ScenarioError, match="no scenarios"):
            load_specs(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "matrix.yaml"
        path.write_text("scenario: []")
        with pytest.raises(ScenarioError, match=".toml or .json"):
            load_specs(path)


class TestSelection:
    def test_glob_selection(self):
        specs = default_matrix()
        chosen = select_specs(specs, ["tpcb-*"])
        assert chosen
        assert all(s.name.startswith("tpcb-") for s in chosen)

    def test_no_patterns_selects_all(self):
        specs = default_matrix()
        assert select_specs(specs, []) == specs

    def test_unmatched_pattern_is_an_error(self):
        with pytest.raises(ScenarioError, match="matched no scenario"):
            select_specs(default_matrix(), ["nope-*"])

    def test_selection_deduplicates(self):
        specs = default_matrix()
        chosen = select_specs(specs, ["tpcb-i32", "tpcb-*"])
        assert len(chosen) == len({s.name for s in chosen})


class TestRegistry:
    def test_default_matrix_preregistered(self):
        names = registry_names()
        assert "tpcb-i32" in names
        assert registered("tpcb-i32").workload.kind == "tpcb"

    def test_unknown_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            registered("never-heard-of-it")

    def test_register_rejects_collisions_without_overwrite(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register(registered("tpcb-i32"))
        register(registered("tpcb-i32"), overwrite=True)

    def test_default_matrix_covers_the_axes(self):
        specs = default_matrix()
        assert len(specs) >= 8
        kinds = {s.workload.kind for s in specs}
        assert {"tpcb", "dss", "synthetic"} <= kinds
        assert {s.engine for s in specs} == {"batched", "classic"}
        assert any(s.drift == "shift" for s in specs)
        assert len({s.name for s in specs}) == len(specs)


class TestProfileSourceAxis:
    def test_default_is_measured(self):
        assert spec().profile_source == "measured"

    def test_unknown_source_rejected(self):
        with pytest.raises(ScenarioError, match="profile source"):
            spec(profile_source="psychic").validate()

    def test_measured_keeps_the_pre_axis_fingerprint(self):
        """The axis addition must not invalidate cached measured cells:
        ``profile_source`` only contributes to the canonical payload
        when it departs from the default."""
        assert "profile_source" not in spec().canonical()
        assert (
            spec(profile_source="measured").fingerprint()
            == spec().fingerprint()
        )

    def test_static_and_hybrid_fingerprint_differently(self):
        prints = {
            spec(profile_source=source).fingerprint()
            for source in ("measured", "static", "hybrid")
        }
        assert len(prints) == 3

    def test_round_trips_through_dict(self):
        cell = spec(profile_source="hybrid").validate()
        assert ScenarioSpec.from_dict(cell.to_dict()) == cell
