"""Unit tests for the Table container and figure helpers that need no
experiment (synthetic inputs)."""

import pytest

from repro.harness.figures import SWEEP_LINES, SWEEP_SIZES, Table, fig04_table, fig05_relative


def synthetic_grid(factor=1.0):
    grid = {}
    for i, size in enumerate(SWEEP_SIZES):
        for j, line in enumerate(SWEEP_LINES):
            grid[(size, line)] = int((1000 - 100 * i - 10 * j) * factor)
    return grid


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("T", ["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.render().splitlines()
        assert lines[0] == "T"
        assert lines[2].endswith("bbbb")
        assert len(lines[3]) == len(lines[2])

    def test_render_notes(self):
        table = Table("T", ["x"], [[1]], notes=["hello"])
        assert "note: hello" in table.render()

    def test_render_empty_rows(self):
        table = Table("T", ["x", "y"], [])
        assert "T" in table.render()

    def test_render_floats_formatted(self):
        table = Table("T", ["x"], [[1.23456]])
        assert "1.23" in table.render()

    def test_render_chart_bars_scale(self):
        table = Table("T", ["name", "v"], [["a", 10], ["b", 5], ["c", 0]])
        chart = table.render_chart()
        lines = chart.splitlines()
        bar_a = next(l for l in lines if l.strip().startswith("a"))
        bar_b = next(l for l in lines if l.strip().startswith("b"))
        assert bar_a.count("#") == 2 * bar_b.count("#")

    def test_render_chart_skips_non_numeric(self):
        table = Table("T", ["name", "v"], [["a", 10], ["b", "-"]])
        chart = table.render_chart()
        assert "b" not in chart.split("\n\n")[-1].split()[0]


class TestSweepTables:
    def test_fig04_table_layout(self):
        table = fig04_table(synthetic_grid(), "base")
        assert len(table.rows) == len(SWEEP_SIZES)
        assert table.columns[0] == "size_KB"
        assert table.rows[0][0] == 32

    def test_fig05_relative_percentages(self):
        base = synthetic_grid(1.0)
        opt = synthetic_grid(0.5)
        table = fig05_relative(base, opt)
        for row in table.rows:
            for value in row[1:]:
                assert value == pytest.approx(50.0, abs=0.2)

    def test_fig05_handles_zero_base(self):
        base = {key: 0 for key in synthetic_grid()}
        opt = synthetic_grid(1.0)
        table = fig05_relative(base, opt)  # must not divide by zero
        assert table.rows
