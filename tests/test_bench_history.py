"""write_benchmark_json: schema v2 provenance, metrics embedding, and
the append-only history trail that survives overwrites."""

import json

import pytest

from repro import obs
from repro.harness import read_history, run_id, write_benchmark_json
from repro.harness.figures import Table
from repro.harness.results import RESULTS_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def table(misses):
    return Table(
        title="Synthetic",
        columns=["size_KB", "misses"],
        rows=[[32, misses]],
    )


class TestDocumentShape:
    def test_schema_and_run_section(self, tmp_path):
        path = write_benchmark_json("t", table(100), tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == RESULTS_SCHEMA_VERSION
        assert doc["run"]["id"] == run_id()
        assert "timestamp" in doc["run"] and "unix_time" in doc["run"]

    def test_metrics_embedded_when_recorded(self, tmp_path):
        obs.counter("icache.misses").inc(7)
        doc = json.loads(
            write_benchmark_json("t", table(100), tmp_path).read_text()
        )
        assert doc["metrics"]["icache.misses"]["value"] == 7

    def test_metrics_omitted_when_empty(self, tmp_path):
        doc = json.loads(
            write_benchmark_json("t", table(100), tmp_path).read_text()
        )
        assert "metrics" not in doc

    def test_run_id_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_ID", "ci-12345")
        doc = json.loads(
            write_benchmark_json("t", table(100), tmp_path).read_text()
        )
        assert doc["run"]["id"] == "ci-12345"


class TestHistory:
    def test_overwrite_appends_history(self, tmp_path):
        write_benchmark_json("t", table(100), tmp_path)
        write_benchmark_json("t", table(90), tmp_path)

        # The latest document wins in place...
        latest = json.loads((tmp_path / "BENCH_t.json").read_text())
        assert latest["rows"] == [[32, 90]]

        # ...but both runs survive in the history trail, oldest first.
        runs = read_history("t", tmp_path)
        assert [r["rows"][0][1] for r in runs] == [100, 90]
        assert all(r["run"]["id"] for r in runs)

    def test_history_opt_out(self, tmp_path):
        write_benchmark_json("t", table(100), tmp_path, history=False)
        assert not (tmp_path / "BENCH_t.history.jsonl").exists()
        assert read_history("t", tmp_path) == []

    def test_corrupt_history_line_raises(self, tmp_path):
        write_benchmark_json("t", table(100), tmp_path)
        history = tmp_path / "BENCH_t.history.jsonl"
        history.write_text(history.read_text() + "not json\n")
        with pytest.raises(ValueError, match="corrupt history"):
            read_history("t", tmp_path)

    def test_dict_payload_supported(self, tmp_path):
        payload = {"title": "x", "columns": ["a"], "rows": [[1]]}
        write_benchmark_json("d", payload, tmp_path, extra={"tag": "v"})
        (run,) = read_history("d", tmp_path)
        assert run["tag"] == "v"
        assert run["name"] == "d"
