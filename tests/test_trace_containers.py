"""Tests for SystemTrace / CpuTrace containers and locality stats."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.cache.stats import LocalityStats
from repro.execution.trace import CpuTrace, SystemTrace


def make_trace():
    cpu0 = CpuTrace(
        blocks=np.array([0, 1, 10, 2], dtype=np.int64),
        pids=np.array([0, 0, 0, 1], dtype=np.int16),
    )
    cpu1 = CpuTrace(
        blocks=np.array([3, 11], dtype=np.int64),
        pids=np.array([2, 2], dtype=np.int16),
    )
    return SystemTrace(
        cpus=[cpu0, cpu1],
        data_addresses=[np.zeros(0, np.int64), np.zeros(0, np.int64)],
        data_positions=[np.zeros(0, np.int64), np.zeros(0, np.int64)],
        kernel_offset=10,
        transactions=2,
    )


class TestTraceContainers:
    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            CpuTrace(blocks=np.array([1, 2]), pids=np.array([0], dtype=np.int16))

    def test_app_block_stream_filters_kernel(self):
        trace = make_trace()
        assert trace.app_block_stream(0).tolist() == [0, 1, 2]
        assert trace.app_block_stream(1).tolist() == [3]

    def test_per_process_streams_grouped(self):
        trace = make_trace()
        streams = trace.per_process_app_streams()
        as_lists = sorted(s.tolist() for s in streams)
        assert as_lists == [[0, 1], [2], [3]]

    def test_num_blocks(self):
        trace = make_trace()
        assert trace.cpus[0].num_blocks == 4


class TestLocalityStats:
    def test_record_replacement_accumulates(self):
        stats = LocalityStats(words_per_line=8)
        stats.record_replacement(np.array([2, 1, 0, 0, 0, 0, 0, 3]), lifetime=100)
        assert stats.lines_loaded == 1
        assert stats.words_loaded == 8
        assert stats.words_used == 3
        assert stats.unique_words[3] == 1

    def test_reuse_capped(self):
        stats = LocalityStats(words_per_line=4, reuse_cap=15)
        stats.record_replacement(np.array([100, 1, 0, 0]), lifetime=1)
        assert stats.word_reuse[15] == 1  # capped bucket
        assert stats.word_reuse[1] == 1
        assert stats.word_reuse[0] == 2

    def test_lifetime_log2_bucket(self):
        stats = LocalityStats(words_per_line=4)
        stats.record_replacement(np.array([1, 0, 0, 0]), lifetime=1024)
        assert stats.lifetimes[10] == 1

    def test_unused_fraction(self):
        stats = LocalityStats(words_per_line=4)
        stats.record_replacement(np.array([1, 1, 0, 0]), lifetime=1)
        assert stats.unused_fraction == pytest.approx(0.5)

    def test_fraction_helpers_normalize(self):
        stats = LocalityStats(words_per_line=4)
        stats.record_replacement(np.array([1, 0, 0, 0]), lifetime=2)
        stats.record_replacement(np.array([1, 1, 1, 1]), lifetime=2)
        assert stats.unique_words_fractions().sum() == pytest.approx(1.0)
        assert stats.lifetime_fractions().sum() == pytest.approx(1.0)
        assert stats.word_reuse_fractions().sum() == pytest.approx(1.0)

    def test_empty_stats_safe(self):
        stats = LocalityStats(words_per_line=4)
        assert stats.unused_fraction == 0.0
        assert stats.unique_words_fractions().sum() == 0.0
