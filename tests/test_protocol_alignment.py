"""Engine <-> routine-library protocol alignment under stress.

The CFG interpreter is *strict*: every traced engine operation must
walk its routine spec consuming exactly the children the engine
emitted.  These tests force the awkward paths -- buffer misses with
dirty write-back, lock waits, retries, statement-cache misses, aborts,
page rollovers, B+tree splits -- and require clean expansion.
"""

import numpy as np
import pytest

from repro.db import CallTrace, Engine, LockWait, int_col, pad_col
from repro.execution import CfgWalker
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, build_app_program
from repro.workloads import SCHEMA, KEY_COLUMNS


@pytest.fixture(scope="module")
def walker():
    app = build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000)
    )
    kernel = build_kernel_program(
        KernelCodeConfig(scale=0.5, filler_routines=4, filler_instructions=800)
    )
    return CfgWalker(app, kernel)


def make_engine(trace, pool_capacity=512, btree_order=8):
    engine = Engine(pool_capacity=pool_capacity, btree_order=btree_order,
                    trace=trace)
    for name, columns in SCHEMA.items():
        engine.create_table(name, columns, KEY_COLUMNS[name],
                            indexed=(name != "history"))
    return engine


def expand_all(walker, trace):
    out = []
    for event in trace.take():
        walker.walk_event(event, out)
    return np.asarray(out, dtype=np.int64)


class TestProtocolAlignment:
    def test_plain_transaction(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        for i in range(30):
            engine.load_row("account", {"account_id": i, "branch_id": 0,
                                        "balance": 0})
        trace.take()
        txn = engine.begin()
        engine.update_row(txn, "account", 5, deltas={"balance": 7})
        engine.commit(txn)
        blocks = expand_all(walker, trace)
        assert len(blocks) > 50

    def test_tiny_pool_forces_reads_and_writebacks(self, walker):
        trace = CallTrace()
        engine = make_engine(trace, pool_capacity=4)
        for i in range(400):
            engine.load_row("account", {"account_id": i, "branch_id": 0,
                                        "balance": 0})
        engine.checkpoint()
        trace.take()
        for key in (0, 399, 7, 250, 3):
            txn = engine.begin()
            engine.update_row(txn, "account", key, deltas={"balance": 1})
            engine.commit(txn)
        blocks = expand_all(walker, trace)
        kernel_blocks = blocks[blocks >= walker.kernel_offset]
        # Misses and dirty write-backs must have produced k.read/k.write.
        assert len(kernel_blocks) > 0

    def test_btree_splits_during_traced_inserts(self, walker):
        trace = CallTrace()
        engine = make_engine(trace, btree_order=4)
        trace.take()
        txn = engine.begin()
        for i in range(60):
            engine.insert_row(txn, "account",
                              {"account_id": i, "branch_id": 0, "balance": 0})
        engine.commit(txn)
        expand_all(walker, trace)  # CallSeq must absorb splits

    def test_history_insert_without_index(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        trace.take()
        txn = engine.begin()
        engine.insert_row(txn, "history", {
            "account_id": 1, "teller_id": 1, "branch_id": 0,
            "delta": 5, "timestamp": 1,
        })
        engine.commit(txn)
        blocks = expand_all(walker, trace)
        assert len(blocks) > 0

    def test_heap_page_rollover(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        trace.take()
        txn = engine.begin()
        # History rows are ~58 bytes; ~140 fit a page -> force rollover.
        for i in range(300):
            engine.insert_row(txn, "history", {
                "account_id": i, "teller_id": 0, "branch_id": 0,
                "delta": 1, "timestamp": i,
            })
        engine.commit(txn)
        expand_all(walker, trace)

    def test_lock_wait_and_retry(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        engine.load_row("account", {"account_id": 1, "branch_id": 0,
                                    "balance": 0})
        trace.take()
        txn1 = engine.begin()
        engine.update_row(txn1, "account", 1, deltas={"balance": 1})
        txn2 = engine.begin()
        with pytest.raises(LockWait):
            engine.update_row(txn2, "account", 1, deltas={"balance": 2})
        engine.commit(txn1)
        engine.update_row(txn2, "account", 1, deltas={"balance": 2})
        engine.commit(txn2)
        blocks = expand_all(walker, trace)
        # The k.yield path executed exactly once (one parked request).
        kyield = walker.kernel.spec("k.yield")
        assert (blocks == kyield.prologue_bid + walker.kernel_offset).sum() == 1

    def test_missing_key_truncates_cleanly(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        engine.load_row("account", {"account_id": 1, "branch_id": 0,
                                    "balance": 0})
        trace.take()
        txn = engine.begin()
        from repro.errors import KeyNotFoundError

        with pytest.raises(KeyNotFoundError):
            engine.update_row(txn, "account", 999, deltas={"balance": 1})
        engine.abort(txn)
        expand_all(walker, trace)

    def test_abort_with_undo_work(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        for i in range(10):
            engine.load_row("account", {"account_id": i, "branch_id": 0,
                                        "balance": 0})
        trace.take()
        txn = engine.begin()
        engine.update_row(txn, "account", 1, deltas={"balance": 5})
        engine.insert_row(txn, "account", {"account_id": 100, "branch_id": 0,
                                           "balance": 0})
        engine.abort(txn)
        blocks = expand_all(walker, trace)
        abort_spec = walker.app.spec("txn_abort")
        assert abort_spec.prologue_bid in blocks.tolist()

    def test_statement_cache_miss_then_hit(self, walker):
        trace = CallTrace()
        engine = make_engine(trace)
        engine.load_row("teller", {"teller_id": 1, "branch_id": 0, "balance": 0})
        trace.take()
        for _ in range(3):
            txn = engine.begin()
            engine.get_row(txn, "teller", 1)
            engine.commit(txn)
        blocks = expand_all(walker, trace)
        parse = walker.app.spec("sql_parse")
        assert (blocks == parse.prologue_bid).sum() == 1  # parsed once

    def test_group_commit_skips_flush(self, walker):
        """A commit covered by an earlier flush emits no wal_flush."""
        trace = CallTrace()
        engine = make_engine(trace)
        engine.load_row("teller", {"teller_id": 1, "branch_id": 0, "balance": 0})
        trace.take()
        txn = engine.begin()  # read-only: nothing to flush beyond BEGIN
        engine.get_row(txn, "teller", 1)
        engine.commit(txn)
        txn2 = engine.begin()
        engine.get_row(txn2, "teller", 1)
        # Flush the log behind txn2's back, then commit: COMMIT record
        # itself still needs a flush, so this checks the flushed binding
        # is computed per commit.
        engine.commit(txn2)
        expand_all(walker, trace)
