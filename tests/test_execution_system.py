"""Integration tests for the multiprocessor system and trace machinery."""

import numpy as np
import pytest

from repro.execution import (
    CombinedAddressMap,
    OltpSystem,
    SystemConfig,
)
from repro.ir import assign_addresses, baseline_layout
from repro.osmodel import KERNEL_BASE, KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, build_app_program
from repro.workloads import TpcbConfig


@pytest.fixture(scope="module")
def programs():
    app = build_app_program(
        AppCodeConfig(scale=1.0, filler_routines=40, filler_instructions=20_000)
    )
    kernel = build_kernel_program(
        KernelCodeConfig(scale=1.0, filler_routines=10, filler_instructions=4_000)
    )
    return app, kernel


@pytest.fixture(scope="module")
def system_trace(programs):
    app, kernel = programs
    system = OltpSystem(
        app,
        kernel,
        tpcb_config=TpcbConfig(branches=4, accounts_per_branch=50),
        system_config=SystemConfig(cpus=2, processes_per_cpu=4),
        pool_capacity=512,
    )
    trace = system.run(transactions=40, warmup=5)
    return system, trace


class TestSystemRun:
    def test_transaction_quota_met(self, system_trace):
        _, trace = system_trace
        assert trace.transactions == 40

    def test_all_cpus_active(self, system_trace):
        _, trace = system_trace
        assert len(trace.cpus) == 2
        for cpu in trace.cpus:
            assert cpu.num_blocks > 0

    def test_kernel_blocks_present(self, system_trace):
        _, trace = system_trace
        for cpu in trace.cpus:
            assert (cpu.blocks >= trace.kernel_offset).any()
            assert (cpu.blocks < trace.kernel_offset).any()

    def test_pids_match_affinity(self, system_trace):
        system, trace = system_trace
        per_cpu = system.config.processes_per_cpu
        for cpu_index, cpu in enumerate(trace.cpus):
            pids = np.unique(cpu.pids)
            for pid in pids:
                assert pid // per_cpu == cpu_index

    def test_balance_conservation_under_concurrency(self, system_trace):
        system, _ = system_trace
        engine = system.engine
        txn = engine.begin()
        branches = system.tpcb_config.branches
        branch_total = sum(
            engine.get_row(txn, "branch", b)["balance"] for b in range(branches)
        )
        teller_total = sum(
            engine.get_row(txn, "teller", t)["balance"]
            for t in range(system.tpcb_config.tellers)
        )
        engine.commit(txn)
        assert branch_total == teller_total
        # History records match committed transactions (some in-flight
        # transactions may still hold uncommitted inserts).
        assert engine.txns.committed >= 45  # 40 measured + 5 warmup

    def test_per_process_app_streams_cover_app_blocks(self, system_trace):
        _, trace = system_trace
        total = sum(len(s) for s in trace.per_process_app_streams())
        app_blocks = sum(
            int((cpu.blocks < trace.kernel_offset).sum()) for cpu in trace.cpus
        )
        assert total == app_blocks

    def test_warmup_discarded(self, programs):
        app, kernel = programs
        system = OltpSystem(
            app,
            kernel,
            tpcb_config=TpcbConfig(branches=2, accounts_per_branch=40),
            system_config=SystemConfig(cpus=1, processes_per_cpu=2),
        )
        trace = system.run(transactions=5, warmup=3)
        assert trace.transactions == 5

    def test_data_accesses_recorded(self, system_trace):
        _, trace = system_trace
        assert sum(len(d) for d in trace.data_addresses) > 0
        for addrs, positions in zip(trace.data_addresses, trace.data_positions):
            assert len(addrs) == len(positions)
            assert (np.diff(positions) >= 0).all()


class TestCombinedAddressMap:
    def test_kernel_offset_applied(self, programs):
        app, kernel = programs
        amap = CombinedAddressMap(
            assign_addresses(app.binary, baseline_layout(app.binary)),
            assign_addresses(kernel.binary, baseline_layout(kernel.binary)),
        )
        kernel_addrs = amap.addr[amap.kernel_offset :]
        assert (kernel_addrs >= KERNEL_BASE).all()
        assert (amap.addr[: amap.kernel_offset] < KERNEL_BASE).all()

    def test_fetch_counts_match_block_replay(self, programs, system_trace):
        app, kernel = programs
        _, trace = system_trace
        amap = CombinedAddressMap(
            assign_addresses(app.binary, baseline_layout(app.binary)),
            assign_addresses(kernel.binary, baseline_layout(kernel.binary)),
        )
        blocks = trace.cpus[0].blocks[:500]
        counts = amap.fetch_counts(blocks)
        assert len(counts) == len(blocks)
        assert (counts >= 0).all()

    def test_block_sequence_is_layout_invariant(self, programs, system_trace):
        """The executed blocks never change; only addresses do."""
        app, kernel = programs
        _, trace = system_trace
        from repro.profiles import PixieProfiler
        from repro.layout import SpikeOptimizer

        profiler = PixieProfiler(app.binary)
        for stream in trace.per_process_app_streams():
            profiler.add_stream(stream)
        optimizer = SpikeOptimizer(app.binary, profiler.profile())
        base_map = assign_addresses(app.binary, optimizer.layout("base"))
        opt_map = assign_addresses(app.binary, optimizer.layout("all"))
        # Same blocks, different addresses.
        blocks = trace.app_block_stream(0)[:1000]
        assert not np.array_equal(base_map.addr[blocks], opt_map.addr[blocks])

    def test_sequential_breaks_detects_jumps(self, programs):
        app, kernel = programs
        amap = CombinedAddressMap(
            assign_addresses(app.binary, baseline_layout(app.binary)),
            assign_addresses(kernel.binary, baseline_layout(kernel.binary)),
        )
        blocks = np.array([0, 1], dtype=np.int64)
        breaks = amap.sequential_breaks(blocks)
        assert breaks.shape == (1,)
