"""Tests for the timing model."""

import numpy as np
import pytest

from repro.timing import (
    ALPHA_21164,
    ALPHA_21264,
    ALPHA_21364_SIM,
    PLATFORMS,
    estimate_cycles,
    relative_execution_time,
)


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestPlatforms:
    def test_paper_parameters(self):
        assert ALPHA_21164.icache.size_bytes == 8 * 1024
        assert ALPHA_21164.icache.assoc == 1
        assert ALPHA_21164.itlb_entries == 48
        assert ALPHA_21264.icache.size_bytes == 64 * 1024
        assert ALPHA_21264.icache.assoc == 2
        assert ALPHA_21364_SIM.l2.size_bytes == 1536 * 1024
        assert ALPHA_21364_SIM.l2.assoc == 6
        assert len(PLATFORMS) == 3


class TestEstimateCycles:
    def test_instruction_count(self):
        streams = [spans((0, 100))]
        breakdown = estimate_cycles(streams, ALPHA_21164)
        assert breakdown.instructions == 100
        assert breakdown.base_cycles == pytest.approx(140.0)

    def test_miss_stalls_accumulate(self):
        # Thrash two conflicting lines in the 8KB direct-mapped cache.
        stride = 8 * 1024
        pairs = [(0, 8), (stride, 8)] * 50
        streams = [spans(*pairs)]
        breakdown = estimate_cycles(streams, ALPHA_21164)
        assert breakdown.icache_misses == 100
        assert breakdown.icache_stall > 0

    def test_fewer_misses_fewer_cycles(self):
        thrash = [spans(*([(0, 8), (8 * 1024, 8)] * 50))]
        friendly = [spans(*([(0, 8), (64, 8)] * 50))]
        bad = estimate_cycles(thrash, ALPHA_21164)
        good = estimate_cycles(friendly, ALPHA_21164)
        assert good.total_cycles < bad.total_cycles
        assert good.instructions == bad.instructions

    def test_data_streams_add_stall(self):
        streams = [spans((0, 100))]
        data = [(np.arange(50, dtype=np.int64) * 8192 + (1 << 30),
                 np.arange(50, dtype=np.int64))]
        without = estimate_cycles(streams, ALPHA_21164)
        with_data = estimate_cycles(streams, ALPHA_21164, data)
        assert with_data.data_stall > 0
        assert without.data_stall == 0

    def test_itlb_stall(self):
        pages = [(p * 8192, 4) for p in range(200)]
        streams = [spans(*pages)]
        breakdown = estimate_cycles(streams, ALPHA_21164)
        assert breakdown.itlb_misses >= 200 - ALPHA_21164.itlb_entries

    def test_relative_execution_time(self):
        streams = [spans((0, 1000))]
        b = estimate_cycles(streams, ALPHA_21164)
        rel = relative_execution_time({"base": b, "opt": b})
        assert rel == {"base": 100.0, "opt": 100.0}
