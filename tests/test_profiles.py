"""Tests for the Pixie and DCPI profilers."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.ir import Binary, Procedure, Terminator
from repro.profiles import DcpiProfiler, LbrSampler, PixieProfiler, Profile


def two_block_binary():
    binary = Binary()
    proc = Procedure("p")
    proc.add_block("a", 10, Terminator.COND_BRANCH, succs=("a", "b"))
    proc.add_block("b", 2, Terminator.RETURN)
    binary.add_procedure(proc)
    binary.seal()
    return binary


class TestPixie:
    def test_block_counts(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 0, 0, 1])
        profile = profiler.profile()
        assert profile.block_counts.tolist() == [3, 1]

    def test_edge_counts(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 0, 1])
        profile = profiler.profile()
        assert profile.edge_counts[(0, 0)] == 1
        assert profile.edge_counts[(0, 1)] == 1

    def test_multiple_streams_do_not_cross_edges(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0])
        profiler.add_stream([1])
        profile = profiler.profile()
        assert (0, 1) not in profile.edge_counts

    def test_empty_stream(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([])
        assert profiler.profile().total_blocks_executed == 0

    def test_total_instructions(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 1])
        assert profiler.profile().total_instructions == 12


class TestProfileContainer:
    def test_merge(self):
        binary = two_block_binary()
        p1 = PixieProfiler(binary)
        p1.add_stream([0, 1])
        p2 = PixieProfiler(binary)
        p2.add_stream([0, 0])
        merged = p1.profile().merge(p2.profile())
        assert merged.block_counts.tolist() == [3, 1]
        assert merged.edge_counts[(0, 0)] == 1

    def test_merge_different_binaries_rejected(self):
        p1 = Profile(two_block_binary())
        p2 = Profile(two_block_binary())
        with pytest.raises(ProfileError):
            p1.merge(p2)

    def test_hot_blocks(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 0, 1])
        profile = profiler.profile()
        assert profile.hot_blocks(threshold=2) == [0]

    def test_proc_counts(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 1])
        assert profiler.profile().proc_counts() == {"p": 1}

    def test_validate_catches_impossible_edges(self):
        binary = two_block_binary()
        profile = Profile(binary)
        profile.block_counts[0] = 1
        profile.edge_counts[(0, 1)] = 5
        with pytest.raises(ProfileError):
            profile.validate()

    def test_validate_passes_consistent(self):
        binary = two_block_binary()
        profiler = PixieProfiler(binary)
        profiler.add_stream([0, 0, 0, 1])
        profiler.profile().validate()


class TestDcpi:
    def test_sampling_estimates_counts(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=7)
        # Block 0 executes 1000x (10 instrs), block 1 executes 100x.
        stream = ([0] * 10 + [1]) * 100
        profiler.add_stream(stream)
        profile = profiler.profile()
        # Estimates within 25% of the truth for the hot block.
        assert abs(profile.block_counts[0] - 1000) / 1000 < 0.25

    def test_samples_proportional_to_size_times_count(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=3)
        profiler.add_stream([0, 1] * 200)
        # Block 0 has 10/12 of the instructions.
        hits = profiler._sample_hits
        assert hits[0] > hits[1]

    def test_no_edges_from_sampling(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=4)
        profiler.add_stream([0, 0, 1])
        assert profiler.profile().edge_counts == {}

    def test_period_validated(self):
        with pytest.raises(ValueError):
            DcpiProfiler(two_block_binary(), period=0)

    def test_phase_carries_across_streams(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=1000)
        for _ in range(50):
            profiler.add_stream([0, 0, 1])  # 22 instrs per stream
        assert profiler.samples_taken == (22 * 50) // 1000

    def test_empty_stream_is_a_no_op(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=4)
        profiler.add_stream([])
        profiler.add_stream(np.zeros(0, dtype=np.int64))
        assert profiler.samples_taken == 0
        assert profiler.phase == 0
        assert profiler.profile().total_blocks_executed == 0

    def test_stream_shorter_than_period(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=1000)
        profiler.add_stream([0, 1])  # 12 instructions, no sample yet
        assert profiler.samples_taken == 0
        assert profiler.phase == 12
        assert profiler.profile().total_blocks_executed == 0

    def test_chunking_invariance(self):
        # Splitting one stream into arbitrary chunks must hit the same
        # instructions as feeding it whole: the phase carries exactly.
        binary = two_block_binary()
        stream = ([0] * 3 + [1]) * 40
        whole = DcpiProfiler(binary, period=7)
        whole.add_stream(stream)
        chunked = DcpiProfiler(binary, period=7)
        for start in range(0, len(stream), 11):
            chunked.add_stream(stream[start:start + 11])
        assert chunked.samples_taken == whole.samples_taken
        assert np.array_equal(chunked._sample_hits, whole._sample_hits)

    def test_take_epoch_resets_hits_but_carries_phase(self):
        binary = two_block_binary()
        profiler = DcpiProfiler(binary, period=7)
        profiler.add_stream([0, 0, 1])  # 22 instrs: 3 samples, phase 1
        first = profiler.take_epoch()
        assert first.total_blocks_executed > 0
        assert profiler.samples_taken == 0
        assert profiler.phase == 22 % 7
        # Epoch boundaries are invisible to the sample positions: the
        # two epochs together take exactly the samples one continuous
        # run would, and the merged estimate matches up to the one
        # rounding step each epoch performs independently.
        profiler.add_stream([0, 0, 1])
        second = profiler.take_epoch()
        reference = DcpiProfiler(binary, period=7)
        reference.add_stream([0, 0, 1] * 2)
        assert first.total_blocks_executed + second.total_blocks_executed > 0
        merged = first.merge(second)
        assert np.abs(
            merged.block_counts - reference.profile().block_counts
        ).max() <= 1


class TestLbrSampler:
    def test_bursts_recover_edge_structure(self):
        binary = two_block_binary()
        sampler = LbrSampler(binary, period=4, burst_width=4)
        sampler.add_stream([0, 0, 0, 1] * 50)
        profile = sampler.profile()
        assert profile.edge_counts  # sampling alone would have none
        assert set(profile.edge_counts) <= {(0, 0), (0, 1), (1, 0)}
        # The self-loop dominates, as in the trace.
        assert profile.edge_counts[(0, 0)] > profile.edge_counts[(0, 1)]

    def test_edge_counts_scaled_by_sampling_ratio(self):
        binary = two_block_binary()
        sampler = LbrSampler(binary, period=64, burst_width=16)
        sampler.add_stream([0, 0, 1] * 100)
        scale = 64 // 16
        for count in sampler.profile().edge_counts.values():
            assert count % scale == 0

    def test_bursts_do_not_cross_stream_boundaries(self):
        # Streams model context switches; the LBR flushes between them.
        binary = two_block_binary()
        sampler = LbrSampler(binary, period=2, burst_width=8)
        sampler.add_stream([0])
        sampler.add_stream([1, 1, 1])
        assert (0, 1) not in sampler.profile().edge_counts

    def test_take_epoch_resets_edges(self):
        binary = two_block_binary()
        sampler = LbrSampler(binary, period=4, burst_width=4)
        sampler.add_stream([0, 0, 0, 1] * 20)
        assert sampler.take_epoch().edge_counts
        empty = sampler.take_epoch()
        assert empty.edge_counts == {}
        assert empty.total_blocks_executed == 0
