"""Tests for the iTLB, L1D and shared L2 simulators."""

import numpy as np
import pytest

from repro.cache import (
    CacheGeometry,
    PAGE_BYTES,
    simulate_dcache,
    simulate_itlb,
    simulate_l1i_misses,
    simulate_l2,
)
from repro.cache.l2 import FirstTouchMapper
from repro.errors import SimulationError
from repro.execution.mp import DATA_BASE


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestItlb:
    def test_cold_misses(self):
        streams = [spans((0, 4), (PAGE_BYTES, 4))]
        result = simulate_itlb(streams, entries=4)
        assert result.misses == 2
        assert result.unique_pages == 2

    def test_hits_within_page(self):
        streams = [spans((0, 4), (256, 4), (512, 4))]
        result = simulate_itlb(streams, entries=4)
        assert result.misses == 1

    def test_lru_capacity(self):
        pages = [0, 1, 2, 0, 1, 2]  # 3 pages in a 2-entry TLB: all miss
        streams = [spans(*[(p * PAGE_BYTES, 4) for p in pages])]
        result = simulate_itlb(streams, entries=2)
        assert result.misses == 6

    def test_lru_retains_recent(self):
        pages = [0, 1, 0, 2, 0]  # 0 stays hot in a 2-entry TLB
        streams = [spans(*[(p * PAGE_BYTES, 4) for p in pages])]
        result = simulate_itlb(streams, entries=2)
        assert result.misses == 3  # 0, 1, 2 cold; both 0-reuses hit

    def test_page_crossing_span(self):
        streams = [spans((PAGE_BYTES - 8, 6))]
        result = simulate_itlb(streams, entries=4)
        assert result.misses == 2

    def test_bad_entries_rejected(self):
        with pytest.raises(SimulationError):
            simulate_itlb([spans((0, 4))], entries=0)

    def test_per_cpu_private(self):
        streams = [spans((0, 4)), spans((0, 4))]
        result = simulate_itlb(streams, entries=4)
        assert result.misses == 2


class TestDcache:
    def test_basic_hit_miss(self):
        geom = CacheGeometry(256, 64, 2)
        addresses = np.array([0, 0, 64, 0], dtype=np.int64)
        result = simulate_dcache(addresses, geom)
        assert result.misses == 2
        assert result.accesses == 4

    def test_miss_stream_positions(self):
        geom = CacheGeometry(128, 64, 1)
        addresses = np.array([0, 4096, 0], dtype=np.int64)
        positions = np.array([10, 20, 30], dtype=np.int64)
        result = simulate_dcache(addresses, geom, positions)
        assert result.miss_positions.tolist() == [10, 20, 30]
        assert result.miss_addresses.tolist() == [0, 4096, 0]


class TestL1iMissStream:
    def test_positions_index_spans(self):
        geom = CacheGeometry(128, 64, 1)
        starts, counts = spans((0, 4), (4096, 4), (0, 4))
        addresses, positions = simulate_l1i_misses(starts, counts, geom)
        assert addresses.tolist() == [0, 4096, 0]
        assert positions.tolist() == [0, 1, 2]

    def test_hits_not_in_stream(self):
        geom = CacheGeometry(1024, 64, 2)
        starts, counts = spans((0, 4), (0, 4))
        addresses, _ = simulate_l1i_misses(starts, counts, geom)
        assert len(addresses) == 1


class TestFirstTouchMapper:
    def test_first_touch_sequential_frames(self):
        mapper = FirstTouchMapper()
        addrs = np.array([5 * PAGE_BYTES + 8, 9 * PAGE_BYTES, 5 * PAGE_BYTES],
                         dtype=np.int64)
        phys = mapper.translate(addrs)
        assert phys.tolist() == [8, PAGE_BYTES, 0]

    def test_offsets_preserved(self):
        mapper = FirstTouchMapper()
        phys = mapper.translate(np.array([123456789], dtype=np.int64))
        assert int(phys[0]) % PAGE_BYTES == 123456789 % PAGE_BYTES


class TestSharedL2:
    def test_instr_data_split(self):
        geom = CacheGeometry(1024, 64, 2)
        refs = np.array([0, DATA_BASE], dtype=np.int64)
        pos = np.array([0, 1], dtype=np.int64)
        result = simulate_l2([(refs, pos)], geom)
        assert result.misses_instr == 1
        assert result.misses_data == 1

    def test_hits_across_cpus(self):
        geom = CacheGeometry(1024, 64, 2)
        a = (np.array([0], dtype=np.int64), np.array([0], dtype=np.int64))
        b = (np.array([0], dtype=np.int64), np.array([1], dtype=np.int64))
        result = simulate_l2([a, b], geom)
        assert result.misses == 1  # shared cache: second CPU hits

    def test_position_interleaving(self):
        geom = CacheGeometry(128, 64, 1)  # 2 sets
        # CPU0 touches line A at positions 0 and 2; CPU1 touches a
        # conflicting line at position 1 -> A evicted in between.
        conflict = 4096  # same set as 0 after identity-ish mapping
        a = (np.array([0, 0], dtype=np.int64), np.array([0, 2], dtype=np.int64))
        b = (np.array([conflict], dtype=np.int64), np.array([1], dtype=np.int64))
        result = simulate_l2([a, b], geom, physical=False)
        assert result.misses == 3

    def test_physical_mapping_defuses_virtual_aliasing(self):
        # Two addresses exactly one cache-stride apart alias virtually;
        # first-touch physical mapping places them in adjacent frames.
        geom = CacheGeometry(2 * PAGE_BYTES, 64, 1)
        a1, a2 = 0, 2 * PAGE_BYTES
        refs = np.array([a1, a2] * 4, dtype=np.int64)
        pos = np.arange(8, dtype=np.int64)
        virtual = simulate_l2([(refs, pos)], geom, physical=False)
        physical = simulate_l2([(refs, pos)], geom, physical=True)
        assert virtual.misses == 8
        assert physical.misses == 2

    def test_empty_streams(self):
        result = simulate_l2([], CacheGeometry(1024, 64, 2))
        assert result.accesses == 0
