"""Scheduler-level behaviours of the multiprocessor model."""

import numpy as np
import pytest

from repro.execution import OltpSystem, SystemConfig
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, build_app_program
from repro.workloads import TpcbConfig


@pytest.fixture(scope="module")
def programs():
    app = build_app_program(
        AppCodeConfig(scale=1.0, filler_routines=20, filler_instructions=8_000)
    )
    kernel = build_kernel_program(
        KernelCodeConfig(scale=1.0, filler_routines=6, filler_instructions=1_500)
    )
    return app, kernel


def run_system(programs, system_config, transactions=25):
    app, kernel = programs
    system = OltpSystem(
        app, kernel,
        tpcb_config=TpcbConfig(branches=4, accounts_per_branch=60),
        system_config=system_config,
    )
    return system, system.run(transactions=transactions)


def kernel_entry_count(system, trace, name):
    spec = system.kernel.spec(name)
    bid = spec.prologue_bid + system.walker.kernel_offset
    return sum(int((cpu.blocks == bid).sum()) for cpu in trace.cpus)


class TestScheduling:
    def test_small_quantum_forces_context_switches(self, programs):
        config = SystemConfig(cpus=1, processes_per_cpu=4, quantum=3_000,
                              timer_interval=10**9)
        system, trace = run_system(programs, config)
        assert kernel_entry_count(system, trace, "k.switch") > 5

    def test_huge_quantum_avoids_involuntary_switches(self, programs):
        config = SystemConfig(cpus=1, processes_per_cpu=4, quantum=10**9,
                              timer_interval=10**9)
        system, trace = run_system(programs, config)
        assert kernel_entry_count(system, trace, "k.switch") == 0

    def test_timer_interrupts_fire_at_interval(self, programs):
        config = SystemConfig(cpus=1, processes_per_cpu=2, quantum=10**9,
                              timer_interval=20_000)
        system, trace = run_system(programs, config)
        sizes = system._sizes
        total_instr = sum(
            int(sizes[cpu.blocks].sum()) for cpu in trace.cpus
        )
        ticks = kernel_entry_count(system, trace, "k.timer")
        expected = total_instr / 20_000
        assert expected * 0.4 < ticks < expected * 1.8

    def test_single_process_runs_alone(self, programs):
        config = SystemConfig(cpus=1, processes_per_cpu=1, quantum=5_000,
                              timer_interval=10**9)
        system, trace = run_system(programs, config, transactions=10)
        # Only one runnable process: never switch.
        assert kernel_entry_count(system, trace, "k.switch") == 0
        assert trace.transactions == 10

    def test_commit_yields_cpu(self, programs):
        """After a commit the CPU rotates to another process: committed
        work is spread across all processes, not hogged by one."""
        config = SystemConfig(cpus=1, processes_per_cpu=4, quantum=10**9,
                              timer_interval=10**9)
        system, trace = run_system(programs, config, transactions=24)
        per_process = [p.committed for p in system._processes]
        assert min(per_process) >= 1

    def test_deterministic_given_seed(self, programs):
        config = SystemConfig(cpus=2, processes_per_cpu=2, seed=9)
        _, trace1 = run_system(programs, config, transactions=15)
        _, trace2 = run_system(programs, config, transactions=15)
        for c1, c2 in zip(trace1.cpus, trace2.cpus):
            assert np.array_equal(c1.blocks, c2.blocks)
            assert np.array_equal(c1.pids, c2.pids)
