"""SharedStreams: shared-memory packing for worker fan-out."""

import numpy as np
import pytest

from repro import obs
from repro.errors import SimulationError
from repro.sim import SharedStreams


def sample_streams():
    rng = np.random.default_rng(3)
    return [
        (
            (rng.integers(0, 1 << 16, size=n) * 4).astype(np.int64),
            rng.integers(1, 30, size=n).astype(np.int64),
        )
        for n in (50, 0, 17)
    ]


class TestPack:
    def test_round_trip(self):
        streams = sample_streams()
        packed = SharedStreams.pack(streams)
        try:
            assert len(packed) == len(streams)
            for (starts, counts), (ps, pc) in zip(streams, packed):
                assert np.array_equal(starts, ps)
                assert np.array_equal(counts, pc)
        finally:
            packed.close()
            packed.unlink()

    def test_length_mismatch_rejected(self):
        bad = [(np.zeros(3, np.int64), np.zeros(2, np.int64))]
        with pytest.raises(SimulationError, match="lengths differ"):
            SharedStreams.pack(bad)

    def test_nbytes_covers_the_arrays(self):
        streams = sample_streams()
        packed = SharedStreams.pack(streams)
        try:
            words = sum(2 * len(s) for s, _ in streams)
            assert packed.nbytes >= words * 8
        finally:
            packed.close()
            packed.unlink()

    def test_shared_bytes_counter_incremented(self):
        before = obs.counter("sim.shared_bytes").value
        packed = SharedStreams.pack(sample_streams())
        try:
            expected = sum(16 * len(s) for s, _ in sample_streams())
            assert obs.counter("sim.shared_bytes").value == before + expected
        finally:
            packed.close()
            packed.unlink()


class TestAttach:
    def test_attach_by_handle_sees_the_same_data(self):
        streams = sample_streams()
        packed = SharedStreams.pack(streams)
        attached = None
        try:
            attached = SharedStreams.attach(packed.handle)
            for (starts, counts), (ps, pc) in zip(streams, attached):
                assert np.array_equal(starts, ps)
                assert np.array_equal(counts, pc)
        finally:
            if attached is not None:
                attached.close()
            packed.close()
            packed.unlink()

    def test_handle_is_tiny_and_picklable(self):
        import pickle

        packed = SharedStreams.pack(sample_streams())
        try:
            blob = pickle.dumps(packed.handle)
            assert len(blob) < 4096
        finally:
            packed.close()
            packed.unlink()

    def test_attached_side_never_unlinks(self):
        packed = SharedStreams.pack(sample_streams())
        try:
            attached = SharedStreams.attach(packed.handle)
            attached.unlink()  # must be a no-op: not the owner
            attached.close()
            # The block must still exist for a second attach.
            again = SharedStreams.attach(packed.handle)
            again.close()
        finally:
            packed.close()
            packed.unlink()


class TestLifecycle:
    def test_close_is_idempotent(self):
        packed = SharedStreams.pack(sample_streams())
        packed.close()
        packed.close()
        packed.unlink()

    def test_unlink_after_close_tolerated(self):
        packed = SharedStreams.pack(sample_streams())
        packed.close()
        packed.unlink()
        packed.unlink()

    def test_close_with_live_views_does_not_raise(self):
        packed = SharedStreams.pack(sample_streams())
        starts, _counts = packed.stream(0)
        packed.close()  # BufferError from the live view is swallowed
        packed.unlink()
        assert starts is not None
