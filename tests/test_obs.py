"""Unit tests for the repro.obs core: spans, metrics, Chrome export."""

import json
import threading

import pytest

from repro import obs
from repro.obs.chrome import chrome_trace, spans_from_chrome
from repro.obs.metrics import MetricRegistry, SERIES_CAPACITY
from repro.obs.sink import JsonlSink, read_events


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with tracing off and metrics empty."""
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.reset_metrics()


class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.counter("x").value == 5

    def test_gauge_last_value_wins(self):
        reg = MetricRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_histogram_stats(self):
        reg = MetricRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").record(v)
        h = reg.histogram("h")
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == 2.0

    def test_series_decimates_beyond_capacity(self):
        reg = MetricRegistry()
        s = reg.series("s")
        for i in range(SERIES_CAPACITY * 2 + 10):
            s.record(float(i))
        assert len(s.points) <= SERIES_CAPACITY
        assert s.stride > 1
        # Points stay in recording order with increasing indexes.
        indexes = [i for i, _ in s.points]
        assert indexes == sorted(indexes)

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_reset_clears(self):
        reg = MetricRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0

    def test_registry_thread_safety(self):
        reg = MetricRegistry()

        def work():
            for _ in range(1000):
                reg.counter("shared").inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared").value == 8000


class TestSpans:
    def test_noop_when_disabled(self):
        with obs.span("anything", foo=1) as span:
            span.set("bar", 2)  # absorbed silently
        assert obs.tracer().finished == []

    def test_nesting_parent_ids(self):
        obs.enable(record=True)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.tracer().finished}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_span_timing_and_attrs(self):
        obs.enable(record=True)
        with obs.span("timed", combo="all") as span:
            span.set("extra", 7)
        (finished,) = obs.tracer().finished
        event = finished.to_event()
        assert event["type"] == "span"
        assert event["wall_s"] >= 0.0
        assert event["attrs"] == {"combo": "all", "extra": 7}

    def test_sibling_threads_do_not_nest(self):
        obs.enable(record=True)
        ready = threading.Barrier(2)

        def work(tag):
            ready.wait()
            with obs.span(tag):
                pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(s.parent_id is None for s in obs.tracer().finished)

    def test_exception_still_finishes_span(self):
        obs.enable(record=True)
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert [s.name for s in obs.tracer().finished] == ["failing"]


class TestSink:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "span", "name": "b"})
        sink.close()
        names = [e["name"] for e in read_events(path)]
        assert names == ["a", "b"]

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError):
            read_events(path)

    def test_enable_writes_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        with obs.span("traced", k="v"):
            pass
        obs.disable()
        (event,) = read_events(path)
        assert event["name"] == "traced"
        assert event["attrs"] == {"k": "v"}

    def test_threaded_emit_never_tears_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)

        def work(tag):
            for i in range(200):
                sink.emit({"tag": tag, "i": i, "pad": "x" * 64})

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        events = read_events(path)  # raises on any torn line
        assert len(events) == 8 * 200


class TestChromeExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path, record=True)
        with obs.span("outer", combo="all"):
            with obs.span("inner"):
                pass
        obs.disable()
        original = [e for e in read_events(path) if e["type"] == "span"]
        recovered = spans_from_chrome(chrome_trace(original))
        assert [s["name"] for s in recovered] == [s["name"] for s in original]
        for orig, back in zip(original, recovered):
            assert back["span_id"] == orig["span_id"]
            assert back["parent_id"] == orig["parent_id"]
            assert back["attrs"] == orig["attrs"]
            assert back["wall_s"] == pytest.approx(orig["wall_s"], abs=1e-5)

    def test_metrics_become_instant_events(self):
        doc = chrome_trace(
            [{"type": "metrics", "ts": 1.0, "pid": 7, "metrics": {"a": 1}}]
        )
        (event,) = doc["traceEvents"]
        assert event["ph"] == "i"
        assert event["args"]["metrics"] == {"a": 1}


class TestFacade:
    def test_series_window_defaults_on_enable(self):
        assert obs.series_window() == 0
        obs.enable(record=True)
        assert obs.series_window() == obs.DEFAULT_WINDOW
        obs.disable()
        assert obs.series_window() == 0

    def test_explicit_window(self):
        obs.enable(record=True, window=128)
        assert obs.series_window() == 128

    def test_flush_metrics_emits_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.enable(trace_path=path)
        obs.counter("c").inc()
        snapshot = obs.flush_metrics()
        obs.disable()
        assert snapshot["c"]["value"] == 1
        (event,) = read_events(path)
        assert event["type"] == "metrics"
        assert event["metrics"]["c"]["value"] == 1
