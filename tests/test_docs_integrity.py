"""Documentation integrity: the per-experiment index points at real
files, and every benchmark writes a table some document references."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsIntegrity:
    def test_design_bench_targets_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"benchmarks/bench[a-z0-9_]*\.py", design))
        assert targets, "DESIGN.md must map experiments to bench targets"
        for target in targets:
            assert (ROOT / target).exists(), f"missing {target}"

    def test_experiments_references_result_files(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        referenced = set(re.findall(r"[a-z0-9_]+\.txt", experiments))
        assert len(referenced) >= 20

    def test_every_bench_file_in_design_or_extensions(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            name = f"benchmarks/{bench.name}"
            mentioned = name in design or bench.stem.replace("bench_", "") in design
            assert mentioned or "extension" in bench.stem or \
                "multiprogramming" in bench.stem or "dss" in bench.stem, \
                f"{name} not referenced by DESIGN.md"

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for example in re.findall(r"examples/[a-z_]+\.py", readme):
            assert (ROOT / example).exists(), f"missing {example}"

    def test_paper_combo_names_consistent(self):
        from repro.layout import PAPER_COMBOS

        design = (ROOT / "DESIGN.md").read_text()
        for combo in PAPER_COMBOS:
            assert combo in design


class TestDocsLint:
    """The tools/check_docs.py gate, run in-process."""

    @pytest.fixture(autouse=True)
    def _load_tool(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_docs", ROOT / "tools" / "check_docs.py"
        )
        self.check_docs = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(self.check_docs)

    def test_public_symbols_have_docstrings(self):
        assert self.check_docs.check_docstrings() == []

    def test_markdown_links_resolve(self):
        assert self.check_docs.check_links() == []

    def test_no_orphan_pages(self):
        assert self.check_docs.check_orphans() == []

    def test_orphan_page_detected(self, tmp_path, monkeypatch):
        """A page nothing links to fails the orphan check."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "INDEX.md").write_text("# Map\n\n[linked](LINKED.md)\n")
        (docs / "LINKED.md").write_text("# Linked\n")
        (docs / "ORPHAN.md").write_text("# Nobody links here\n")
        monkeypatch.setattr(self.check_docs, "ROOT", tmp_path)
        problems = self.check_docs.check_orphans()
        assert len(problems) == 1
        assert "ORPHAN.md" in problems[0]
        assert "orphan" in problems[0]

    def test_dead_link_detected(self, tmp_path, monkeypatch):
        """A relative link to a missing file fails the link check."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "INDEX.md").write_text("[gone](MISSING.md)\n")
        monkeypatch.setattr(self.check_docs, "ROOT", tmp_path)
        problems = self.check_docs.check_links()
        assert len(problems) == 1
        assert "MISSING.md" in problems[0]
