"""Kernel-binary behaviour: entry-point walks and image properties."""

import numpy as np
import pytest

from repro.db.instrument import CallEvent
from repro.execution import CfgWalker
from repro.osmodel import KERNEL_BASE, KernelCodeConfig, build_kernel_program
from repro.progen import AppCodeConfig, RoutineSpec, Straight, build_binary


@pytest.fixture(scope="module")
def walker():
    app = build_binary([RoutineSpec("r", body=[Straight(1)])], "app")
    kernel = build_kernel_program(KernelCodeConfig(scale=1.0))
    return CfgWalker(app, kernel)


def kernel_event(name, **bindings):
    event = CallEvent(name, dict(bindings))
    event.bindings.setdefault("salt", 3)
    return event


class TestKernelEntryPoints:
    @pytest.mark.parametrize("name,bindings", [
        ("k.read", {"pages": 1}),
        ("k.read", {"pages": 4}),
        ("k.write", {"pages": 1}),
        ("k.yield", {}),
        ("k.switch", {}),
        ("k.timer", {}),
    ])
    def test_entry_walks_cleanly(self, walker, name, bindings):
        out = []
        walker.walk_event(kernel_event(name, **bindings), out)
        blocks = np.asarray(out)
        assert len(blocks) > 3
        assert (blocks >= walker.kernel_offset).all()

    def test_page_count_scales_copy_loop(self, walker):
        one = []
        walker.walk_event(kernel_event("k.read", pages=1), one)
        many = []
        walker.walk_event(kernel_event("k.read", pages=8), many)
        assert len(many) > len(one)

    def test_syscall_paths_are_substantial(self, walker):
        """Syscall entries execute hundreds of instructions (the kernel
        stream must be able to interfere with the application)."""
        sizes = np.array(
            [b.size for b in walker.app.binary.blocks()]
            + [b.size for b in walker.kernel.binary.blocks()]
        )
        out = []
        walker.walk_event(kernel_event("k.read", pages=1), out)
        instructions = int(sizes[np.asarray(out)].sum())
        assert instructions > 200

    def test_timer_cheapest_entry(self, walker):
        sizes = np.array(
            [b.size for b in walker.app.binary.blocks()]
            + [b.size for b in walker.kernel.binary.blocks()]
        )

        def cost(name, **bindings):
            out = []
            walker.walk_event(kernel_event(name, **bindings), out)
            return int(sizes[np.asarray(out)].sum())

        assert cost("k.timer") < cost("k.switch")
        assert cost("k.timer") < cost("k.read", pages=1)

    def test_pseudo_random_paths_vary_with_salt(self, walker):
        a, b = [], []
        walker.walk_event(kernel_event("k.switch", salt=1), a)
        walker.walk_event(kernel_event("k.switch", salt=999_999), b)
        assert a != b  # different warm arms taken


class TestKernelImage:
    def test_kernel_scale_grows_image(self):
        small = build_kernel_program(KernelCodeConfig(scale=0.5, filler_routines=0))
        big = build_kernel_program(KernelCodeConfig(scale=3.0, filler_routines=0))
        assert big.binary.static_size > 2 * small.binary.static_size

    def test_kernel_deterministic(self):
        a = build_kernel_program(KernelCodeConfig(seed=4))
        b = build_kernel_program(KernelCodeConfig(seed=4))
        assert a.binary.static_size == b.binary.static_size
        assert a.binary.proc_order() == b.binary.proc_order()

    def test_base_leaves_room_for_app(self):
        from repro.progen import build_app_program

        app = build_app_program(AppCodeConfig(scale=10.0))
        assert app.binary.static_size * 4 < KERNEL_BASE
