"""Tests for heap files and row codecs."""

import pytest

from repro.errors import DatabaseError, PageError
from repro.db.buffer import BufferPool
from repro.db.rows import RowCodec, int_col, pad_col
from repro.db.storage import HeapFile, PageStore


def make_heap(capacity=32):
    pool = BufferPool(PageStore(), capacity=capacity)
    return HeapFile("t", pool), pool


class TestHeapFile:
    def test_insert_and_read(self):
        heap, _ = make_heap()
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"

    def test_insert_uses_hint_page(self):
        heap, _ = make_heap()
        r1 = heap.insert(b"a" * 100)
        r2 = heap.insert(b"b" * 100)
        assert r1[0] == r2[0]
        assert r2[1] == r1[1] + 1

    def test_insert_rolls_to_new_page_when_full(self):
        heap, _ = make_heap()
        first = heap.insert(b"x" * 4000)
        second = heap.insert(b"y" * 4000)
        third = heap.insert(b"z" * 4000)  # does not fit page 1
        assert first[0] == second[0]
        assert third[0] != first[0]

    def test_update(self):
        heap, _ = make_heap()
        rid = heap.insert(b"aaaa")
        heap.update(rid, b"bbbb")
        assert heap.read(rid) == b"bbbb"

    def test_delete(self):
        heap, _ = make_heap()
        rid = heap.insert(b"dead")
        heap.delete(rid)
        with pytest.raises(PageError):
            heap.read(rid)

    def test_scan_in_order(self):
        heap, _ = make_heap()
        payloads = [bytes([65 + i]) * 10 for i in range(20)]
        rids = [heap.insert(p) for p in payloads]
        scanned = list(heap.scan())
        assert [r for r, _ in scanned] == rids
        assert [p for _, p in scanned] == payloads

    def test_scan_skips_deleted(self):
        heap, _ = make_heap()
        keep = heap.insert(b"keep")
        kill = heap.insert(b"kill")
        heap.delete(kill)
        assert [p for _, p in heap.scan()] == [b"keep"]
        assert heap.num_records == 1

    def test_pins_released(self):
        heap, pool = make_heap(capacity=2)
        # With capacity 2, leaked pins would exhaust the pool quickly.
        for i in range(50):
            heap.insert(bytes([i % 250 + 1]) * 500)
        assert heap.num_records == 50


class TestRowCodec:
    def make_codec(self):
        return RowCodec("t", [int_col("id"), int_col("v"), pad_col("fill", 10)])

    def test_roundtrip(self):
        codec = self.make_codec()
        row = {"id": 7, "v": -12345}
        assert codec.decode(codec.encode(row)) == row

    def test_row_size_fixed(self):
        codec = self.make_codec()
        assert codec.row_size == 8 + 8 + 10
        assert len(codec.encode({"id": 1, "v": 2})) == codec.row_size

    def test_missing_column_rejected(self):
        codec = self.make_codec()
        with pytest.raises(DatabaseError):
            codec.encode({"id": 1})

    def test_bad_bytes_rejected(self):
        codec = self.make_codec()
        with pytest.raises(DatabaseError):
            codec.decode(b"short")

    def test_unknown_kind_rejected(self):
        from repro.db.rows import Column

        with pytest.raises(DatabaseError):
            RowCodec("t", [Column("x", "float", 8)])

    def test_int_columns(self):
        assert self.make_codec().int_columns == ["id", "v"]

    def test_negative_and_large_values(self):
        codec = self.make_codec()
        row = {"id": -(2**62), "v": 2**62}
        assert codec.decode(codec.encode(row)) == row
