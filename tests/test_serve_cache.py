"""Two-tier layout-cache behaviour: LRU, disk promotion, persistence."""

import pytest

from repro.harness.store import ArtifactStore, layout_to_dict
from repro.layout import SpikeOptimizer
from repro.serve.cache import LayoutCache


@pytest.fixture(scope="module")
def documents(serve_env):
    """Layout documents for both profiles, keyed by fingerprint."""
    binary, profiles = serve_env
    return {
        profile.fingerprint(): layout_to_dict(
            SpikeOptimizer(binary, profile).layout("all")
        )
        for profile in profiles
    }


def test_memory_tier_round_trip(documents):
    cache = LayoutCache()
    fp, doc = next(iter(documents.items()))
    assert cache.get(fp, "all") == (None, "")
    cache.put(fp, "all", doc)
    got, tier = cache.get(fp, "all")
    assert tier == "memory"
    assert got == doc
    stats = cache.stats()
    assert stats.memory_hits == 1
    assert stats.misses == 1
    assert stats.entries == len(cache) == 1


def test_lru_eviction_order(documents):
    cache = LayoutCache(memory_entries=2)
    fp, doc = next(iter(documents.items()))
    cache.put(fp, "base", doc)
    cache.put(fp, "hotcold", doc)
    # Touch "base" so "hotcold" becomes the least recently used entry.
    assert cache.get(fp, "base")[1] == "memory"
    cache.put(fp, "all", doc)
    assert len(cache) == 2
    assert cache.get(fp, "hotcold") == (None, "")
    assert cache.get(fp, "base")[1] == "memory"
    assert cache.get(fp, "all")[1] == "memory"
    assert cache.stats().evictions == 1


def test_disk_tier_promotes_to_memory(documents, tmp_path):
    store = ArtifactStore(tmp_path)
    fp, doc = next(iter(documents.items()))
    LayoutCache(store).put(fp, "all", doc)
    assert store.has(fp, "serve-layout-all.json")

    # A fresh cache (fresh process, conceptually) hits the disk tier...
    reborn = LayoutCache(store)
    got, tier = reborn.get(fp, "all")
    assert tier == "disk"
    assert got == doc
    # ...and the hit is promoted into the memory tier.
    assert reborn.get(fp, "all")[1] == "memory"
    stats = reborn.stats()
    assert stats.disk_hits == 1 and stats.memory_hits == 1


def test_distinct_fingerprints_do_not_collide(documents, tmp_path):
    cache = LayoutCache(ArtifactStore(tmp_path))
    (fp_a, doc_a), (fp_b, doc_b) = documents.items()
    cache.put(fp_a, "all", doc_a)
    cache.put(fp_b, "all", doc_b)
    assert cache.get(fp_a, "all")[0] == doc_a
    assert cache.get(fp_b, "all")[0] == doc_b


def test_read_only_store_degrades_to_memory(documents, tmp_path):
    target = tmp_path / "ro"
    target.mkdir(mode=0o500)
    cache = LayoutCache(ArtifactStore(target))
    fp, doc = next(iter(documents.items()))
    cache.put(fp, "all", doc)  # disk write fails quietly
    assert cache.get(fp, "all")[1] == "memory"
