"""Mutation tests: every LAY* code fires on a purposely corrupted
layout or address map, and clean layouts pass."""

import dataclasses

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.check import (
    check_layout,
    verify_chaining,
    verify_layout,
    verify_split_units,
    verify_unit_permutation,
)
from repro.ir import Layout, assign_addresses
from repro.layout import SpikeOptimizer
from repro.layout.chaining import ChainingResult
from repro.profiles import PixieProfiler
from repro.progen import AppCodeConfig, build_app_program


@pytest.fixture(scope="module")
def program():
    return build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000)
    )


@pytest.fixture(scope="module")
def optimizer(program):
    from repro.db.instrument import CallEvent
    from repro.execution import CfgWalker
    from repro.osmodel import KernelCodeConfig, build_kernel_program

    kernel = build_kernel_program(
        KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
    )
    walker = CfgWalker(program, kernel)
    out = []
    for salt in range(200):
        walker.walk_event(CallEvent("txn_begin", {"salt": salt}), out)
    blocks = np.asarray(out, dtype=np.int64)
    profiler = PixieProfiler(program.binary)
    profiler.add_stream(blocks[blocks < walker.kernel_offset])
    return SpikeOptimizer(program.binary, profiler.profile())


def rebuild(layout, units):
    return Layout(units=list(units), alignment=layout.alignment, name=layout.name)


def codes_of(binary, layout, with_amap=False):
    amap = assign_addresses(binary, layout) if with_amap else None
    return check_layout(binary, layout, amap).codes()


class TestLayoutMutations:
    def test_clean_layouts_pass(self, optimizer):
        for combo in ("base", "all", "hotcold"):
            layout = optimizer.layout(combo)
            amap = assign_addresses(optimizer.binary, layout)
            report = check_layout(optimizer.binary, layout, amap)
            assert report.ok, report.render()

    def test_lay001_missing_block(self, optimizer):
        layout = optimizer.layout("all")
        units = list(layout.units)
        victim = next(u for u in units if len(u.block_ids) > 1)
        units[units.index(victim)] = dataclasses.replace(
            victim, block_ids=victim.block_ids[1:]
        )
        assert "LAY001" in codes_of(optimizer.binary, rebuild(layout, units))

    def test_lay002_duplicate_block(self, optimizer):
        layout = optimizer.layout("all")
        units = list(layout.units)
        victim = units[0]
        units[0] = dataclasses.replace(
            victim, block_ids=victim.block_ids + (victim.block_ids[0],)
        )
        assert "LAY002" in codes_of(optimizer.binary, rebuild(layout, units))

    def test_lay003_foreign_block(self, optimizer):
        layout = optimizer.layout("base")
        units = list(layout.units)
        # An id beyond the binary plus a block owned by another unit's
        # procedure both count as foreign.
        units[0] = dataclasses.replace(
            units[0], block_ids=units[0].block_ids + (10**6,)
        )
        assert "LAY003" in codes_of(optimizer.binary, rebuild(layout, units))

    def test_lay004_entry_unit_lost(self, optimizer):
        layout = optimizer.layout("base")
        units = [dataclasses.replace(u, is_entry=False) for u in layout.units]
        assert "LAY004" in codes_of(optimizer.binary, rebuild(layout, units))

    def test_lay007_dangling_branch_target(self, optimizer):
        binary = optimizer.binary
        layout = optimizer.layout("all")
        # Remove a unit whose blocks other placed blocks branch to.
        targeted = {dst for b in binary.blocks() for dst in b.succs}
        units = list(layout.units)
        victim = next(
            u for u in units
            if all(bid in targeted for bid in u.block_ids) and not u.is_entry
        )
        units.remove(victim)
        codes = codes_of(binary, rebuild(layout, units))
        assert "LAY007" in codes
        assert "LAY001" in codes  # the blocks are also unplaced

    def test_lay009_fused_segments(self, optimizer):
        layout = optimizer.layout("all")
        units = list(layout.units)
        first = next(
            i for i in range(len(units) - 1)
            if units[i].proc_name == units[i + 1].proc_name
        )
        fused = dataclasses.replace(
            units[first],
            block_ids=units[first].block_ids + units[first + 1].block_ids,
            is_entry=units[first].is_entry or units[first + 1].is_entry,
        )
        units[first:first + 2] = [fused]
        assert "LAY009" in codes_of(optimizer.binary, rebuild(layout, units))

    def test_lay009_not_applied_to_hotcold(self, optimizer):
        # hotcold halves legitimately contain interior returns.
        layout = optimizer.layout("hotcold")
        report = check_layout(optimizer.binary, layout)
        assert "LAY009" not in report.codes()


class TestAddressMapMutations:
    """LAY005/006/008 need a tampered address map -- assign_addresses
    always produces self-consistent ones."""

    def test_lay005_overlap(self, optimizer):
        layout = optimizer.layout("all")
        amap = assign_addresses(optimizer.binary, layout)
        second = layout.units[1].block_ids[0]
        amap.addr[second] = int(amap.addr[layout.units[0].block_ids[0]])
        codes = check_layout(optimizer.binary, layout, amap).codes()
        assert "LAY005" in codes

    def test_lay006_misaligned_unit(self, optimizer):
        layout = optimizer.layout("base")  # 16-byte procedure alignment
        amap = assign_addresses(optimizer.binary, layout)
        amap.unit_starts[layout.units[1].name] += 2
        codes = check_layout(optimizer.binary, layout, amap).codes()
        assert "LAY006" in codes

    def test_lay008_fixup_dropped(self, optimizer):
        layout = optimizer.layout("all")
        amap = assign_addresses(optimizer.binary, layout)
        victim = next(iter(amap.appended_branches))
        amap.appended_branches.discard(victim)
        codes = check_layout(optimizer.binary, layout, amap).codes()
        assert "LAY008" in codes

    def test_verify_layout_raises_on_corruption(self, optimizer):
        layout = optimizer.layout("all")
        amap = assign_addresses(optimizer.binary, layout)
        amap.appended_branches.clear()
        with pytest.raises(LayoutError, match="LAY008"):
            verify_layout(optimizer.binary, layout, amap)


class TestStructuralVerifiers:
    def test_verify_chaining_accepts_real_result(self, optimizer):
        name = optimizer.binary.proc_order()[0]
        result = optimizer.chainings()[name]
        verify_chaining(optimizer.binary.proc(name), result)

    def test_verify_chaining_rejects_dropped_block(self, optimizer):
        name = optimizer.binary.proc_order()[0]
        good = optimizer.chainings()[name]
        chains = [list(c) for c in good.chains]
        chains[-1] = chains[-1][:-1] if len(chains[-1]) > 1 else chains[-1]
        if chains == [list(c) for c in good.chains]:
            chains = chains[:-1]
        bad = ChainingResult(proc_name=name, chains=chains)
        with pytest.raises(LayoutError, match="permutation"):
            verify_chaining(optimizer.binary.proc(name), bad)

    def test_verify_split_units_rejects_fused_segment(self, optimizer):
        from repro.layout.splitting import split_chains

        from repro.ir import SEGMENT_ENDING

        name = optimizer.binary.proc_order()[0]
        units = split_chains(
            optimizer.binary, optimizer.chainings()[name], verify=True
        )
        # Fuse across a boundary created by an unconditional transfer
        # (a chain-tail segment may legitimately end without one).
        first = next(
            i for i in range(len(units) - 1)
            if optimizer.binary.block(units[i].block_ids[-1]).terminator
            in SEGMENT_ENDING
        )
        fused = dataclasses.replace(
            units[first],
            block_ids=units[first].block_ids + units[first + 1].block_ids,
            is_entry=units[first].is_entry or units[first + 1].is_entry,
        )
        tampered = units[:first] + [fused] + units[first + 2:]
        with pytest.raises(LayoutError):
            verify_split_units(optimizer.binary, name, tampered)

    def test_verify_unit_permutation_rejects_drop(self, optimizer):
        units = optimizer.layout("all").units
        with pytest.raises(LayoutError, match="permutation"):
            verify_unit_permutation(units, units[1:])

    def test_verify_unit_permutation_rejects_rewrite(self, optimizer):
        units = list(optimizer.layout("all").units)
        tampered = [dataclasses.replace(
            units[0], block_ids=tuple(reversed(units[0].block_ids))
        )] + units[1:]
        if tampered[0].block_ids == units[0].block_ids:
            pytest.skip("single-block unit cannot be rewritten by reversal")
        with pytest.raises(LayoutError, match="rewrote"):
            verify_unit_permutation(units, tampered)
