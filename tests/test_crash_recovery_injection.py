"""Failure injection: crash the system at random points, replay the WAL,
and check that exactly the committed work survives.

The model is no-steal (dirty pages only reach the "disk" on eviction or
checkpoint), so recovery = redo of transactions whose COMMIT record was
hardened.  These tests crash a TPC-B run at arbitrary transaction
boundaries and verify balance conservation over the recovered image.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Engine, PAGE_SIZE
from repro.db.pages import Page
from repro.db.wal import replay
from repro.workloads import TpcbConfig, TpcbGenerator, TpcbTransaction, load_database


def fresh_engine(config):
    engine = Engine(pool_capacity=4096, btree_order=32)
    load_database(engine, config)
    return engine


def run_and_crash(engine, config, commit_count):
    """Run transactions, tracking committed deltas; 'crash' by
    discarding the buffer pool (no flush)."""
    generator = TpcbGenerator(config, 0)
    committed_delta = 0
    for _ in range(commit_count):
        request = generator.next_request()
        txn = TpcbTransaction(engine, request)
        while not txn.done:
            txn.run_step()
        committed_delta += request.delta
    # Crash: volatile state (buffer pool contents) is lost.  What
    # survives is the page store as last written plus the hardened log.
    return committed_delta


def recovered_branch_total(engine, config):
    """Replay the hardened log onto the store and read branch balances
    directly from the recovered page images."""
    replay(engine.log.hardened_records(), engine.store)
    total = 0
    heap = engine.tables["branch"].heap
    codec = engine.tables["branch"].codec
    for page_id in heap.page_ids:
        page = engine.store.read(page_id)
        for slot in range(page.nslots):
            if not page.is_deleted(slot):
                total += codec.decode(page.read(slot))["balance"]
    return total


class TestCrashRecoveryInjection:
    @settings(max_examples=8, deadline=None)
    @given(commits=st.integers(min_value=0, max_value=25))
    def test_committed_work_survives_crash(self, commits):
        config = TpcbConfig(branches=3, accounts_per_branch=40, seed=13)
        engine = fresh_engine(config)
        delta = run_and_crash(engine, config, commits)
        assert recovered_branch_total(engine, config) == delta

    def test_in_flight_transaction_discarded(self):
        config = TpcbConfig(branches=2, accounts_per_branch=30, seed=7)
        engine = fresh_engine(config)
        delta = run_and_crash(engine, config, 5)
        # Start a 6th transaction but crash before its commit.
        generator = TpcbGenerator(config, 1)
        request = generator.next_request()
        txn = TpcbTransaction(engine, request)
        for _ in range(4):  # begin + three updates, no commit
            txn.run_step()
        engine.log.flush()  # even a flushed-but-uncommitted tail loses
        assert recovered_branch_total(engine, config) == delta

    def test_replay_is_idempotent(self):
        config = TpcbConfig(branches=2, accounts_per_branch=30, seed=9)
        engine = fresh_engine(config)
        delta = run_and_crash(engine, config, 8)
        first = recovered_branch_total(engine, config)
        second = recovered_branch_total(engine, config)
        assert first == second == delta

    def test_checkpoint_then_crash(self):
        """Work before a checkpoint survives via pages; work after via
        the log; both together stay consistent."""
        config = TpcbConfig(branches=2, accounts_per_branch=30, seed=21)
        engine = fresh_engine(config)
        delta_before = run_and_crash(engine, config, 6)
        engine.checkpoint()
        generator = TpcbGenerator(config, 5)
        delta_after = 0
        for _ in range(4):
            request = generator.next_request()
            txn = TpcbTransaction(engine, request)
            while not txn.done:
                txn.run_step()
            delta_after += request.delta
        assert recovered_branch_total(engine, config) == \
            delta_before + delta_after
