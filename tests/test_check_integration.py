"""End-to-end wiring of the repro.check analyses: the optimizer's
opt-in verification, the AdaptiveRelayout swap gate, the every-combo
property test, and the deprecation scanner."""

import dataclasses
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.check import check_all, scan_deprecated_calls, verify_layout
from repro.errors import LayoutError
from repro.ir import assign_addresses
from repro.layout import ALL_COMBOS, SpikeOptimizer
from repro.online.relayout import AdaptiveRelayout, RelayoutResult
from repro.profiles import PixieProfiler
from repro.progen import AppCodeConfig, build_app_program


@pytest.fixture(scope="module")
def program():
    return build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000)
    )


@pytest.fixture(scope="module")
def profile(program):
    from repro.db.instrument import CallEvent
    from repro.execution import CfgWalker
    from repro.osmodel import KernelCodeConfig, build_kernel_program

    kernel = build_kernel_program(
        KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
    )
    walker = CfgWalker(program, kernel)
    out = []
    for salt in range(200):
        walker.walk_event(CallEvent("txn_begin", {"salt": salt}), out)
    blocks = np.asarray(out, dtype=np.int64)
    profiler = PixieProfiler(program.binary)
    profiler.add_stream(blocks[blocks < walker.kernel_offset])
    return profiler.profile()


def corrupt(layout):
    """Drop one block from a multi-block unit (fails LAY001)."""
    units = list(layout.units)
    victim = next(u for u in units if len(u.block_ids) > 1)
    units[units.index(victim)] = dataclasses.replace(
        victim, block_ids=victim.block_ids[1:]
    )
    return dataclasses.replace(layout, units=units)


class TestOptimizerVerification:
    def test_verifying_optimizer_builds_every_combo(self, program, profile):
        optimizer = SpikeOptimizer(program.binary, profile, verify=True)
        for combo in ALL_COMBOS:
            optimizer.layout(combo)  # raises LayoutError on any defect

    @settings(max_examples=len(ALL_COMBOS))
    @given(combo=st.sampled_from(ALL_COMBOS))
    def test_every_combo_lints_clean(self, program, profile, combo):
        optimizer = SpikeOptimizer(program.binary, profile)
        layout = optimizer.layout(combo)
        amap = assign_addresses(program.binary, layout)
        report = check_all(
            program.binary, profile, layout, amap, target=combo
        )
        assert not report.errors, report.render()


class TestRelayoutGate:
    def test_corrupt_fresh_layout_returns_fallback(
        self, program, profile, monkeypatch
    ):
        bad = corrupt(SpikeOptimizer(program.binary, profile).layout("all"))
        monkeypatch.setattr(SpikeOptimizer, "layout", lambda self, combo: bad)
        sentinel = RelayoutResult(
            layout=None, address_map=None, optimizer=None,
            rebuilt_procs=(), reused_chains=0, cache="off",
        )
        rejected = obs.counter("online.relayout.rejected").value
        result = AdaptiveRelayout(program.binary).rebuild(
            profile, fallback=sentinel
        )
        assert result is sentinel
        assert obs.counter("online.relayout.rejected").value == rejected + 1

    def test_corrupt_fresh_layout_without_fallback_raises(
        self, program, profile, monkeypatch
    ):
        bad = corrupt(SpikeOptimizer(program.binary, profile).layout("all"))
        monkeypatch.setattr(SpikeOptimizer, "layout", lambda self, combo: bad)
        with pytest.raises(LayoutError, match="integrity"):
            AdaptiveRelayout(program.binary).rebuild(profile)

    def test_corrupt_cached_layout_treated_as_miss(
        self, program, profile, tmp_path
    ):
        from repro.harness.store import ArtifactStore, save_layout

        store = ArtifactStore(tmp_path)
        bad = corrupt(SpikeOptimizer(program.binary, profile).layout("all"))
        save_layout(
            bad,
            store.prepare(profile.fingerprint(), "online-layout-all.json"),
        )
        rejected = obs.counter("online.relayout.rejected_cache").value
        result = AdaptiveRelayout(program.binary, store=store).rebuild(profile)
        assert obs.counter("online.relayout.rejected_cache").value == rejected + 1
        # The rebuilt replacement is genuinely clean.
        verify_layout(program.binary, result.layout, result.address_map)

    def test_gate_off_defers_failure_to_address_assignment(
        self, program, profile, monkeypatch
    ):
        bad = corrupt(SpikeOptimizer(program.binary, profile).layout("all"))
        monkeypatch.setattr(SpikeOptimizer, "layout", lambda self, combo: bad)
        rejected = obs.counter("online.relayout.rejected").value
        with pytest.raises(LayoutError, match="places"):
            AdaptiveRelayout(program.binary, verify=False).rebuild(profile)
        assert obs.counter("online.relayout.rejected").value == rejected


class TestDeprecationScan:
    def test_removed_streams_accessors_no_longer_scanned(self, tmp_path):
        # DEP001 completed the deprecation ladder (warn -> raise ->
        # deleted); callers now fail with AttributeError at runtime and
        # the static scan no longer carries a row for them.
        caller = tmp_path / "caller.py"
        caller.write_text(textwrap.dedent("""
            def run(exp):
                streams = exp.app_streams("all")
                return exp.streams("all", scope="kernel")
        """))
        findings = scan_deprecated_calls([str(tmp_path)])
        assert findings == []

    def test_finds_deprecated_simulator_callers(self, tmp_path):
        caller = tmp_path / "sim_caller.py"
        caller.write_text(textwrap.dedent("""
            from repro.cache import simulate_lru

            def run(streams, geometry, cache):
                misses = simulate_lru(streams, geometry).misses
                return misses + cache.simulate_direct_mapped(streams)
        """))
        findings = scan_deprecated_calls([str(tmp_path)])
        # Promoted from warn after the PR-5 deprecation cycle completed.
        assert {(f.code, f.severity.value) for f in findings} == \
            {("DEP002", "error")}
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "simulate_lru" in messages
        assert "simulate_direct_mapped" in messages
        hints = " ".join(f.hint or "" for f in findings)
        assert "repro.sim" in hints

    def test_skips_shim_definitions(self, tmp_path):
        shim_dir = tmp_path / "repro" / "cache"
        shim_dir.mkdir(parents=True)
        (shim_dir / "wrappers.py").write_text(
            "def simulate_lru(streams, geometry):\n"
            "    return simulate_lru\n"
        )
        assert scan_deprecated_calls([str(tmp_path)]) == []

    def test_repo_sources_are_clean_of_deprecated_calls(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        assert scan_deprecated_calls([str(src)]) == []
