"""Shared test configuration."""

import os
import tempfile

from hypothesis import HealthCheck, settings

# Keep the suite hermetic: CLI invocations default to the persistent
# artifact cache, so point it at a throwaway directory for the whole
# test session instead of the user's ~/.cache.
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

# Cache/trace property tests do real simulation work per example; give
# them room and keep CI deterministic.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
