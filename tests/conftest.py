"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Cache/trace property tests do real simulation work per example; give
# them room and keep CI deterministic.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
