"""Shared test configuration."""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, settings

# Keep the suite hermetic: CLI invocations default to the persistent
# artifact cache, so point it at a throwaway directory for the whole
# test session instead of the user's ~/.cache.
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

# Cache/trace property tests do real simulation work per example; give
# them room and keep CI deterministic.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def serve_env():
    """A cheap binary plus two distinct profiles for repro.serve tests.

    Session-scoped: the program build is the expensive part and every
    serve test module shares it.  Returns ``(binary, [profile_a,
    profile_b])`` where the two profiles have different fingerprints.
    """
    import numpy as np

    from repro.db.instrument import CallEvent
    from repro.execution import CfgWalker
    from repro.osmodel import KernelCodeConfig, build_kernel_program
    from repro.profiles import PixieProfiler
    from repro.progen import AppCodeConfig, build_app_program

    program = build_app_program(
        AppCodeConfig(scale=0.5, filler_routines=10, filler_instructions=2_000)
    )
    kernel = build_kernel_program(
        KernelCodeConfig(scale=0.5, filler_routines=2, filler_instructions=500)
    )
    walker = CfgWalker(program, kernel)
    profiles = []
    for lo, hi in ((0, 200), (200, 360)):
        out = []
        for salt in range(lo, hi):
            walker.walk_event(CallEvent("txn_begin", {"salt": salt}), out)
        blocks = np.asarray(out, dtype=np.int64)
        profiler = PixieProfiler(program.binary)
        profiler.add_stream(blocks[blocks < walker.kernel_offset])
        profiles.append(profiler.profile())
    assert profiles[0].fingerprint() != profiles[1].fingerprint()
    return program.binary, profiles
