"""Unit tests for the static-bench recovery math and gate table.

The simulation path itself is exercised by the ``repro static-bench``
CLI test and the CI ``static-smoke`` job; these tests pin the
recovery/ratio arithmetic, the OLTP gate selection, and the bench-diff
contract of the emitted table.
"""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.staticbench import (
    GATE_MIN_RATIO,
    SourceCell,
    StaticBenchResult,
    run_static_bench,
)


def cell(name, family, base, measured, static, hybrid):
    return SourceCell(
        name=name, family=family, base_misses=base,
        misses={"measured": measured, "static": static, "hybrid": hybrid},
    )


class TestRecoveryMath:
    def test_ratio_is_recovery_over_measured_recovery(self):
        c = cell("x", "oltp", 1000, 200, 600, 240)
        assert c.recovery("measured") == 800
        assert c.ratio("static") == pytest.approx(0.5)
        assert c.ratio("hybrid") == pytest.approx(0.95)
        assert c.ratio("measured") == 1.0

    def test_degenerate_cell_gives_full_or_no_credit(self):
        # The measured layout did not help at all: matching it earns
        # credit, doing worse earns none (no division by zero).
        c = cell("x", "oltp", 1000, 1000, 1000, 1200)
        assert c.ratio("static") == 1.0
        assert c.ratio("hybrid") == 0.0


class TestGate:
    def test_gate_averages_oltp_cells_only(self):
        result = StaticBenchResult([
            cell("tpcb", "oltp", 1000, 0, 600, 0),    # static ratio 0.4
            cell("dss", "dss", 1000, 0, 1000, 0),     # ratio 0 -- ignored
        ])
        assert result.gate_ratio == pytest.approx(0.4)
        assert not result.passes()

    def test_gate_falls_back_to_all_cells_without_oltp(self):
        result = StaticBenchResult([
            cell("dss", "dss", 1000, 0, 400, 0),
        ])
        assert result.gate_ratio == pytest.approx(0.6)
        assert result.passes()

    def test_gate_threshold_is_half(self):
        assert GATE_MIN_RATIO == 0.5


class TestTable:
    def test_rows_and_gate_flip(self):
        result = StaticBenchResult([
            cell("tpcb", "oltp", 1000, 100, 400, 120),
        ])
        table = result.to_table()
        # bench-diff keys the better-direction off the column name.
        assert table.columns == ["metric", "recovered_pct"]
        rows = {row[0]: row[1] for row in table.rows}
        assert rows["tpcb_measured"] == pytest.approx(90.0)
        assert rows["tpcb_static"] == pytest.approx(60.0)
        assert rows["oltp_static_gate_ok"] == 1
        failing = StaticBenchResult([
            cell("tpcb", "oltp", 1000, 100, 900, 120),
        ])
        rows = {row[0]: row[1] for row in failing.to_table().rows}
        assert rows["oltp_static_gate_ok"] == 0


class TestRunner:
    def test_empty_selection_rejected(self):
        with pytest.raises(ScenarioError, match="at least one"):
            run_static_bench([])
