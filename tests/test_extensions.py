"""Tests for the extension modules: stream buffers, cache-line
coloring, and joint app+kernel placement."""

import numpy as np
import pytest

from repro.errors import LayoutError, SimulationError
from repro.cache import CacheGeometry, simulate_lru, simulate_stream_buffers
from repro.ir import (
    Binary,
    CodeUnit,
    Procedure,
    Terminator,
    UnitCallGraph,
    assign_addresses,
    baseline_layout,
)
from repro.layout import choose_kernel_offset, color_layout


def spans(*pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    return starts, counts


class TestStreamBuffers:
    GEOM = CacheGeometry(1024, 64, 1)

    def test_sequential_misses_covered(self):
        # A long sequential sweep: after the first miss per buffer
        # restart, subsequent lines hit the stream buffer.
        starts, counts = spans((16 * 1024, 256))
        result = simulate_stream_buffers(starts, counts, self.GEOM, depth=8)
        assert result.raw_misses == 16
        assert result.stream_hits > 0
        assert result.misses < result.raw_misses

    def test_random_misses_not_covered(self):
        rng = np.random.default_rng(4)
        addresses = rng.integers(0, 4096, size=200) * 1024  # far apart
        starts = addresses.astype(np.int64)
        counts = np.full(200, 4, dtype=np.int64)
        result = simulate_stream_buffers(starts, counts, self.GEOM)
        assert result.coverage < 0.2

    def test_depth_limits_run(self):
        starts, counts = spans((16 * 1024, 512))
        shallow = simulate_stream_buffers(starts, counts, self.GEOM, depth=1)
        deep = simulate_stream_buffers(starts, counts, self.GEOM, depth=16)
        assert deep.stream_hits >= shallow.stream_hits

    def test_misses_never_negative(self):
        starts, counts = spans((0, 64), (0, 64))
        result = simulate_stream_buffers(starts, counts, self.GEOM)
        assert 0 <= result.misses <= result.raw_misses

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            simulate_stream_buffers(*spans((0, 4)), geometry=self.GEOM,
                                    num_buffers=0)

    def test_longer_sequences_benefit_more(self):
        """The paper's claim: layout-lengthened sequences raise stream
        buffer coverage."""
        # Short runs with jumps vs long sequential runs, same volume.
        short = spans(*[(i * 8192, 8) for i in range(128)])
        long_ = spans(*[(i * 8192, 64) for i in range(16)])
        cov_short = simulate_stream_buffers(*short, geometry=self.GEOM).coverage
        cov_long = simulate_stream_buffers(*long_, geometry=self.GEOM).coverage
        assert cov_long > cov_short


def _coloring_fixture():
    binary = Binary()
    for name in ("a", "b", "c", "cold"):
        proc = Procedure(name)
        proc.add_block("x", 64, Terminator.RETURN)  # 256 bytes each
        binary.add_procedure(proc)
    binary.seal()
    units = [
        CodeUnit(name=n, proc_name=n, block_ids=(binary.proc(n).entry.bid,))
        for n in binary.proc_order()
    ]
    graph = UnitCallGraph(u.name for u in units)
    graph.add_weight("a", "b", 100)
    graph.add_weight("b", "c", 50)
    counts = np.zeros(binary.num_blocks, dtype=np.int64)
    for name, heat in (("a", 100), ("b", 80), ("c", 50)):
        counts[binary.proc(name).entry.bid] = heat
    return binary, units, graph, counts


class TestColoring:
    def test_neighbors_get_disjoint_sets(self):
        binary, units, graph, counts = _coloring_fixture()
        layout, report = color_layout(
            binary, units, graph, counts, cache_bytes=512, line_bytes=64
        )
        layout.validate_against(binary)
        amap = assign_addresses(binary, layout)
        nsets = 512 // 64

        def sets_of(name):
            start = amap.unit_starts[name]
            nbytes = 256
            return {
                (line % nsets)
                for line in range(start // 64, (start + nbytes - 1) // 64 + 1)
            }

        # a and b are heavy neighbors: in a 512B cache their 256B bodies
        # must overlap *somewhere*, but the report tracks the attempt.
        assert report.hot_units == 3
        assert report.unresolved >= 0
        # b and c (lighter edge) should avoid each other if possible.
        assert isinstance(sets_of("a"), set)

    def test_cold_units_appended(self):
        binary, units, graph, counts = _coloring_fixture()
        layout, _ = color_layout(
            binary, units, graph, counts, cache_bytes=2048, line_bytes=64
        )
        assert layout.units[-1].name == "cold"

    def test_large_cache_resolves_conflicts(self):
        binary, units, graph, counts = _coloring_fixture()
        layout, report = color_layout(
            binary, units, graph, counts, cache_bytes=8192, line_bytes=64
        )
        assert report.unresolved == 0

    def test_bad_geometry_rejected(self):
        binary, units, graph, counts = _coloring_fixture()
        with pytest.raises(LayoutError):
            color_layout(binary, units, graph, counts,
                         cache_bytes=1000, line_bytes=64)

    def test_all_units_placed_once(self):
        binary, units, graph, counts = _coloring_fixture()
        layout, _ = color_layout(
            binary, units, graph, counts, cache_bytes=1024, line_bytes=64
        )
        assert sorted(u.name for u in layout.units) == ["a", "b", "c", "cold"]


class TestJointPlacement:
    def make_maps(self):
        app = Binary("app")
        proc = Procedure("hot")
        proc.add_block("x", 512, Terminator.RETURN)  # 2KB hot region
        app.add_procedure(proc)
        app.seal()
        kernel = Binary("kern")
        kproc = Procedure("k.hot")
        kproc.add_block("x", 512, Terminator.RETURN)
        kernel.add_procedure(kproc)
        kernel.seal()
        app_map = assign_addresses(app, baseline_layout(app))
        kernel_map = assign_addresses(kernel, baseline_layout(kernel))
        return app_map, kernel_map

    def test_offset_moves_kernel_away(self):
        app_map, kernel_map = self.make_maps()
        counts = np.array([100], dtype=np.int64)
        offset, report = choose_kernel_offset(
            app_map, counts, kernel_map, counts,
            cache_bytes=8192, line_bytes=128, granularity=2048,
        )
        # Both images start at 0 -> full overlap at offset 0; a 2KB or
        # greater shift eliminates it (2KB bodies in an 8KB cache).
        assert offset != 0
        assert report.overlap_after < report.overlap_before
        assert report.overlap_reduction == 1.0

    def test_zero_offset_when_no_conflict(self):
        app_map, kernel_map = self.make_maps()
        app_counts = np.array([100], dtype=np.int64)
        kernel_counts = np.array([0], dtype=np.int64)  # cold kernel
        offset, report = choose_kernel_offset(
            app_map, app_counts, kernel_map, kernel_counts,
            cache_bytes=8192, line_bytes=128, granularity=2048,
        )
        assert report.overlap_before == 0.0
        assert offset == 0

    def test_geometry_validation(self):
        app_map, kernel_map = self.make_maps()
        counts = np.array([1], dtype=np.int64)
        with pytest.raises(LayoutError):
            choose_kernel_offset(app_map, counts, kernel_map, counts,
                                 cache_bytes=8192, line_bytes=96)
