"""Benchmarks for the extension studies.

* Stream buffers (paper Section 6 discussion): layout optimization
  should make a 4-element stream buffer more effective.
* Cache-line coloring (related-work comparator): placement-only
  schemes vs the full Spike pipeline.
* Joint app+kernel placement (the paper's stated future work).
"""

from conftest import save_table
from repro.cache import CacheGeometry, simulate_stream_buffers
from repro.execution import CombinedAddressMap
from repro.harness.figures import Table
from repro.ir import assign_addresses, build_unit_call_graph
from repro.layout import choose_kernel_offset, color_layout
from repro.osmodel import KERNEL_BASE
from repro.sim import MemoryHierarchy, simulate

GEOMETRY = CacheGeometry(64 * 1024, 128, 4)
HIERARCHY = MemoryHierarchy.l1i_only(GEOMETRY)


def _misses(streams) -> int:
    return simulate(list(streams), HIERARCHY).misses


def test_extension_stream_buffers(benchmark, exp, results_dir):
    def compute():
        out = {}
        for combo in ("base", "all"):
            raw = 0
            covered = 0
            for starts, counts in exp.streams(combo, scope="app"):
                result = simulate_stream_buffers(
                    starts, counts, CacheGeometry(64 * 1024, 64, 2),
                    num_buffers=4, depth=4,
                )
                raw += result.raw_misses
                covered += result.stream_hits
            out[combo] = (raw, covered)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for combo, (raw, covered) in results.items():
        rows.append([combo, raw, covered, raw - covered,
                     round(100 * covered / raw, 1)])
    table = Table(
        title="Extension: 4-entry instruction stream buffer "
        "(64KB 2-way L1I)",
        columns=["binary", "L1_misses", "buffer_hits", "remaining", "coverage_%"],
        rows=rows,
        notes=[
            "paper 6 conjectured layout would *raise* stream-buffer "
            "effectiveness; measured: layout removes exactly the "
            "sequential misses buffers would have covered, so coverage "
            "drops while absolute misses still fall -- the two "
            "techniques partially overlap",
        ],
    )
    save_table(table, "ext_stream_buffers", results_dir)
    base_raw, base_cov = results["base"]
    opt_raw, opt_cov = results["all"]
    # Absolute wins compose: optimized + buffers beats base + buffers.
    assert (opt_raw - opt_cov) < (base_raw - base_cov)
    # Both binaries get meaningful coverage from the buffers.
    assert base_cov / base_raw > 0.25
    assert opt_cov / opt_raw > 0.25


def test_extension_cache_line_coloring(benchmark, exp, results_dir):
    def compute():
        optimizer = exp.optimizer
        units = optimizer._proc_units(chained=False)
        graph = build_unit_call_graph(
            exp.app.binary, units, exp.profile.block_counts,
            edge_counts=exp.profile.edge_counts or None,
        )
        layout, report = color_layout(
            exp.app.binary, units, graph, exp.profile.block_counts,
            cache_bytes=GEOMETRY.size_bytes, line_bytes=GEOMETRY.line_bytes,
        )
        amap = CombinedAddressMap(
            assign_addresses(exp.app.binary, layout),
            exp.address_map("base").kernel_map,
        )
        streams = []
        for cpu in exp.trace.cpus:
            blocks = cpu.blocks[cpu.blocks < exp.trace.kernel_offset]
            streams.append(amap.expand_spans(blocks))
        return _misses(streams), report

    coloring_misses, report = benchmark.pedantic(compute, rounds=1, iterations=1)
    base = _misses(exp.streams("base", scope="app"))
    porder = _misses(exp.streams("porder", scope="app"))
    full = _misses(exp.streams("all", scope="app"))
    table = Table(
        title="Related-work comparator: cache-line coloring placement "
        "(whole procedures, 64KB/128B)",
        columns=["layout", "misses", "% of base"],
        rows=[
            ["base", base, 100.0],
            ["porder (P-H)", porder, round(100 * porder / base, 1)],
            ["coloring", coloring_misses, round(100 * coloring_misses / base, 1)],
            ["all (full pipeline)", full, round(100 * full / base, 1)],
        ],
        notes=[
            f"coloring padded {report.padding_bytes // 1024}KB, "
            f"{report.unresolved} hot units kept conflicts",
            "paper 6: placement-only schemes are ineffective for OLTP "
            "footprints without chaining+splitting",
        ],
    )
    save_table(table, "ext_coloring", results_dir)
    # The paper's point: placement alone cannot approach the pipeline.
    assert coloring_misses > 2 * full


def test_extension_joint_kernel_placement(benchmark, exp, results_dir):
    def compute():
        app_map = exp.address_map("all").app_map
        kernel_map = exp.address_map("all", "all").kernel_map
        offset, report = choose_kernel_offset(
            app_map, exp.profile.block_counts,
            kernel_map, exp.kernel_profile.block_counts,
            cache_bytes=GEOMETRY.size_bytes, line_bytes=GEOMETRY.line_bytes,
        )
        shifted = CombinedAddressMap(app_map, kernel_map,
                                     kernel_base=KERNEL_BASE + offset)
        streams = [shifted.expand_spans(cpu.blocks) for cpu in exp.trace.cpus]
        shifted_misses = _misses(streams)
        return offset, report, shifted_misses

    offset, report, shifted_misses = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    unshifted = _misses(
        exp.streams("all", scope="combined", kernel_combo="all")
    )
    table = Table(
        title="Future work: joint app+kernel placement (kernel image "
        "offset search, both binaries optimized)",
        columns=["configuration", "combined_misses"],
        rows=[
            ["kernel at default base", unshifted],
            [f"kernel shifted +{offset // 1024}KB", shifted_misses],
            ["change_%", round(100 * (shifted_misses / max(unshifted, 1) - 1), 2)],
        ],
        notes=[
            f"hot-set overlap reduced {report.overlap_reduction:.0%} by the "
            "offset search",
            "paper 7: 'a combined code layout optimization of the "
            "application and the kernel may provide more synergistic "
            "gains; however, we did not study this'",
        ],
    )
    save_table(table, "ext_joint_placement", results_dir)
    # The offset search must not make things worse by more than noise.
    assert shifted_misses < unshifted * 1.05
