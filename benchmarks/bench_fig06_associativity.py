"""Figure 6: associativity vs layout optimization."""

from conftest import save_table
from repro.harness import figures


def test_fig06_associativity(benchmark, exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.fig06_associativity(exp), rounds=1, iterations=1
    )
    save_table(table, "fig06_associativity", results_dir)
    for row in table.rows:
        size_kb, base_dm, base_4w, opt_dm, opt_4w = row
        # Associativity helps, but never as much as the layout change.
        assert base_4w <= base_dm
        assert opt_4w <= opt_dm
        if size_kb in (64, 128):
            assoc_gain = base_dm - base_4w
            layout_gain = base_dm - opt_dm
            assert layout_gain > assoc_gain
