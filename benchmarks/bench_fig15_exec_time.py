"""Figure 15: end-to-end non-idle execution time, per platform.

The paper's Figure 15 runs are single-processor; this benchmark uses
the dedicated uniprocessor experiment.
"""

from conftest import save_table
from repro.harness import figures


def test_fig15_relative_execution_time(benchmark, uni_exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.fig15_exec_time(uni_exp), rounds=1, iterations=1
    )
    save_table(table, "fig15_exec_time", results_dir)
    rows = {r[0]: r[1:] for r in table.rows}
    for platform_index in range(2):
        base = rows["base"][platform_index]
        full = rows["all"][platform_index]
        assert base == 100.0
        # A material end-to-end win on both platforms (paper: ~75%).
        assert full < 93.0
        # Chaining delivers the bulk of it.
        assert rows["chain"][platform_index] < 95.0
        # porder alone is nearly useless.
        assert rows["porder"][platform_index] > rows["chain"][platform_index]
