"""Figures 9-11: spatial/temporal locality of cache-line residencies."""

from conftest import save_table
from repro.harness import figures

_detail = {}


def _detailed(exp, combo):
    if combo not in _detail:
        _detail[combo] = figures.detailed_results(exp, combo)
    return _detail[combo]


def test_fig09_unique_word_usage(benchmark, exp, results_dir):
    base = _detailed(exp, "base")
    opt = benchmark.pedantic(lambda: _detailed(exp, "all"), rounds=1, iterations=1)
    table = figures.fig09_word_usage(base, opt)
    save_table(table, "fig09_word_usage", results_dir)
    base_frac = base.locality.unique_words_fractions()
    opt_frac = opt.locality.unique_words_fractions()
    # Optimized binary fills the whole 32-word line far more often.
    assert opt_frac[32] > base_frac[32] * 1.5
    assert opt_frac[32] > 0.25


def test_fig10_word_reuse(benchmark, exp, results_dir):
    base = _detailed(exp, "base")
    opt = _detailed(exp, "all")
    table = benchmark.pedantic(
        lambda: figures.fig10_word_reuse(base, opt), rounds=1, iterations=1
    )
    save_table(table, "fig10_word_reuse", results_dir)
    # Paper: ~46% of fetched words never used in base; optimized much lower.
    assert base.locality.unused_fraction > 0.30
    assert opt.locality.unused_fraction < base.locality.unused_fraction * 0.75


def test_fig11_line_lifetimes(benchmark, exp, results_dir):
    base = _detailed(exp, "base")
    opt = _detailed(exp, "all")
    table = benchmark.pedantic(
        lambda: figures.fig11_lifetimes(base, opt), rounds=1, iterations=1
    )
    save_table(table, "fig11_lifetimes", results_dir)
    # Mean lifetime (in cache accesses) grows substantially.
    def mean_lifetime(result):
        fractions = result.locality.lifetime_fractions()
        return sum((2.0 ** i) * f for i, f in enumerate(fractions))

    assert mean_lifetime(opt) > 1.5 * mean_lifetime(base)
