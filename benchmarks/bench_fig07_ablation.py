"""Figure 7: which optimization does the work."""

from conftest import save_table
from repro.harness import figures


def test_fig07_optimization_ablation(benchmark, exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.fig07_ablation(exp), rounds=1, iterations=1
    )
    save_table(table, "fig07_ablation", results_dir)
    by_combo = {row[0]: row[1:] for row in table.rows}
    for i, size in enumerate(figures.SWEEP_SIZES):
        base = by_combo["base"][i]
        if size <= 128 * 1024:
            # porder alone does not help much at realistic sizes (paper:
            # slightly hurts), and never approaches chaining.  At 512KB
            # our whole packed hot set fits the cache, so porder alone
            # wins there -- a small-image artifact recorded in
            # EXPERIMENTS.md -- and the orderings invert.
            assert by_combo["porder"][i] > 0.85 * base
            assert by_combo["porder"][i] > by_combo["chain"][i]
        # chaining is the big win.
        assert by_combo["chain"][i] < 0.75 * base
        # the fully optimized binary keeps most of that win.
        assert by_combo["all"][i] < 0.75 * base
