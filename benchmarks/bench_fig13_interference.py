"""Figure 13: application/kernel interference attribution."""

from conftest import save_table
from repro.harness import figures


def test_fig13_interference(benchmark, exp, results_dir):
    base_table = benchmark.pedantic(
        lambda: figures.fig13_interference(exp, "base"), rounds=1, iterations=1
    )
    opt_table = figures.fig13_interference(exp, "all")
    save_table(base_table, "fig13a_interference_base", results_dir)
    save_table(opt_table, "fig13b_interference_optimized", results_dir)

    def rows_of(table):
        return {r[0]: (r[1], r[2]) for r in table.rows}

    for table in (base_table, opt_table):
        rows = rows_of(table)
        kernel_owned, app_owned = rows["application"]
        # Application misses are dominated by self-interference.
        assert app_owned > kernel_owned
        k_kernel_owned, k_app_owned = rows["kernel"]
        # Kernel misses mostly displace application lines.
        assert k_app_owned >= k_kernel_owned
