"""Multiprogramming ablation: how many server processes per CPU?

OLTP installations run many server processes per processor to hide I/O
latency (the paper uses 8).  More processes also means more instruction
streams time-sharing each I-cache.  This ablation varies the degree of
multiprogramming and measures the instruction-cache cost -- context
switch interference -- against the layout optimization's gain.
"""

from conftest import save_table
from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.execution import OltpSystem, SystemConfig
from repro.harness.figures import Table
from repro.ir import assign_addresses
from repro.execution import CombinedAddressMap
from repro.layout import SpikeOptimizer
from repro.profiles import PixieProfiler
from repro.workloads import TpcbConfig

GEOMETRY = CacheGeometry(64 * 1024, 128, 4)


def test_multiprogramming_degree(benchmark, exp, results_dir):
    def compute():
        rows = []
        for procs in (1, 4, 8, 16):
            system = OltpSystem(
                exp.app, exp.kernel,
                tpcb_config=TpcbConfig(branches=40, accounts_per_branch=125,
                                       seed=400 + procs),
                system_config=SystemConfig(cpus=2, processes_per_cpu=procs),
            )
            trace = system.run(transactions=60, warmup=10)
            for combo in ("base", "all"):
                amap = exp.address_map(combo)
                streams = [amap.expand_spans(cpu.blocks) for cpu in trace.cpus]
                misses = simulate(
                    streams, MemoryHierarchy.l1i_only(GEOMETRY)
                ).misses
                instructions = sum(int(c.sum()) for _, c in streams)
                rows.append(
                    [procs, combo, misses,
                     round(1000.0 * misses / instructions, 3)]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        title="Multiprogramming ablation: server processes per CPU "
        "(combined stream, 64KB/128B/4-way, 2 CPUs)",
        columns=["procs_per_cpu", "layout", "misses", "MPKI"],
        rows=rows,
        notes=[
            "more processes per CPU -> more working sets time-sharing the "
            "I-cache; the layout optimization keeps paying at every degree",
        ],
    )
    save_table(table, "ablation_multiprogramming", results_dir)
    by_key = {(r[0], r[1]): r[3] for r in rows}
    for procs in (1, 4, 8, 16):
        # Layout wins at every multiprogramming level.
        assert by_key[(procs, "all")] < by_key[(procs, "base")]
    # Heavier multiprogramming costs the base binary more cache misses
    # per instruction than light multiprogramming.
    assert by_key[(16, "base")] > by_key[(1, "base")] * 0.9
