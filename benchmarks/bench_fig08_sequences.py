"""Figure 8: sequentially executed instructions."""

from conftest import save_table
from repro.harness import figures


def test_fig08_sequence_lengths(benchmark, exp, results_dir):
    summary, histogram = benchmark.pedantic(
        lambda: figures.fig08_sequences(exp), rounds=1, iterations=1
    )
    save_table(summary, "fig08a_sequences", results_dir)
    save_table(histogram, "fig08b_histogram", results_dir)
    values = {row[0]: row[1] for row in summary.rows}
    # Paper: base ~7.3, optimized 10+; both above the mean block size.
    assert 5.0 < values["base"] < 11.0
    assert values["optimized"] > values["base"] * 1.25
    assert values["base"] > values["basic block size"]
