"""Extra ablations beyond the paper's figures.

* ``hotcold``: the stock Spike distribution's hot/cold splitting vs the
  paper's fine-grain splitting.
* ``split``: splitting without chaining.
* CFA: the conflict-free-area layout the authors tried and dropped --
  we reproduce the negative result.
* DCPI vs Pixie: how much the sampled profile costs vs exact counts.
"""

from conftest import save_table
from repro.cache import CacheGeometry
from repro.execution import CombinedAddressMap
from repro.harness.figures import Table
from repro.ir import assign_addresses
from repro.layout import SpikeOptimizer
from repro.profiles import DcpiProfiler
from repro.sim import MemoryHierarchy, simulate

GEOMETRY = CacheGeometry(64 * 1024, 128, 4)
HIERARCHY = MemoryHierarchy.l1i_only(GEOMETRY)


def _misses(streams) -> int:
    return simulate(list(streams), HIERARCHY).misses


def test_ablation_hotcold_and_split(benchmark, exp, results_dir):
    def compute():
        return {
            combo: _misses(exp.streams(combo, scope="app"))
            for combo in ("base", "chain", "split", "hotcold", "all")
        }

    misses = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        title="Extra ablation: hot/cold (stock Spike) and split-only layouts "
        "(64KB/128B/4-way, app only)",
        columns=["combo", "misses", "% of base"],
        rows=[
            [c, m, round(100 * m / misses["base"], 1)] for c, m in misses.items()
        ],
        notes=[
            "hotcold approximates fine-grain splitting for this workload; "
            "split without chaining recovers only part of the gain",
        ],
    )
    save_table(table, "ablation_hotcold_split", results_dir)
    assert misses["hotcold"] < misses["base"]
    # Splitting alone neither helps nor hurts much (paper: "adding
    # splitting ... alone does not improve performance significantly").
    assert 0.85 * misses["base"] < misses["split"] < 1.15 * misses["base"]
    # And it cannot match the chaining-based pipelines.
    assert misses["split"] > 1.5 * misses["all"]


def test_ablation_cfa_negative_result(benchmark, exp, results_dir):
    """The CFA reserved area is too small for OLTP traces (paper 2)."""

    def compute():
        layout, report = exp.optimizer.cfa(
            cache_bytes=GEOMETRY.size_bytes, reserved_fraction=0.25
        )
        amap = CombinedAddressMap(
            assign_addresses(exp.app.binary, layout),
            exp.address_map("base").kernel_map,
        )
        streams = []
        for cpu in exp.trace.cpus:
            blocks = cpu.blocks[cpu.blocks < exp.trace.kernel_offset]
            streams.append(amap.expand_spans(blocks))
        misses = _misses(streams)
        return report, misses

    report, cfa_misses = benchmark.pedantic(compute, rounds=1, iterations=1)
    all_misses = _misses(exp.streams("all", scope="app"))
    table = Table(
        title="CFA (software trace cache) at 64KB with 25% reserved",
        columns=["metric", "value"],
        rows=[
            ["reserved_bytes", report.reserved_bytes],
            ["hot_units_placed", report.hot_units],
            ["hot_overflow_KB", report.hot_overflow_bytes // 1024],
            ["cfa_misses", cfa_misses],
            ["all_misses", all_misses],
        ],
        notes=[
            "paper: the hot-trace footprint dwarfs any reasonable reserved "
            "area, so CFA yields no gains over the standard pipeline",
        ],
    )
    save_table(table, "ablation_cfa", results_dir)
    # The negative result: massive overflow, no improvement over 'all'.
    assert report.hot_overflow_bytes > 4 * report.reserved_bytes
    assert cfa_misses > all_misses * 0.9


def test_ablation_dcpi_vs_pixie_profile(benchmark, exp, results_dir):
    """Optimizing from a sampled (DCPI) profile still captures most of
    the win -- block-count-estimated edges are what the paper's kernel
    profiling had to use."""

    def compute():
        # Real DCPI sessions run for hours; our trace is short, so the
        # sampling period is scaled to give a comparable number of
        # samples per hot block (~15).
        profiler = DcpiProfiler(exp.app.binary, period=64)
        for stream in exp.trace.per_process_app_streams():
            profiler.add_stream(stream)
        sampled = profiler.profile()
        optimizer = SpikeOptimizer(exp.app.binary, sampled)
        layout = optimizer.layout("all")
        amap = CombinedAddressMap(
            assign_addresses(exp.app.binary, layout),
            exp.address_map("base").kernel_map,
        )
        streams = []
        for cpu in exp.trace.cpus:
            blocks = cpu.blocks[cpu.blocks < exp.trace.kernel_offset]
            streams.append(amap.expand_spans(blocks))
        return _misses(streams)

    dcpi_misses = benchmark.pedantic(compute, rounds=1, iterations=1)
    pixie_misses = _misses(exp.streams("all", scope="app"))
    base_misses = _misses(exp.streams("base", scope="app"))
    table = Table(
        title="Profile quality: exact (Pixie) vs sampled (DCPI) profiles "
        "driving the full pipeline (64KB/128B/4-way)",
        columns=["profile", "misses", "% of base"],
        rows=[
            ["base (no opt)", base_misses, 100.0],
            ["pixie-driven", pixie_misses,
             round(100 * pixie_misses / base_misses, 1)],
            ["dcpi-driven", dcpi_misses,
             round(100 * dcpi_misses / base_misses, 1)],
        ],
    )
    save_table(table, "ablation_dcpi_profile", results_dir)
    # Sampling loses some precision but keeps the bulk of the benefit.
    assert dcpi_misses < 0.8 * base_misses
