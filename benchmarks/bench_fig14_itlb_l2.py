"""Figure 14: iTLB and shared unified L2 behaviour."""

from conftest import save_table
from repro.harness import figures


def test_fig14_itlb_and_l2(benchmark, exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.fig14_itlb_l2(exp), rounds=1, iterations=1
    )
    save_table(table, "fig14_itlb_l2", results_dir)
    rows = {r[0]: r[1:] for r in table.rows}
    base_itlb, base_l2i, base_l2d = rows["base"]
    opt_itlb, opt_l2i, opt_l2d = rows["all"]
    # Layout optimization reduces iTLB misses (paper: better page packing).
    assert opt_itlb < base_itlb
    # L2 instruction misses drop.
    assert opt_l2i < base_l2i
    # L2 data misses stay roughly constant (within 25%).
    assert abs(opt_l2d - base_l2d) <= 0.25 * max(base_l2d, 1)
