"""Second extension set: hardware alternatives and another comparator.

* Victim cache: can a 16-entry victim buffer recover the layout gains?
  (No: OLTP instruction misses are mostly capacity, which is the
  paper's argument for software layout.)
* Temporal ordering (Gloy et al.): the trace-affinity comparator.
* Taken-branch rate: the front-end side effect of chaining.
"""

from conftest import save_table
from repro.analysis import branch_stats, merge_branch_stats
from repro.cache import CacheGeometry, simulate_victim_cache
from repro.execution import CombinedAddressMap
from repro.harness.figures import Table
from repro.ir import assign_addresses
from repro.layout import temporal_order
from repro.sim import MemoryHierarchy, simulate

GEOMETRY = CacheGeometry(64 * 1024, 128, 4)
HIERARCHY = MemoryHierarchy.l1i_only(GEOMETRY)


def _misses(streams) -> int:
    return simulate(list(streams), HIERARCHY).misses


def test_extension_victim_cache(benchmark, exp, results_dir):
    geometry = CacheGeometry(64 * 1024, 128, 1)

    def compute():
        out = {}
        for combo in ("base", "all"):
            raw = hits = 0
            for starts, counts in exp.streams(combo, scope="app"):
                result = simulate_victim_cache(starts, counts, geometry, 16)
                raw += result.raw_misses
                hits += result.victim_hits
            out[combo] = (raw, hits)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for combo, (raw, hits) in results.items():
        rows.append([combo, raw, hits, raw - hits,
                     round(100 * hits / raw, 1)])
    table = Table(
        title="Extension: 16-entry victim cache vs code layout "
        "(64KB direct-mapped)",
        columns=["binary", "raw_misses", "victim_hits", "remaining",
                 "absorbed_%"],
        rows=rows,
        notes=[
            "a victim cache absorbs conflict misses only; layout removes "
            "capacity misses too -- base+victim stays far above optimized",
        ],
    )
    save_table(table, "ext_victim_cache", results_dir)
    base_raw, base_hits = results["base"]
    opt_raw, _ = results["all"]
    # Hardware fix on the base binary never reaches the optimized binary.
    assert (base_raw - base_hits) > opt_raw


def test_extension_temporal_ordering(benchmark, exp, results_dir):
    def compute():
        units = exp.optimizer._proc_units(chained=False)
        streams = [exp.trace.app_block_stream(i)
                   for i in range(len(exp.trace.cpus))]
        layout = temporal_order(
            exp.app.binary, units, streams, exp.profile.block_counts,
            window=24,
        )
        amap = CombinedAddressMap(
            assign_addresses(exp.app.binary, layout),
            exp.address_map("base").kernel_map,
        )
        span_streams = []
        for cpu in exp.trace.cpus:
            blocks = cpu.blocks[cpu.blocks < exp.trace.kernel_offset]
            span_streams.append(amap.expand_spans(blocks))
        return _misses(span_streams)

    temporal_misses = benchmark.pedantic(compute, rounds=1, iterations=1)
    base = _misses(exp.streams("base", scope="app"))
    porder = _misses(exp.streams("porder", scope="app"))
    full = _misses(exp.streams("all", scope="app"))
    table = Table(
        title="Related-work comparator: temporal ordering (Gloy et al.) "
        "at whole-procedure granularity (64KB/128B/4-way)",
        columns=["layout", "misses", "% of base"],
        rows=[
            ["base", base, 100.0],
            ["porder (call graph)", porder, round(100 * porder / base, 1)],
            ["temporal (TRG)", temporal_misses,
             round(100 * temporal_misses / base, 1)],
            ["all (full pipeline)", full, round(100 * full / base, 1)],
        ],
        notes=[
            "paper 6: placement-only schemes, whatever the affinity "
            "metric, cannot match chaining+splitting on OLTP footprints",
        ],
    )
    save_table(table, "ext_temporal", results_dir)
    assert temporal_misses > 1.5 * full


def test_extension_taken_branch_rate(benchmark, exp, results_dir):
    def compute():
        out = {}
        for combo in ("base", "chain", "all"):
            stats = merge_branch_stats(
                branch_stats(s, c) for s, c in exp.streams(combo, scope="app")
            )
            out[combo] = stats
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [combo, stats.transitions, stats.breaks,
         round(100 * stats.break_fraction, 2),
         round(1000 * stats.breaks_per_instruction, 2)]
        for combo, stats in results.items()
    ]
    table = Table(
        title="Extension: fetch-stream breaks (taken branches/calls/"
        "returns) per layout",
        columns=["layout", "transitions", "breaks", "break_%",
                 "breaks_per_kinstr"],
        rows=rows,
        notes=[
            "chaining biases conditional branches not-taken and deletes "
            "unconditional branches: fewer front-end redirects",
        ],
    )
    save_table(table, "ext_branch_rate", results_dir)
    assert results["chain"].break_fraction < results["base"].break_fraction
    assert results["all"].breaks_per_instruction < \
        results["base"].breaks_per_instruction
