"""Online adaptation: static-layout decay vs adaptive recovery.

The paper's layouts are trained once, offline; Section 5's
interference results already hint at what happens when the executed
mix stops matching the training profile.  This benchmark drives the
phase-shifting TPC-B -> DSS workload through the ``repro.online``
loop and records, epoch by epoch, the miss rate of the never-updated
static layout, the adaptive controller, idealized offline
re-profiling (exact per-epoch profile, one-epoch deployment lag), and
the no-lag oracle.

Besides the usual text table this writes ``BENCH_online.json``, the
machine-readable report CI asserts on.
"""

from conftest import save_table
from repro.harness import write_benchmark_json
from repro.harness.experiment import Experiment
from repro.harness.figures import Table
from repro.online import OnlineConfig, phased_experiment_config, run_online_experiment


def test_online_adaptive_recovery(benchmark, results_dir):
    def compute():
        exp = Experiment(phased_experiment_config())
        return run_online_experiment(exp, OnlineConfig(epochs=6))

    report = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        title="online adaptation on a TPC-B -> DSS phase shift "
        "(16KB/64B/2-way, app only, MPKI)",
        columns=[
            "epoch", "static", "adaptive", "reprofiled", "oracle",
            "score", "action",
        ],
        rows=[
            [
                row.epoch,
                round(row.static_mpki, 3),
                round(row.adaptive_mpki, 3),
                round(row.reprofiled_mpki, 3),
                round(row.oracle_mpki, 3),
                round(row.drift_score, 3),
                row.action,
            ]
            for row in report.rows
        ],
        notes=[
            "static = offline TPC-B-trained layout, never updated; "
            "adaptive = sampled drift-gated re-layout (one-epoch lag); "
            "reprofiled = exact per-epoch profile with the same lag",
            f"final epoch: adaptive at {report.recovery_ratio:.3f}x "
            f"re-profiling, static decayed to {report.decay_ratio:.3f}x",
        ],
    )
    save_table(table, "online_adaptive", results_dir)
    write_benchmark_json("online", report.to_dict(), results_dir)

    # The static layout decays measurably after the shift...
    assert report.decay_ratio > 1.5
    # ...while the adaptive loop recovers to within 10% of offline
    # re-profiling and beats the decayed static layout outright.
    assert report.passes(margin=1.10)
