"""Figures 4 and 5: the cache-size x line-size sweep, base vs optimized."""

from conftest import save_table
from repro.harness import figures

_grids = {}


def _grid(exp, combo):
    if combo not in _grids:
        _grids[combo] = figures.fig04_cache_sweep(exp, combo)
    return _grids[combo]


def test_fig04_baseline_sweep(benchmark, exp, results_dir):
    grid = benchmark.pedantic(lambda: _grid(exp, "base"), rounds=1, iterations=1)
    save_table(figures.fig04_table(grid, "base"), "fig04a_base_sweep", results_dir)
    # Misses decrease with cache size at fixed line size.
    for line in figures.SWEEP_LINES:
        series = [grid[(s, line)] for s in figures.SWEEP_SIZES]
        assert series == sorted(series, reverse=True)


def test_fig04_optimized_sweep(benchmark, exp, results_dir):
    grid = benchmark.pedantic(lambda: _grid(exp, "all"), rounds=1, iterations=1)
    save_table(figures.fig04_table(grid, "all"), "fig04b_optimized_sweep", results_dir)


def test_fig05_relative_misses(benchmark, exp, results_dir):
    base = _grid(exp, "base")
    opt = _grid(exp, "all")
    table = benchmark.pedantic(
        lambda: figures.fig05_relative(base, opt), rounds=1, iterations=1
    )
    save_table(table, "fig05_relative", results_dir)
    # Headline: a 45%+ reduction at 64-128KB with 128B lines.
    for size_kb in (64, 128):
        ratio = opt[(size_kb * 1024, 128)] / base[(size_kb * 1024, 128)]
        assert ratio < 0.55, f"only {1 - ratio:.0%} reduction at {size_kb}KB"
