"""Text Section 5: hardware-counter style measurements.

Reproduces the 21164/AlphaServer-4100 numbers the paper reports from
DCPI: instruction-cache misses (8KB direct-mapped), iTLB misses
(48 entries), board-cache misses (2MB direct-mapped) -- plus the
multiprocessor-vs-uniprocessor speedup comparison and the
kernel-layout-optimization experiment.
"""

from conftest import save_table
from repro.harness.figures import Table
from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.timing import ALPHA_21164, estimate_cycles, relative_execution_time


def _reduction(base: float, opt: float) -> float:
    return 100.0 * (1 - opt / max(base, 1))


def test_text_21164_hardware_counters(benchmark, uni_exp, results_dir):
    def compute():
        hierarchy = MemoryHierarchy(
            l1i=CacheGeometry(8 * 1024, 32, 1),
            l2=CacheGeometry(2 * 1024 * 1024, 64, 1),
            dcache=CacheGeometry(8 * 1024, 32, 1),
            itlb_entries=48,
        )
        data = list(zip(uni_exp.trace.data_addresses,
                        uni_exp.trace.data_positions))
        out = {}
        for combo in ("base", "all"):
            result = simulate(
                uni_exp.streams(combo, scope="combined"),
                hierarchy,
                data_streams=data,
            )
            out[combo] = (result.l1i_misses, result.itlb.misses,
                          result.l2.misses)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    base, opt = results["base"], results["all"]
    table = Table(
        title="Text 5: 21164-style hardware counters (8KB I$, 48-entry iTLB, "
        "2MB board cache)",
        columns=["metric", "base", "optimized", "reduction_%"],
        rows=[
            ["icache_misses", base[0], opt[0], round(_reduction(base[0], opt[0]), 1)],
            ["itlb_misses", base[1], opt[1], round(_reduction(base[1], opt[1]), 1)],
            ["board_misses", base[2], opt[2], round(_reduction(base[2], opt[2]), 1)],
        ],
        notes=["paper: -28% icache, -43% iTLB, -39% board cache"],
    )
    save_table(table, "text_21164_counters", results_dir)
    assert _reduction(base[0], opt[0]) > 15
    assert _reduction(base[1], opt[1]) > 25


def test_text_multiprocessor_vs_uniprocessor(benchmark, exp, uni_exp, results_dir):
    def speedup(experiment):
        data = list(zip(experiment.trace.data_addresses,
                        experiment.trace.data_positions))
        breakdowns = {
            combo: estimate_cycles(
                list(experiment.streams(combo, scope="combined")),
                ALPHA_21164, data,
            )
            for combo in ("base", "all")
        }
        rel = relative_execution_time(breakdowns)
        return 100.0 / rel["all"]

    uni = benchmark.pedantic(lambda: speedup(uni_exp), rounds=1, iterations=1)
    multi = speedup(exp)
    table = Table(
        title="Text 5: layout speedup, 1-processor vs 4-processor runs",
        columns=["configuration", "speedup_x"],
        rows=[["1 CPU", round(uni, 3)], ["4 CPUs", round(multi, 3)]],
        notes=["paper: 1.33x on 1 CPU vs 1.25x on 4 CPUs (21164)"],
    )
    save_table(table, "text_mp_vs_up", results_dir)
    assert uni > 1.04
    assert multi > 1.0


def test_text_kernel_layout_optimization(benchmark, exp, results_dir):
    """Optimizing the OS layout yields only a small gain (paper: 3.5%)."""

    def compute():
        hierarchy = MemoryHierarchy.l1i_only(CacheGeometry(64 * 1024, 128, 4))
        base = simulate(
            exp.streams("all", scope="combined", kernel_combo="base"),
            hierarchy,
        ).misses
        opt = simulate(
            exp.streams("all", scope="combined", kernel_combo="all"),
            hierarchy,
        ).misses
        return base, opt

    base, opt = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        title="Text 5: optimizing the kernel layout too (combined misses, "
        "64KB/128B/4-way, app already optimized)",
        columns=["kernel_layout", "combined_misses"],
        rows=[["base", base], ["optimized", opt],
              ["reduction_%", round(100 * (1 - opt / max(base, 1)), 1)]],
        notes=["paper: only ~3.5% execution-time gain from kernel layout"],
    )
    save_table(table, "text_kernel_opt", results_dir)
    # Small effect: well under the application-side gains.
    assert abs(base - opt) < 0.30 * base
