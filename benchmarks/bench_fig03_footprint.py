"""Figure 3: execution profile of the unoptimized application binary."""

from conftest import save_table
from repro.harness import figures


def test_fig03_execution_profile(benchmark, exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.fig03_execution_profile(exp), rounds=1, iterations=1
    )
    save_table(table, "fig03_footprint", results_dir)
    rows = dict((r[0], r[1]) for r in table.rows)
    # Shape checks: large, flat-ish footprint.
    assert max(rows) >= 100  # at least 100KB of touched code
    if 50 in rows:
        assert rows[50] < 99.0  # 50KB must not capture everything
