"""Shared fixtures for the benchmark suite.

The heavy pipeline products (generated binaries, profile run,
measurement trace, layouts) are computed once per session by the
``exp`` fixture and shared by every figure benchmark.  They also
persist in the artifact cache (``$REPRO_CACHE_DIR``, default
``~/.cache/repro``) so a re-run of the suite after analysis-only
changes skips the regeneration entirely; set ``REPRO_NO_CACHE=1`` to
force recomputation and ``REPRO_JOBS=N`` to fan sweep cells across
worker processes.
"""

import os
import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


def _configure(experiment):
    from repro.harness import ArtifactStore, default_cache_dir

    if not os.environ.get("REPRO_NO_CACHE"):
        experiment.attach_store(ArtifactStore(default_cache_dir()))
    experiment.jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    return experiment


@pytest.fixture(scope="session")
def results_dir():
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


@pytest.fixture(scope="session")
def exp():
    from repro.harness import default_experiment

    experiment = _configure(default_experiment())
    _ = experiment.profile  # profiling run
    _ = experiment.trace    # measurement run
    return experiment


@pytest.fixture(scope="session")
def uni_exp():
    from repro.harness import uniprocessor_experiment

    experiment = _configure(uniprocessor_experiment())
    _ = experiment.profile
    _ = experiment.trace
    return experiment


def save_table(table, name, results_dir):
    from repro.harness import write_benchmark_json

    text = table.render()
    (results_dir / f"{name}.txt").write_text(text)
    write_benchmark_json(name, table, results_dir)
    print("\n" + text)
    return text
