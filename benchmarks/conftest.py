"""Shared fixtures for the benchmark suite.

The heavy pipeline products (generated binaries, profile run,
measurement trace, layouts) are computed once per session by the
``exp`` fixture and shared by every figure benchmark.
"""

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


@pytest.fixture(scope="session")
def exp():
    from repro.harness import default_experiment

    experiment = default_experiment()
    _ = experiment.profile  # profiling run
    _ = experiment.trace    # measurement run
    return experiment


@pytest.fixture(scope="session")
def uni_exp():
    from repro.harness import uniprocessor_experiment

    experiment = uniprocessor_experiment()
    _ = experiment.profile
    _ = experiment.trace
    return experiment


def save_table(table, name, results_dir):
    text = table.render()
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text
