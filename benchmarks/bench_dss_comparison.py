"""OLTP vs DSS: the workload contrast the paper builds on.

"Applications such as decision support (DSS) ... have been shown to be
relatively insensitive to memory system performance"; the authors'
earlier software-trace-cache work targeted DSS, "which has a much
better instruction cache behavior than OLTP".  This benchmark runs the
same engine and the same binaries under both workloads and compares
baseline miss rates and the payoff from layout optimization.
"""

from conftest import save_table
from repro.cache import CacheGeometry
from repro.harness import dss_experiment
from repro.harness.figures import Table
from repro.sim import MemoryHierarchy, simulate

GEOMETRY = CacheGeometry(64 * 1024, 128, 4)


def _mpki(exp, combo):
    result = simulate(
        exp.streams(combo, scope="app"), MemoryHierarchy.l1i_only(GEOMETRY)
    )
    return result.misses, result.mpki


def test_dss_vs_oltp_cache_behavior(benchmark, exp, results_dir):
    def compute():
        dss = dss_experiment()
        _ = dss.profile
        _ = dss.trace
        out = {}
        for name, experiment in (("OLTP", exp), ("DSS", dss)):
            base_misses, base_mpki = _mpki(experiment, "base")
            opt_misses, opt_mpki = _mpki(experiment, "all")
            out[name] = (base_mpki, opt_mpki,
                         100.0 * (1 - opt_misses / base_misses))
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, round(base, 3), round(opt, 3), round(reduction, 1)]
        for name, (base, opt, reduction) in results.items()
    ]
    table = Table(
        title="OLTP vs DSS on the same binaries (64KB/128B/4-way, app only)",
        columns=["workload", "base_MPKI", "optimized_MPKI", "reduction_%"],
        rows=rows,
        notes=[
            "paper 1/6: DSS is relatively insensitive to the memory "
            "system -- its baseline miss rate is far below OLTP's, so "
            "layout has much less to win",
        ],
    )
    save_table(table, "dss_vs_oltp", results_dir)
    oltp_base = results["OLTP"][0]
    dss_base = results["DSS"][0]
    # DSS baseline runs at a small fraction of OLTP's miss rate.
    assert dss_base < 0.5 * oltp_base
    # And layout gains less on DSS (absolute MPKI improvement).
    oltp_gain = results["OLTP"][0] - results["OLTP"][1]
    dss_gain = results["DSS"][0] - results["DSS"][1]
    assert dss_gain < oltp_gain
