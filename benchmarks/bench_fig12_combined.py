"""Figure 12: combined application + operating-system streams."""

from conftest import save_table
from repro.harness import figures


def test_fig12_combined_streams(benchmark, exp, results_dir):
    base_table = benchmark.pedantic(
        lambda: figures.fig12_combined(exp, "base"), rounds=1, iterations=1
    )
    opt_table = figures.fig12_combined(exp, "all")
    save_table(base_table, "fig12a_combined_base", results_dir)
    save_table(opt_table, "fig12b_combined_optimized", results_dir)

    base = {r[0]: r for r in base_table.rows}
    opt = {r[0]: r for r in opt_table.rows}
    for size_kb in (64, 128):
        _s, combined_b, app_b, kernel_b = base[size_kb]
        _s, combined_o, app_o, kernel_o = opt[size_kb]
        # Interference: combined > app-isolated + a bit.
        assert combined_b > app_b
        assert combined_o > app_o
        # Kernel in isolation is the smallest component.
        assert kernel_b < app_b
        # Combined reduction is a bit smaller than isolated reduction
        # (paper: 45-60% combined vs 55-65% isolated), and still large.
        reduction = 1 - combined_o / combined_b
        assert reduction > 0.35
        isolated_reduction = 1 - app_o / app_b
        assert reduction <= isolated_reduction + 0.05
