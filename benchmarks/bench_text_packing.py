"""Text Section 4.1: code-packing metrics (footprint in cache lines)."""

from conftest import save_table
from repro.harness import figures


def test_text_packing_footprint(benchmark, exp, results_dir):
    table = benchmark.pedantic(
        lambda: figures.text_packing(exp), rounds=1, iterations=1
    )
    save_table(table, "text_packing", results_dir)
    rows = {r[0]: r for r in table.rows}
    base_lines = rows["base"][1]
    opt_lines = rows["optimized"][1]
    # Paper: 37% smaller footprint in 128B lines; require a clear shrink.
    assert opt_lines < base_lines * 0.92
