#!/usr/bin/env python
"""End-to-end OLTP layout study -- a miniature of the whole paper.

Builds the synthetic database-engine binary and kernel, runs TPC-B on
the 4-CPU system model, collects a Pixie profile, produces every
optimization combination, and reports instruction-cache misses,
sequence lengths and estimated execution time.

Run:  python examples/oltp_layout_study.py          (quick preset)
      python examples/oltp_layout_study.py --full   (paper-scale preset)
"""

import argparse
import time

from repro.analysis import merge_sequence_stats, sequence_lengths
from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.harness import default_experiment, quick_experiment
from repro.layout import PAPER_COMBOS
from repro.timing import ALPHA_21264, estimate_cycles, relative_execution_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper-scale experiment (slower)")
    args = parser.parse_args()

    t0 = time.time()
    exp = default_experiment() if args.full else quick_experiment()
    profile = exp.profile
    print(f"[{time.time() - t0:5.1f}s] profiled "
          f"{profile.total_instructions:,} instructions "
          f"({exp.app.binary.num_procedures} procedures, "
          f"{exp.app.binary.static_size * 4 // 1024} KB static)")

    trace = exp.trace
    total_blocks = sum(cpu.num_blocks for cpu in trace.cpus)
    print(f"[{time.time() - t0:5.1f}s] measurement trace: "
          f"{trace.transactions} transactions, {total_blocks:,} blocks "
          f"across {len(trace.cpus)} CPUs")

    cache = CacheGeometry(64 * 1024, 128, 4)
    data = list(zip(trace.data_addresses, trace.data_positions))
    print(f"\n{'combo':>14} {'misses':>10} {'% base':>7} {'seq':>6} {'time%':>7}")
    base_misses = None
    breakdowns = {}
    for combo in PAPER_COMBOS:
        streams = exp.streams(combo, scope="app")
        misses = simulate(streams, MemoryHierarchy.l1i_only(cache)).misses
        if base_misses is None:
            base_misses = misses
        stats = merge_sequence_stats(
            [sequence_lengths(s, c) for s, c in streams]
        )
        breakdowns[combo] = estimate_cycles(
            exp.streams(combo, scope="combined"), ALPHA_21264, data
        )
        rel = 100 * breakdowns[combo].total_cycles / breakdowns["base"].total_cycles
        print(f"{combo:>14} {misses:>10,} {100 * misses / base_misses:>6.1f}% "
              f"{stats.mean_length:>6.2f} {rel:>6.1f}%")

    rel = relative_execution_time(breakdowns)
    speedup = 100.0 / rel["all"]
    print(f"\nfully optimized: {100 - rel['all']:.1f}% fewer non-idle cycles "
          f"({speedup:.2f}x speedup; paper reports 1.33x)")


if __name__ == "__main__":
    main()
