#!/usr/bin/env python
"""Quickstart: optimize a tiny synthetic binary and watch misses drop.

Builds a small program in the binary IR, profiles a synthetic
execution, runs the full Spike-style pipeline (chaining + fine-grain
splitting + Pettis-Hansen ordering), and compares instruction-cache
misses before and after.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.ir import Binary, Procedure, Terminator, assign_addresses
from repro.layout import SpikeOptimizer
from repro.profiles import PixieProfiler


def build_program() -> Binary:
    """A toy program: a dispatcher calling two handlers, one hot."""
    binary = Binary("toy")

    dispatcher = Procedure("dispatch")
    dispatcher.add_block("entry", 6, Terminator.COND_BRANCH,
                         succs=("cold_case", "hot_case"))
    dispatcher.add_block("hot_case", 4, Terminator.CALL,
                         succs=("join",), call_target="handle_hot")
    dispatcher.add_block("cold_case", 60, Terminator.CALL,
                         succs=("join",), call_target="handle_cold")
    dispatcher.add_block("join", 3, Terminator.RETURN)
    binary.add_procedure(dispatcher)

    hot = Procedure("handle_hot")
    hot.add_block("entry", 8, Terminator.COND_BRANCH, succs=("error", "work"))
    hot.add_block("error", 80, Terminator.UNCOND_BRANCH, succs=("out",))
    hot.add_block("work", 12, Terminator.FALLTHROUGH, succs=("out",))
    hot.add_block("out", 4, Terminator.RETURN)
    binary.add_procedure(hot)

    cold = Procedure("handle_cold")
    cold.add_block("entry", 100, Terminator.RETURN)
    binary.add_procedure(cold)

    binary.seal()
    return binary


def synthetic_trace(binary: Binary, iterations: int = 2000) -> list:
    """The block ids one profiled execution would visit."""
    d = binary.proc("dispatch")
    h = binary.proc("handle_hot")
    trace = []
    for i in range(iterations):
        trace.append(d.block("entry").bid)
        if i % 50 == 49:  # rare cold case
            trace.append(d.block("cold_case").bid)
            trace.append(binary.proc("handle_cold").block("entry").bid)
        else:
            trace.append(d.block("hot_case").bid)
            trace.append(h.block("entry").bid)
            trace.append(h.block("work").bid)
            trace.append(h.block("out").bid)
        trace.append(d.block("join").bid)
    return trace


def miss_count(binary, layout, trace, cache):
    amap = assign_addresses(binary, layout)
    blocks = np.asarray(trace, dtype=np.int64)
    starts = amap.addr[blocks]
    counts = amap.n_fetch[blocks].astype(np.int64)
    return simulate([(starts, counts)], MemoryHierarchy.l1i_only(cache)).misses


def main() -> None:
    binary = build_program()
    trace = synthetic_trace(binary)

    profiler = PixieProfiler(binary)
    profiler.add_stream(trace)
    profile = profiler.profile()

    optimizer = SpikeOptimizer(binary, profile)
    cache = CacheGeometry(256, 32, 2)  # a deliberately tiny cache

    print(f"{'layout':>14}  misses")
    for combo in ("base", "chain", "chain+split", "all"):
        layout = optimizer.layout(combo)
        misses = miss_count(binary, layout, trace, cache)
        print(f"{combo:>14}  {misses}")

    base = miss_count(binary, optimizer.layout("base"), trace, cache)
    best = miss_count(binary, optimizer.layout("all"), trace, cache)
    print(f"\nmiss reduction: {100 * (1 - best / base):.0f}%")


if __name__ == "__main__":
    main()
