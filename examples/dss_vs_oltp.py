#!/usr/bin/env python
"""DSS vs OLTP: why the paper is about transaction processing.

Runs read-only decision-support queries and TPC-B transactions over
the same database engine and the same generated binary, then compares
their instruction-cache behaviour and the payoff from layout
optimization.  (DSS spends its time in tight scan loops with a tiny
code footprint; OLTP sprawls across the engine -- which is exactly
why the paper targets OLTP.)

Run:  python examples/dss_vs_oltp.py
"""

from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.harness import Experiment, ExperimentConfig
from repro.osmodel import KernelCodeConfig
from repro.progen import AppCodeConfig
from repro.workloads import DssConfig, DssWorkload, TpcbConfig


def small_config(workload_factory=None, transactions=40):
    return ExperimentConfig(
        app=AppCodeConfig(scale=1.5, filler_routines=120,
                          filler_instructions=60_000),
        kernel=KernelCodeConfig(scale=1.0, filler_routines=20,
                                filler_instructions=8_000),
        tpcb=TpcbConfig(branches=8, accounts_per_branch=150),
        profile_transactions=transactions,
        measure_transactions=transactions,
        warmup_transactions=8,
        workload_factory=workload_factory,
    )


def mpki(exp, combo, cache):
    streams = exp.streams(combo, scope="app")
    misses = simulate(streams, MemoryHierarchy.l1i_only(cache)).misses
    instructions = sum(int(c.sum()) for _, c in streams)
    return 1000.0 * misses / instructions


def main() -> None:
    cache = CacheGeometry(16 * 1024, 128, 2)  # small cache, small config
    oltp = Experiment(small_config())
    dss = Experiment(small_config(
        workload_factory=lambda tpcb, _o: DssWorkload(DssConfig(tpcb=tpcb)),
        transactions=24,
    ))

    print(f"{'workload':>9} {'base MPKI':>10} {'opt MPKI':>9} {'reduction':>10}")
    for name, exp in (("OLTP", oltp), ("DSS", dss)):
        base = mpki(exp, "base", cache)
        opt = mpki(exp, "all", cache)
        print(f"{name:>9} {base:>10.2f} {opt:>9.2f} {100 * (1 - opt / base):>9.1f}%")

    print("\nDSS misses far less to begin with -- the paper's motivation "
          "for studying OLTP.")


if __name__ == "__main__":
    main()
