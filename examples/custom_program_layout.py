#!/usr/bin/env python
"""Bring your own program: describe routines in the DSL, lay them out.

Shows the full user-facing workflow for code outside the TPC-B model:

1. describe routines with the CFG DSL (blocks, branches, loops, calls);
2. compile them into a binary;
3. execute them through the CFG interpreter with semantic bindings;
4. profile, optimize, and measure the layouts.

The example models a tiny network server: a poll loop dispatching
request handlers with an error path that the unprofiled layout places
right in the middle of the hot code.

Run:  python examples/custom_program_layout.py
"""

import numpy as np

from repro.cache import CacheGeometry
from repro.sim import MemoryHierarchy, simulate
from repro.db.instrument import CallEvent
from repro.execution.interpreter import CfgWalker
from repro.ir import assign_addresses
from repro.layout import SpikeOptimizer
from repro.profiles import PixieProfiler
from repro.progen import (
    Call,
    ColdPath,
    If,
    Loop,
    RoutineSpec,
    Straight,
    SubCall,
    build_binary,
)


def build_server() -> "CompiledProgram":
    specs = [
        RoutineSpec("checksum", body=[Straight(6), Loop("words", body=[Straight(4)])]),
        RoutineSpec("parse_request", body=[
            Straight(10),
            Loop("headers", body=[Straight(8), SubCall("checksum")]),
            If("keepalive", then=[Straight(5)], orelse=[Straight(9)]),
            ColdPath(80, blocks=4, inline=True),  # malformed-request path
        ]),
        RoutineSpec("handle_get", body=[
            Straight(14),
            Call("parse_request"),
            If("cached", then=[Straight(8)], orelse=[Straight(25)]),
            ColdPath(60, blocks=3),
        ]),
        RoutineSpec("handle_post", body=[
            Straight(18),
            Call("parse_request"),
            Straight(30),
            ColdPath(90, blocks=5),
        ]),
        RoutineSpec("poll_loop", body=[
            Straight(8),
            If("is_get",
               then=[Call("handle_get")],
               orelse=[Call("handle_post")]),
            Straight(6),
        ]),
    ]
    return build_binary(specs, name="server")


def request_event(is_get: bool, cached: bool, salt: int) -> CallEvent:
    """One request's dynamic call tree with its semantic bindings."""
    parse = CallEvent("parse_request", {
        "headers": 3 + salt % 3, "keepalive": salt % 4 != 0,
        "words": 4 + salt % 5, "salt": salt,
    })
    handler_name = "handle_get" if is_get else "handle_post"
    handler = CallEvent(handler_name, {"cached": cached, "salt": salt})
    handler.children = [parse]
    event = CallEvent("poll_loop", {"is_get": is_get, "salt": salt})
    event.children = [handler]
    return event


def main() -> None:
    program = build_server()
    print(f"compiled {program.binary}")

    # A kernel is required by the walker; this program makes no syscalls,
    # so an empty stub binary suffices.
    kernel = build_binary([RoutineSpec("k.none", body=[Straight(1)])], "nokernel")
    walker = CfgWalker(program, kernel)

    # Simulate 5000 requests: 90% GETs, 70% of those cached.
    trace: list = []
    for i in range(5000):
        event = request_event(is_get=(i % 10 != 0), cached=(i % 10 < 7), salt=i)
        walker.walk_event(event, trace)
    blocks = np.asarray(trace, dtype=np.int64)
    print(f"executed {len(blocks):,} basic blocks")

    profiler = PixieProfiler(program.binary)
    profiler.add_stream(blocks)
    optimizer = SpikeOptimizer(program.binary, profiler.profile())

    cache = CacheGeometry(1024, 64, 1)  # tiny cache to make misses visible
    print(f"\n{'layout':>12} {'misses':>8} {'bytes':>7}")
    for combo in ("base", "chain", "all"):
        layout = optimizer.layout(combo)
        amap = assign_addresses(program.binary, layout)
        starts = amap.addr[blocks]
        counts = amap.n_fetch[blocks].astype(np.int64)
        misses = simulate([(starts, counts)], MemoryHierarchy.l1i_only(cache)).misses
        print(f"{combo:>12} {misses:>8,} {amap.total_bytes:>7,}")


if __name__ == "__main__":
    main()
