#!/usr/bin/env python
"""The mini-DBMS on its own: TPC-B banking transactions with ACID checks.

Demonstrates the database substrate without any layout machinery:
loading a scaled TPC-B database, running transactions, inspecting the
buffer pool / WAL / lock manager, aborting a transaction, and replaying
the log after a simulated crash.

Run:  python examples/tpcb_database_demo.py
"""

from repro.db import Engine, LockWait
from repro.db.wal import replay
from repro.workloads import TpcbConfig, TpcbGenerator, TpcbTransaction, load_database


def main() -> None:
    config = TpcbConfig(branches=8, accounts_per_branch=500, seed=11)
    engine = Engine(pool_capacity=1024, btree_order=64)
    load_database(engine, config)
    print(f"loaded {config.accounts:,} accounts, {config.tellers} tellers, "
          f"{config.branches} branches "
          f"({engine.store.num_pages} pages on disk)")

    # Run a batch of transactions from two interleaved clients.
    generators = [TpcbGenerator(config, client) for client in (0, 1)]
    net = 0
    for i in range(200):
        generator = generators[i % 2]
        request = generator.next_request()
        txn = TpcbTransaction(engine, request)
        while not txn.done:
            txn.run_step()
        net += request.delta
    print(f"ran 200 transactions, net delta {net:+,}")

    # ACID check: branch and teller balances both equal the net delta.
    txn = engine.begin()
    branch_total = sum(
        engine.get_row(txn, "branch", b)["balance"]
        for b in range(config.branches)
    )
    teller_total = sum(
        engine.get_row(txn, "teller", t)["balance"]
        for t in range(config.tellers)
    )
    engine.commit(txn)
    assert branch_total == teller_total == net
    print(f"balance conservation holds: {branch_total:+,}")

    # Locking: a second transaction blocks on a held row.
    txn1 = engine.begin()
    engine.update_row(txn1, "account", 0, deltas={"balance": 10})
    txn2 = engine.begin()
    try:
        engine.update_row(txn2, "account", 0, deltas={"balance": -10})
    except LockWait:
        print("txn2 parked on account 0's lock (as expected)")
    woken = engine.commit(txn1)
    print(f"txn1 commit woke txns {woken}")
    engine.update_row(txn2, "account", 0, deltas={"balance": -10})
    engine.commit(txn2)

    # Rollback: an aborted update leaves no trace.
    txn = engine.begin()
    before = engine.get_row(txn, "account", 1, for_update=True)["balance"]
    engine.update_row(txn, "account", 1, deltas={"balance": 999999})
    engine.abort(txn)
    txn = engine.begin()
    after = engine.get_row(txn, "account", 1)["balance"]
    engine.commit(txn)
    assert after == before
    print("abort rolled the balance back")

    # Crash recovery: drop the buffer pool, redo the hardened log.
    stats = f"{engine.pool.hits:,} hits / {engine.pool.misses:,} misses"
    print(f"buffer pool: {stats} ({engine.pool.hit_rate:.1%} hit rate)")
    print(f"WAL: {engine.log.flushes} flushes, "
          f"group sizes {engine.log.group_sizes[-5:]}")
    winners, applied = replay(engine.log.hardened_records(), engine.store)
    print(f"crash recovery: {winners} committed txns, "
          f"{applied} records re-applied idempotently")


if __name__ == "__main__":
    main()
