#!/usr/bin/env python3
"""Prove the stage-graph runner replays caches written by pre-pipeline code.

The `repro.pipeline` refactor promised cache-key compatibility: the
runner memoizes under the same ``(experiment fingerprint, artifact
name)`` keys the old hand-rolled ``Experiment._staged`` plumbing used,
so artifact stores written before the refactor replay warm through the
new graph.  The old code is gone from the tree, so this script
recreates its footprint exactly:

``write-legacy``
    Build every persistent stage product of the quick experiment with
    the store *detached*, then write the artifacts with raw
    ``ArtifactStore.save`` calls — the very calls pre-pipeline
    ``Experiment.persist()`` made, with the pre-pipeline artifact
    names, and zero :class:`~repro.pipeline.runner.PipelineRunner`
    involvement.

``replay``
    Open a fresh experiment on that store and touch every persistent
    stage through the pipeline.  Exit 0 only if **100 % of the stage
    records are cache hits** (no miss, no off) and the runner's
    ``status()`` sees every persistent stage ``ready``.

CI runs the pair back to back in the ``pipeline-equivalence`` job and
follows up with figure/scenario output comparisons.
Run as ``python tools/verify_pipeline_replay.py <mode> --cache-dir DIR``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness import Experiment, quick_experiment  # noqa: E402
from repro.harness.store import (  # noqa: E402
    ArtifactStore,
    save_profile,
    save_program,
    save_trace,
)

#: Stage records a warm replay of the persistent products must produce.
PERSISTENT_STAGES = ("codegen", "profile", "trace")


def _fresh_experiment(store=None) -> Experiment:
    """A quick-scale experiment with its own runner and run log.

    ``quick_experiment()`` is ``lru_cache``d — reusing the singleton
    would carry memoized artifacts between the write and replay halves
    and fake the result.
    """
    return Experiment(quick_experiment().config, store=store)


def write_legacy(store: ArtifactStore) -> int:
    """Populate the store exactly as pre-pipeline code did."""
    exp = _fresh_experiment(store=None)
    fingerprint = exp.fingerprint
    artifacts = (
        ("app.pkl", exp.app, save_program),
        ("kernel.pkl", exp.kernel, save_program),
        ("profile-app.npz", exp.profile, save_profile),
        ("profile-kernel.npz", exp.kernel_profile, save_profile),
        ("trace.npz", exp.trace, save_trace),
    )
    total = 0
    for name, obj, saver in artifacts:
        size = store.save(fingerprint, name, obj, saver)
        total += size
        print(f"  {name:<20} {size:>9} bytes")
    print(
        f"legacy cache written: {len(artifacts)} artifacts, "
        f"{total} bytes under {fingerprint}"
    )
    return 0


def replay(store: ArtifactStore) -> int:
    """Touch every persistent stage; fail unless every record hits."""
    exp = _fresh_experiment(store=store)

    ready = {
        row.key: row.state
        for row in exp.pipeline.status()
        if row.key.split(":", 1)[0] in PERSISTENT_STAGES
    }
    stale = {key: state for key, state in ready.items() if state != "ready"}
    if stale:
        print(f"replay: stages not ready in the store: {stale}")
        return 1

    exp.app, exp.kernel, exp.profile, exp.kernel_profile, exp.trace  # noqa: B018

    states = exp.runlog.cache_states()
    hits = states.count("hit")
    print(f"stage records: {len(states)} total, {hits} hit")
    for record in exp.runlog.records:
        print(f"  {record.describe()}")
    if not exp.runlog.all_hits(*PERSISTENT_STAGES):
        print("replay: a persistent stage was rebuilt instead of replayed")
        return 1
    if hits != len(states):
        print(f"replay: non-hit stage records: {sorted(set(states) - {'hit'})}")
        return 1
    print(
        f"pipeline replay: 100% stage hits "
        f"({hits}/{len(states)} records) on a pre-pipeline cache"
    )
    return 0


def main() -> int:
    """Parse the mode and cache dir, run it, return an exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("write-legacy", "replay"))
    parser.add_argument("--cache-dir", required=True)
    args = parser.parse_args()
    store = ArtifactStore(args.cache_dir)
    if args.mode == "write-legacy":
        return write_legacy(store)
    return replay(store)


if __name__ == "__main__":
    raise SystemExit(main())
