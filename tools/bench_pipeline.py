#!/usr/bin/env python3
"""Bound the stage-graph runner's overhead on the fig04 quick sweep.

The `repro.pipeline` refactor routed every stage product access
through :class:`~repro.pipeline.runner.PipelineRunner`.  The refactor
contract says that indirection costs **at most 5 %** of the fig04
quick sweep's wall time; this script measures it directly instead of
trusting the claim:

1. Fully warm the quick experiment (binaries, profile, trace, the
   ``all``-combo layouts and streams), so nothing below is build cost.
2. Time the fig04 sweep end to end (best of ``--repeat`` runs) with
   ``PipelineRunner.artifact`` wrapped in a timer, so every runner
   lookup the sweep makes — the exact code the refactor added to the
   hot path — is accounted separately.
3. The overhead fraction is runner-bookkeeping seconds over sweep
   seconds for the fastest run.  ``--check`` exits 1 above the gate.

Run as ``python tools/bench_pipeline.py [--check]`` from the repo root.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness import Experiment, quick_experiment  # noqa: E402
from repro.harness.figures import fig04_cache_sweep  # noqa: E402

#: Maximum tolerated runner share of the sweep wall time.
GATE_FRACTION = 0.05

COMBO = "all"
ENGINE = "batched"


def _warm(exp: Experiment) -> None:
    """Materialize every product the sweep touches."""
    exp.app, exp.kernel, exp.profile, exp.kernel_profile, exp.trace  # noqa: B018
    exp.streams(COMBO, scope="app")


def measure(repeat: int) -> tuple:
    """(sweep seconds, runner seconds, runner calls) for the best run."""
    exp = Experiment(quick_experiment().config)
    _warm(exp)

    runner = exp.pipeline
    inner = runner.artifact
    spent = {"calls": 0, "seconds": 0.0}

    def timed_artifact(key):
        start = time.perf_counter()
        artifact = inner(key)
        spent["seconds"] += time.perf_counter() - start
        spent["calls"] += 1
        return artifact

    runner.artifact = timed_artifact  # shadow the bound method
    try:
        best = None
        for _ in range(repeat):
            spent["calls"], spent["seconds"] = 0, 0.0
            start = time.perf_counter()
            fig04_cache_sweep(exp, COMBO, jobs=1, engine=ENGINE)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, spent["seconds"], spent["calls"])
        return best
    finally:
        del runner.artifact


def main() -> int:
    """Measure, report, and (with ``--check``) gate the overhead."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit 1 when runner overhead exceeds {GATE_FRACTION:.0%}",
    )
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()

    sweep_s, runner_s, calls = measure(args.repeat)
    fraction = runner_s / sweep_s if sweep_s else 0.0
    print(f"fig04 quick sweep (combo={COMBO}, engine={ENGINE}, jobs=1)")
    print(f"  sweep wall time   : {sweep_s:.4f} s (best of {args.repeat})")
    print(f"  runner bookkeeping: {runner_s:.6f} s over {calls} artifact() calls")
    print(f"  pipeline overhead : {fraction:.3%} of the sweep "
          f"(gate: <= {GATE_FRACTION:.0%})")
    if args.check and fraction > GATE_FRACTION:
        print("pipeline bench: FAIL")
        return 1
    print(f"pipeline bench: {'PASS' if args.check else 'ok (no --check)'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
