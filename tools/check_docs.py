#!/usr/bin/env python3
"""Documentation lint: docstrings + markdown links + orphan pages.

Three checks, all cheap enough for every CI run:

1. **Docstring coverage** — every public symbol (module, class,
   function, method not prefixed with ``_``) in the audited packages
   (``repro.obs``, ``repro.online``, ``repro.harness``, ...) must
   carry a docstring.  Audited by importing the modules and walking
   their members, so only what a user can actually reach is checked.
2. **Link integrity** — every relative markdown link in ``docs/*.md``
   and the top-level ``*.md`` files must resolve to an existing file
   (anchors are stripped; external ``http(s):``/``mailto:`` links are
   skipped).
3. **Orphan pages** — every linted markdown page must be reachable by
   following relative links from ``docs/INDEX.md`` (``README.md`` is a
   second root: GitHub renders it without anyone linking to it).  A
   page nobody can navigate to is a page nobody will keep up to date.

Exit status 0 when clean, 1 with one line per violation otherwise.
Run as ``python tools/check_docs.py`` from the repository root.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil
import re
import sys
from typing import List

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Packages whose public surface must be fully docstringed.
AUDITED_PACKAGES = (
    "repro.obs",
    "repro.online",
    "repro.pipeline",
    "repro.harness",
    "repro.check",
    "repro.sim",
    "repro.serve",
    "repro.scenarios",
    "repro.staticpred",
)

#: Markdown files whose relative links must resolve.
DOC_GLOBS = ("docs/*.md", "*.md")

#: Machine-generated reference material — not linted for links.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

#: Pages a reader is expected to open directly — BFS roots for the
#: orphan check (README.md because GitHub renders it unlinked).
ORPHAN_ROOTS = ("docs/INDEX.md", "README.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_targets(text: str) -> List[str]:
    """The relative-path targets of every markdown link in ``text``."""
    targets = []
    for target in _LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ...
        if target.startswith("#"):
            continue  # intra-document anchor
        relative = target.split("#", 1)[0]
        if relative:
            targets.append(relative)
    return targets


def _linted_pages() -> List[pathlib.Path]:
    """Every markdown file the link checks cover, deduplicated."""
    pages = []
    seen = set()
    for pattern in DOC_GLOBS:
        for path in sorted(ROOT.glob(pattern)):
            if path in seen or path.name in SKIP_FILES:
                continue
            seen.add(path)
            pages.append(path)
    return pages


def iter_modules(package_name: str):
    """The package module plus every submodule, imported."""
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_"):
            continue
        yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module) -> List[tuple]:
    """(qualified name, object) for the module's public surface."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; audited where it is defined
        members.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for attr, value in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if inspect.isfunction(value) or isinstance(
                    value, (property, classmethod, staticmethod)
                ):
                    members.append(
                        (f"{module.__name__}.{obj.__name__}.{attr}", value)
                    )
    return members


def check_docstrings() -> List[str]:
    """Every public symbol of the audited packages has a docstring."""
    problems = []
    for package_name in AUDITED_PACKAGES:
        for module in iter_modules(package_name):
            if not (module.__doc__ or "").strip():
                problems.append(f"{module.__name__}: module missing docstring")
            for qualname, obj in public_members(module):
                target = obj
                if isinstance(obj, (classmethod, staticmethod)):
                    target = obj.__func__
                elif isinstance(obj, property):
                    target = obj.fget
                doc = getattr(target, "__doc__", None)
                if not (doc or "").strip():
                    problems.append(f"{qualname}: missing docstring")
    return problems


def check_links() -> List[str]:
    """Every relative markdown link points at an existing file."""
    problems = []
    for path in _linted_pages():
        for target in _relative_targets(path.read_text()):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def check_orphans() -> List[str]:
    """Every linted page is reachable from an :data:`ORPHAN_ROOTS` page.

    Breadth-first search over the relative links, starting from the
    roots; linted markdown pages the walk never visits are orphans.
    """
    pages = {path.resolve() for path in _linted_pages()}
    queue = [
        (ROOT / root).resolve() for root in ORPHAN_ROOTS if (ROOT / root).exists()
    ]
    reachable = set(queue)
    while queue:
        page = queue.pop()
        if not page.exists() or page.suffix != ".md":
            continue
        for target in _relative_targets(page.read_text()):
            resolved = (page.parent / target).resolve()
            if resolved in reachable:
                continue
            reachable.add(resolved)
            queue.append(resolved)
    problems = []
    for page in sorted(pages - reachable):
        problems.append(
            f"{page.relative_to(ROOT)}: orphan page — not reachable from "
            f"{' or '.join(ORPHAN_ROOTS)}"
        )
    return problems


def main() -> int:
    """Run all checks; print violations; return a process exit code."""
    sys.path.insert(0, str(ROOT / "src"))
    problems = check_docstrings() + check_links() + check_orphans()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs check: OK (docstrings + links + orphans)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
