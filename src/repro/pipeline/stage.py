"""Typed building blocks of the stage-graph execution core.

A :class:`Stage` declares one pipeline step: its identity (``name``
plus an optional ``detail``), the stages it consumes (``inputs``), the
cacheable artifacts it produces (``outputs``, each an
:class:`ArtifactSpec` naming the file and its loader/saver), the build
function that computes the value, and an optional ``gate`` every
value — freshly built *or* loaded from the cache — must pass before
anyone downstream sees it.

:class:`Artifact` is the runner-side handle for one executed stage:
the computed (or loaded) value plus its cache disposition, mirroring
the ``cache=hit|miss|off`` accounting of
:class:`~repro.harness.runlog.StageRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.errors import PipelineError
from repro.harness.runlog import CACHE_OFF


@dataclass(frozen=True)
class ArtifactSpec:
    """One cacheable product of a stage.

    ``name`` is the artifact file name under the pipeline fingerprint
    (e.g. ``app.pkl``); ``loader``/``saver`` follow the
    :class:`~repro.harness.store.ArtifactStore` conventions —
    ``loader(path) -> object`` (any failure degrades to a cache miss)
    and ``saver(object, path) -> None`` (written atomically).
    """

    name: str
    loader: Callable[[Any], Any]
    saver: Callable[[Any, Any], None]

    def __post_init__(self) -> None:
        if not self.name:
            raise PipelineError("ArtifactSpec needs a non-empty name")


@dataclass(frozen=True)
class Stage:
    """One declared step of a pipeline graph.

    ``name``/``detail`` follow the run-log convention (``codegen`` /
    ``app`` renders as ``codegen[app]``); together they form the
    stage's unique :attr:`key`.  ``inputs`` lists the keys of stages
    this one consumes — the runner resolves them lazily when the build
    function asks, so a cache hit never forces its dependencies.
    ``build`` receives the executing
    :class:`~repro.pipeline.runner.PipelineRunner` (use
    ``runner.value(key)`` to read an input) and returns the stage
    value; a stage with several ``outputs`` returns one value per
    spec, in order.  ``cache_salt`` folds extra state into the graph
    fingerprint for stages whose build closure has no stable
    serialized form.
    """

    name: str
    detail: str = ""
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[ArtifactSpec, ...] = ()
    build: Optional[Callable[[Any], Any]] = None
    #: ``gate(value) -> bool``; False rejects the value.  A rejected
    #: cached value degrades to a rebuild; a rejected fresh build
    #: raises :class:`~repro.errors.StageGateError`.
    gate: Optional[Callable[[Any], bool]] = None
    cache_salt: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise PipelineError("Stage needs a non-empty name")
        if self.build is None:
            raise PipelineError(f"stage {self.key!r} needs a build function")

    @property
    def key(self) -> str:
        """The unique graph key: ``name`` or ``name:detail``."""
        return f"{self.name}:{self.detail}" if self.detail else self.name


@dataclass
class Artifact:
    """One executed stage: its value plus cache provenance."""

    #: The stage key this artifact came from.
    stage: str
    #: The stage value (a tuple for multi-output stages).
    value: Any = None
    #: ``hit`` (loaded from the store), ``miss`` (built and persisted),
    #: or ``off`` (built with no store attached / nothing to persist).
    cache: str = CACHE_OFF
    #: Bytes written to the store when the stage was built.
    bytes: int = 0
    #: Wall-clock seconds the stage took (load or build).
    seconds: float = 0.0

    @property
    def hit(self) -> bool:
        """True when the value was served from the artifact store."""
        return self.cache == "hit"


@dataclass(frozen=True)
class StageStatus:
    """Cache standing of one declared stage (``pipeline info``)."""

    key: str
    #: (artifact name, present-in-store, size in bytes) per output.
    artifacts: Tuple[Tuple[str, bool, int], ...] = ()
    #: True when the runner holds a memoized value for the stage.
    in_memory: bool = False

    @property
    def cached(self) -> int:
        """Outputs present in the store."""
        return sum(1 for _, present, _ in self.artifacts if present)

    @property
    def bytes(self) -> int:
        """Total size of the cached outputs."""
        return sum(size for _, present, size in self.artifacts if present)

    @property
    def state(self) -> str:
        """``ready`` (a replay would hit), ``partial``, ``missing``,
        or ``transient`` (the stage persists nothing)."""
        if not self.artifacts:
            return "transient"
        if self.cached == len(self.artifacts):
            return "ready"
        return "partial" if self.cached else "missing"
