"""The stage graph: declared stages, validation, deterministic order.

A :class:`StageGraph` is a mutable registry of
:class:`~repro.pipeline.stage.Stage` declarations keyed by their
``name[:detail]`` keys.  It owns the structural guarantees the runner
relies on: unique keys, inputs that resolve to declared stages, no
dependency cycles, and a :meth:`~StageGraph.topological_order` that is
**deterministic and insertion-order independent** — two graphs with
the same stages always execute (and fingerprint) identically no
matter the order the stages were added in.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional

from repro.errors import PipelineError
from repro.pipeline.stage import Stage


class StageGraph:
    """A validated, deterministically ordered set of stages."""

    def __init__(self, stages: Optional[List[Stage]] = None) -> None:
        self._stages: Dict[str, Stage] = {}
        for stage in stages or ():
            self.add(stage)

    # -- construction -------------------------------------------------------

    def add(self, stage: Stage) -> Stage:
        """Declare one stage; duplicate keys are an error."""
        if stage.key in self._stages:
            raise PipelineError(
                f"stage {stage.key!r} is already declared in this graph"
            )
        self._stages[stage.key] = stage
        return stage

    # -- lookup -------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self) -> Iterator[Stage]:
        """Stages in deterministic (topological) order."""
        return (self._stages[key] for key in self.topological_order())

    def stage(self, key: str) -> Stage:
        """The declared stage for ``key``; unknown keys are an error."""
        try:
            return self._stages[key]
        except KeyError:
            known = ", ".join(sorted(self._stages)) or "<empty graph>"
            raise PipelineError(
                f"unknown stage {key!r}; declared stages: {known}"
            ) from None

    # -- structure ----------------------------------------------------------

    def validate(self) -> "StageGraph":
        """Check inputs resolve and the graph is acyclic; returns self."""
        for stage in self._stages.values():
            for dep in stage.inputs:
                if dep not in self._stages:
                    raise PipelineError(
                        f"stage {stage.key!r} consumes undeclared stage "
                        f"{dep!r}"
                    )
        self.topological_order()  # raises on cycles
        return self

    def topological_order(self) -> List[str]:
        """Every stage key, dependencies first.

        Kahn's algorithm with a sorted ready set: ties break
        lexicographically, so the order is a pure function of the
        declared stages — reordering ``add`` calls cannot change it.
        """
        remaining = {
            key: {dep for dep in stage.inputs if dep in self._stages}
            for key, stage in self._stages.items()
        }
        order: List[str] = []
        while remaining:
            ready = sorted(key for key, deps in remaining.items() if not deps)
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise PipelineError(
                    f"stage graph has a dependency cycle among: {cycle}"
                )
            for key in ready:
                order.append(key)
                del remaining[key]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    def fingerprint(self) -> str:
        """Content hash of the graph *structure* (sha256, 20 hex chars).

        Covers stage keys, sorted inputs, output artifact names, and
        cache salts — not the build callables, which have no stable
        serialized form (stages whose behavior changes should bump
        ``cache_salt``).  Stable under any reordering of ``add`` calls.
        """
        payload = [
            {
                "key": stage.key,
                "inputs": sorted(stage.inputs),
                "outputs": [spec.name for spec in stage.outputs],
                "salt": stage.cache_salt,
            }
            for _, stage in sorted(self._stages.items())
        ]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]
