"""The pipeline runner: cache-aware execution of a stage graph.

:class:`PipelineRunner` executes :class:`~repro.pipeline.graph.StageGraph`
stages with exactly the cache semantics the harness established in
``Experiment._staged``: try the :class:`~repro.harness.store.ArtifactStore`
first (keys are ``(fingerprint, artifact-name)``, so caches written by
pre-pipeline code replay warm), otherwise build and persist
atomically.  Every execution is timed and accounted in a
:class:`~repro.harness.runlog.RunLog` under the stage's
``name[:detail]`` — run-log lines, ``stage.<name>`` spans, and
``pipeline.<name>.seconds`` histograms are byte-compatible with the
pre-pipeline harness — plus ``pipeline.cache_hits`` /
``pipeline.cache_misses`` counters.

Gate hooks: a stage's ``gate`` runs on every value.  A cached value
failing the gate degrades to a rebuild (the ``on_cache_reject``
callback and the ``pipeline.gate_rejected_cache`` counter record it);
a *fresh* value failing raises
:class:`~repro.errors.StageGateError` for the caller to absorb.

Dependencies resolve lazily: ``build`` receives the runner and pulls
inputs with :meth:`PipelineRunner.value` only when it needs them, so a
stage served from the cache never forces its upstream stages.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import PipelineError, StageGateError
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF, RunLog
from repro.harness.store import ArtifactStore
from repro.pipeline.graph import StageGraph
from repro.pipeline.stage import Artifact, Stage, StageStatus


class PipelineRunner:
    """Executes one stage graph with memoization over an ArtifactStore."""

    def __init__(
        self,
        graph: StageGraph,
        *,
        store: Optional[ArtifactStore] = None,
        fingerprint: str = "",
        runlog: Optional[RunLog] = None,
        on_cache_reject: Optional[Callable[[Stage, Any], None]] = None,
    ) -> None:
        self.graph = graph
        #: Disk cache for stage outputs (None disables persistence).
        self.store = store
        #: Cache namespace — artifacts live at ``(fingerprint, name)``.
        self.fingerprint = fingerprint
        self.runlog = runlog or RunLog()
        #: Called when a *cached* value fails the stage gate (the value
        #: is then discarded and the stage rebuilt).
        self.on_cache_reject = on_cache_reject
        self._artifacts: Dict[str, Artifact] = {}
        self._executing: Set[str] = set()

    # -- execution ----------------------------------------------------------

    def artifact(self, key: str) -> Artifact:
        """The memoized :class:`Artifact` for one stage (executing it
        on first request)."""
        artifact = self._artifacts.get(key)
        if artifact is None:
            stage = self.graph.stage(key)
            if key in self._executing:
                chain = " -> ".join(sorted(self._executing))
                raise PipelineError(
                    f"stage {key!r} recursively depends on itself "
                    f"(while executing: {chain})"
                )
            self._executing.add(key)
            try:
                artifact = self._execute(stage)
            finally:
                self._executing.discard(key)
            self._artifacts[key] = artifact
        return artifact

    def value(self, key: str) -> Any:
        """The stage's value (tuple for multi-output stages)."""
        return self.artifact(key).value

    def run(self, keys: Optional[List[str]] = None) -> Dict[str, Artifact]:
        """Execute the requested stages (default: the whole graph) in
        deterministic topological order; returns artifacts by key."""
        wanted = None if keys is None else set(keys)
        order = [
            key for key in self.graph.topological_order()
            if wanted is None or key in wanted
        ]
        if wanted is not None and len(order) != len(wanted):
            missing = ", ".join(sorted(wanted.difference(order)))
            raise PipelineError(f"unknown stage(s) requested: {missing}")
        return {key: self.artifact(key) for key in order}

    def _execute(self, stage: Stage) -> Artifact:
        with self.runlog.stage(stage.name, stage.detail) as record:
            if stage.outputs:
                value = self._load(stage)
                if value is not None:
                    record.cache = CACHE_HIT
                    obs.counter("pipeline.cache_hits").inc()
                    return Artifact(
                        stage=stage.key, value=value, cache=CACHE_HIT,
                        seconds=record.seconds,
                    )
            value = stage.build(self)
            if stage.gate is not None and not stage.gate(value):
                obs.counter("pipeline.gate_rejected").inc()
                raise StageGateError(
                    f"freshly built value for stage {stage.key!r} failed "
                    f"its gate"
                )
            if stage.outputs:
                record.cache = CACHE_OFF if self.store is None else CACHE_MISS
                if record.cache == CACHE_MISS:
                    obs.counter("pipeline.cache_misses").inc()
                record.bytes = self._save(stage, value)
            return Artifact(
                stage=stage.key, value=value, cache=record.cache,
                bytes=record.bytes,
            )

    # -- store plumbing ------------------------------------------------------

    def _load(self, stage: Stage) -> Any:
        """Every output from the store, or None (any missing/corrupt
        output — or a gate rejection — degrades the stage to a miss)."""
        if self.store is None:
            return None
        values = []
        for spec in stage.outputs:
            obj = self.store.load(self.fingerprint, spec.name, spec.loader)
            if obj is None:
                return None
            values.append(obj)
        value = values[0] if len(stage.outputs) == 1 else tuple(values)
        if stage.gate is not None and not stage.gate(value):
            obs.counter("pipeline.gate_rejected_cache").inc()
            if self.on_cache_reject is not None:
                self.on_cache_reject(stage, value)
            return None
        return value

    def _output_values(self, stage: Stage, value: Any) -> Tuple[Any, ...]:
        """The stage value split per output spec."""
        if len(stage.outputs) == 1:
            return (value,)
        values = tuple(value)
        if len(values) != len(stage.outputs):
            raise PipelineError(
                f"stage {stage.key!r} declared {len(stage.outputs)} "
                f"outputs but built {len(values)} values"
            )
        return values

    def _save(self, stage: Stage, value: Any) -> int:
        if self.store is None:
            return 0
        return sum(
            self.store.save(self.fingerprint, spec.name, obj, spec.saver)
            for spec, obj in zip(
                stage.outputs, self._output_values(stage, value)
            )
        )

    # -- persistence & introspection ----------------------------------------

    def persist(self) -> int:
        """Write memoized stage outputs missing from the store; returns
        the number of artifacts written.

        This is how late ``attach_store`` backfills a cache: every
        declared stage that already executed writes whichever of its
        outputs the store lacks — a stage added to the graph is
        persisted automatically, with no per-stage bookkeeping list to
        forget to update.
        """
        if self.store is None:
            return 0
        written = 0
        for key in self.graph.topological_order():
            artifact = self._artifacts.get(key)
            stage = self.graph.stage(key)
            if artifact is None or not stage.outputs:
                continue
            for spec, obj in zip(
                stage.outputs, self._output_values(stage, artifact.value)
            ):
                if obj is None or self.store.has(self.fingerprint, spec.name):
                    continue
                if self.store.save(self.fingerprint, spec.name, obj, spec.saver):
                    written += 1
        return written

    def status(self) -> List[StageStatus]:
        """Per-stage cache standing against the attached store (what a
        replay would hit), in topological order."""
        rows: List[StageStatus] = []
        for key in self.graph.topological_order():
            stage = self.graph.stage(key)
            artifacts = []
            for spec in stage.outputs:
                present = size = 0
                if self.store is not None:
                    path = self.store.path(self.fingerprint, spec.name)
                    present = path.is_file()
                    size = path.stat().st_size if present else 0
                artifacts.append((spec.name, bool(present), size))
            rows.append(
                StageStatus(
                    key=key,
                    artifacts=tuple(artifacts),
                    in_memory=key in self._artifacts,
                )
            )
        return rows
