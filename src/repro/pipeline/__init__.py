"""Typed stage-graph execution core shared by every workload path.

The paper's profile → optimize → layout → simulate dataflow used to be
re-implemented five times (harness experiments, figure sweeps, the
scenario matrix, serve's worker builds, online relayout), each
hand-wiring its own caching, fan-out, tracing, and gating.  This
package is the one substrate they all run on:

- :class:`~repro.pipeline.stage.Stage` /
  :class:`~repro.pipeline.stage.ArtifactSpec` — one declared step and
  its cacheable products;
- :class:`~repro.pipeline.graph.StageGraph` — validated, cycle-free,
  deterministically ordered stage registry with a structural
  :meth:`~repro.pipeline.graph.StageGraph.fingerprint`;
- :class:`~repro.pipeline.runner.PipelineRunner` — cache-aware
  execution with run-log/obs accounting, gate hooks, and artifact keys
  compatible with pre-pipeline caches (existing stores replay warm);
- :func:`~repro.pipeline.fanout.resilient_map` /
  :class:`~repro.pipeline.fanout.StreamHandoff` — crashed-worker retry
  atop ``parallel_map`` and SharedStreams-aware handoff to workers.

See ``docs/PIPELINE.md`` for the stage model and the cache-key
compatibility table.
"""

from repro.pipeline.fanout import StreamHandoff, resilient_map
from repro.pipeline.graph import StageGraph
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.stage import Artifact, ArtifactSpec, Stage, StageStatus

__all__ = [
    "Artifact",
    "ArtifactSpec",
    "PipelineRunner",
    "Stage",
    "StageGraph",
    "StageStatus",
    "StreamHandoff",
    "resilient_map",
]
