"""Resilient fan-out and shared-stream handoff between stages.

:func:`resilient_map` wraps :func:`~repro.harness.parallel.parallel_map`
with crashed-worker retry: the whole map is re-run with exponential
backoff when a worker dies or hangs (cells are pure functions of their
arguments, so re-running is always safe and the retried results are
bit-identical).  :class:`StreamHandoff` publishes prepared fetch-span
streams to fork-based workers — optionally packed into
:class:`~repro.sim.sharedmem.SharedStreams` blocks so every worker maps
the same physical pages — and guarantees teardown (close + unlink)
however the fan-out exits.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

from repro import obs
from repro.errors import ParallelError
from repro.harness.parallel import parallel_map
from repro.sim.sharedmem import SharedStreams

T = TypeVar("T")
R = TypeVar("R")

LOGGER = logging.getLogger("repro.pipeline")

#: Streams published to fork-based pool workers, keyed by caller-chosen
#: names.  Workers inherit this module global over ``fork`` and read it
#: with :meth:`StreamHandoff.get`.
_HANDOFF: Dict[str, Any] = {}


def resilient_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.25,
    _sleep: Callable[[float], None] = time.sleep,
) -> List[R]:
    """Order-preserving map that retries crashed or hung fan-outs.

    Semantics match :func:`~repro.harness.parallel.parallel_map`
    (results in input order, bit-identical to serial), plus: when the
    map raises :class:`~repro.errors.ParallelError` — a worker was
    killed mid-task or the hard ``timeout`` expired — the whole map is
    re-run up to ``retries`` more times, sleeping
    ``backoff * 2**attempt`` seconds before each retry.  ``fn`` must
    therefore be pure (every sweep cell already is).  The final
    failure is re-raised unchanged.
    """
    work = list(items)
    attempt = 0
    while True:
        try:
            return parallel_map(
                fn, work, jobs=jobs, chunksize=chunksize, timeout=timeout
            )
        except ParallelError as exc:
            attempt += 1
            if attempt > retries:
                raise
            delay = backoff * (2 ** (attempt - 1))
            obs.counter("pipeline.retries").inc()
            LOGGER.warning(
                "fan-out failed (%s); retry %d/%d in %.2fs",
                exc, attempt, retries, delay,
            )
            _sleep(delay)


class StreamHandoff:
    """Publishes prepared streams to fork-based workers for one fan-out.

    Use as a context manager around :func:`resilient_map`::

        with StreamHandoff({combo: exp.streams(combo)}) as handoff:
            results = resilient_map(_cell, cells, jobs=jobs)

    Workers (which inherit the parent's memory over ``fork``) read the
    published collections with ``StreamHandoff.get(key)``.  With
    ``shared=True`` each collection is packed into one
    :class:`~repro.sim.sharedmem.SharedStreams` block and workers get
    zero-copy views of the same physical pages; the parent closes and
    unlinks the blocks on exit either way.
    """

    def __init__(self, streams: Dict[str, Any], *, shared: bool = False) -> None:
        self._streams = streams
        self._shared = shared
        self._blocks: List[SharedStreams] = []

    def __enter__(self) -> "StreamHandoff":
        published: Dict[str, Any] = {}
        for key, collection in self._streams.items():
            if self._shared:
                block = SharedStreams.pack(collection)
                self._blocks.append(block)
                published[key] = block
            else:
                published[key] = list(collection)
        _HANDOFF.clear()
        _HANDOFF.update(published)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _HANDOFF.clear()
        for block in self._blocks:
            block.close()
            block.unlink()
        self._blocks = []

    @staticmethod
    def get(key: str) -> Any:
        """The published collection for ``key`` (worker-side accessor);
        iterating a shared collection yields zero-copy stream views."""
        return _HANDOFF[key]
