"""Simple L1 data cache (set-associative LRU) over data address streams."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.cache.icache import CacheGeometry
from repro.deprecation import warn_once


@dataclass
class DCacheResult:
    geometry: CacheGeometry
    misses: int
    accesses: int
    #: Addresses (line-aligned) that missed, with their input positions
    #: preserved so an L2 simulation can merge I and D miss streams.
    miss_addresses: np.ndarray = None
    miss_positions: np.ndarray = None


def _dcache_result(
    addresses: np.ndarray,
    geometry: CacheGeometry,
    positions: np.ndarray = None,
) -> DCacheResult:
    """Run one data-address stream through an L1D, keeping the miss
    stream (refill addresses) for the L2."""
    nsets = geometry.num_sets
    assoc = geometry.assoc
    tags = np.full((nsets, assoc), -1, dtype=np.int64)
    line_ids = addresses // geometry.line_bytes
    misses = 0
    miss_addr = []
    miss_pos = []
    if positions is None:
        positions = np.arange(len(addresses), dtype=np.int64)
    for i, line in enumerate(line_ids.tolist()):
        set_idx = line % nsets
        row = tags[set_idx]
        hit = False
        for way in range(assoc):
            if row[way] == line:
                if way:
                    value = row[way]
                    row[1 : way + 1] = row[:way]
                    row[0] = value
                hit = True
                break
        if not hit:
            misses += 1
            miss_addr.append(line * geometry.line_bytes)
            miss_pos.append(int(positions[i]))
            row[1:assoc] = row[: assoc - 1]
            row[0] = line
    return DCacheResult(
        geometry=geometry,
        misses=misses,
        accesses=len(addresses),
        miss_addresses=np.asarray(miss_addr, dtype=np.int64),
        miss_positions=np.asarray(miss_pos, dtype=np.int64),
    )


def simulate_dcache(
    addresses: np.ndarray,
    geometry: CacheGeometry,
    positions: np.ndarray = None,
) -> DCacheResult:
    """Deprecated: use :func:`repro.sim.simulate` with a
    :class:`~repro.sim.MemoryHierarchy` whose ``dcache`` is set."""
    warn_once(
        "simulate_dcache",
        "simulate_dcache() is deprecated; use repro.sim.simulate() with "
        "hierarchy.dcache set (or repro.sim.classic.dcache_result())",
    )
    return _dcache_result(addresses, geometry, positions)
