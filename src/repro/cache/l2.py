"""Shared unified L2 cache fed by L1 instruction and data miss streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import obs
from repro.cache.icache import CacheGeometry, collapse_consecutive, expand_line_runs
from repro.deprecation import warn_once
from repro.execution.mp import DATA_BASE


def simulate_l1i_misses(
    starts: np.ndarray, counts: np.ndarray, geometry: CacheGeometry
) -> Tuple[np.ndarray, np.ndarray]:
    """L1I refill stream: (line addresses, block-trace positions)."""
    line_ids, _lo, _hi, span_index = expand_line_runs(
        starts, counts, geometry.line_bytes
    )
    keep = collapse_consecutive(line_ids)
    line_ids = line_ids[keep]
    span_index = span_index[keep]
    nsets = geometry.num_sets
    assoc = geometry.assoc
    tags = np.full((nsets, assoc), -1, dtype=np.int64)
    miss_addr = []
    miss_pos = []
    for i, line in enumerate(line_ids.tolist()):
        set_idx = line % nsets
        row = tags[set_idx]
        hit = False
        for way in range(assoc):
            if row[way] == line:
                if way:
                    value = row[way]
                    row[1 : way + 1] = row[:way]
                    row[0] = value
                hit = True
                break
        if not hit:
            miss_addr.append(line * geometry.line_bytes)
            miss_pos.append(int(span_index[i]))
            row[1:assoc] = row[: assoc - 1]
            row[0] = line
    return (
        np.asarray(miss_addr, dtype=np.int64),
        np.asarray(miss_pos, dtype=np.int64),
    )


@dataclass
class L2Result:
    geometry: CacheGeometry
    accesses: int
    misses_instr: int
    misses_data: int

    @property
    def misses(self) -> int:
        return self.misses_instr + self.misses_data


#: Alpha page size for physical indexing (8 KB).
_PAGE_SHIFT = 13


class FirstTouchMapper:
    """Virtual-to-physical page mapping by first-touch frame allocation.

    Board-level and L2 caches are physically indexed; modeling the OS's
    frame allocator prevents artificial virtual-address alignment
    between the application and kernel images from dominating a
    direct-mapped cache.
    """

    def __init__(self) -> None:
        self._frames: dict = {}
        self._next = 0

    def translate(self, addresses: np.ndarray) -> np.ndarray:
        pages = addresses >> _PAGE_SHIFT
        offsets = addresses & ((1 << _PAGE_SHIFT) - 1)
        frames = np.empty(len(addresses), dtype=np.int64)
        table = self._frames
        for i, page in enumerate(pages.tolist()):
            frame = table.get(page)
            if frame is None:
                frame = self._next
                self._next += 1
                table[page] = frame
            frames[i] = frame
        return (frames << _PAGE_SHIFT) | offsets


def _l2_result(
    refill_streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    physical: bool = True,
) -> L2Result:
    """One shared L2 over merged refill streams.

    ``refill_streams`` holds per-CPU (addresses, positions) pairs (both
    L1I and L1D refills); streams are interleaved by position, which
    approximates global time since positions index each CPU's
    block-trace progress.  With ``physical=True`` (the default),
    addresses go through first-touch page-frame allocation before
    indexing the cache.
    """
    addr_parts = []
    pos_parts = []
    cpu_parts = []
    for cpu, (addresses, positions) in enumerate(refill_streams):
        addr_parts.append(addresses)
        pos_parts.append(positions)
        cpu_parts.append(np.full(len(addresses), cpu, dtype=np.int64))
    addresses = np.concatenate(addr_parts) if addr_parts else np.zeros(0, np.int64)
    positions = np.concatenate(pos_parts) if pos_parts else np.zeros(0, np.int64)
    cpus = np.concatenate(cpu_parts) if cpu_parts else np.zeros(0, np.int64)
    order = np.lexsort((cpus, positions))
    addresses = addresses[order]
    is_data = addresses >= DATA_BASE
    if physical:
        addresses = FirstTouchMapper().translate(addresses)

    nsets = geometry.num_sets
    assoc = geometry.assoc
    tags = np.full((nsets, assoc), -1, dtype=np.int64)
    line_ids = addresses // geometry.line_bytes
    misses_instr = 0
    misses_data = 0
    # With an obs series window configured, record each window's
    # combined miss rate on the ``l2.window_miss_rate`` series.
    window = obs.series_window()
    window_start = 0
    window_misses = 0
    for i, line in enumerate(line_ids.tolist()):
        set_idx = line % nsets
        row = tags[set_idx]
        hit = False
        for way in range(assoc):
            if row[way] == line:
                if way:
                    value = row[way]
                    row[1 : way + 1] = row[:way]
                    row[0] = value
                hit = True
                break
        if not hit:
            if is_data[i]:
                misses_data += 1
            else:
                misses_instr += 1
            if window:
                window_misses += 1
            row[1:assoc] = row[: assoc - 1]
            row[0] = line
        if window and i + 1 - window_start >= window:
            obs.series("l2.window_miss_rate").record(
                window_misses / (i + 1 - window_start)
            )
            window_start = i + 1
            window_misses = 0
    obs.counter("l2.accesses").inc(len(addresses))
    obs.counter("l2.misses_instr").inc(misses_instr)
    obs.counter("l2.misses_data").inc(misses_data)
    return L2Result(
        geometry=geometry,
        accesses=len(addresses),
        misses_instr=misses_instr,
        misses_data=misses_data,
    )


def simulate_l2(
    refill_streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    physical: bool = True,
) -> L2Result:
    """Deprecated: use :func:`repro.sim.simulate` with a
    :class:`~repro.sim.MemoryHierarchy` whose ``l2`` is set."""
    warn_once(
        "simulate_l2",
        "simulate_l2() is deprecated; use repro.sim.simulate() with "
        "hierarchy.l2 set (or repro.sim.classic.l2_result())",
    )
    return _l2_result(refill_streams, geometry, physical=physical)
