"""Memory-system simulators: I-cache, iTLB, L1D, shared unified L2."""

from repro.cache.dcache import DCacheResult, simulate_dcache
from repro.cache.icache import (
    CacheGeometry,
    ICacheResult,
    ICacheSim,
    collapse_consecutive,
    expand_line_runs,
    simulate_direct_mapped,
    simulate_lru,
    sweep_direct_mapped,
)
from repro.cache.l2 import L2Result, simulate_l1i_misses, simulate_l2
from repro.cache.stats import APP, KERNEL, InterferenceMatrix, LocalityStats
from repro.cache.streambuf import StreamBufferResult, simulate_stream_buffers
from repro.cache.victim import VictimCacheResult, simulate_victim_cache
from repro.cache.tlb import PAGE_BYTES, TlbResult, simulate_itlb

__all__ = [
    "APP",
    "CacheGeometry",
    "DCacheResult",
    "ICacheResult",
    "ICacheSim",
    "InterferenceMatrix",
    "KERNEL",
    "L2Result",
    "LocalityStats",
    "PAGE_BYTES",
    "TlbResult",
    "collapse_consecutive",
    "expand_line_runs",
    "simulate_dcache",
    "simulate_direct_mapped",
    "simulate_itlb",
    "simulate_l1i_misses",
    "simulate_l2",
    "simulate_lru",
    "simulate_stream_buffers",
    "StreamBufferResult",
    "VictimCacheResult",
    "simulate_victim_cache",
    "sweep_direct_mapped",
]
