"""Shared statistic containers for the cache simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

#: Address spaces for interference attribution.
APP = "application"
KERNEL = "kernel"


@dataclass
class InterferenceMatrix:
    """Miss attribution: who missed x who owned the displaced line.

    ``counts[missing_space][owner_space]`` plus cold misses (no line
    displaced) per missing space.
    """

    counts: Dict[str, Dict[str, int]] = field(
        default_factory=lambda: {APP: {APP: 0, KERNEL: 0}, KERNEL: {APP: 0, KERNEL: 0}}
    )
    cold: Dict[str, int] = field(default_factory=lambda: {APP: 0, KERNEL: 0})

    def record(self, missing: str, owner: str) -> None:
        self.counts[missing][owner] += 1

    def record_cold(self, missing: str) -> None:
        self.cold[missing] += 1

    def misses(self, missing: str) -> int:
        return sum(self.counts[missing].values()) + self.cold[missing]


@dataclass
class LocalityStats:
    """Per-line locality metrics (paper Figures 9, 10, 11).

    Collected at replacement time; lines still resident at the end of
    the simulation are flushed into the stats by ``ICacheSim.finish``.
    """

    words_per_line: int = 32
    #: Histogram over 1..words_per_line of unique words used per
    #: replacement (Fig 9).
    unique_words: np.ndarray = None
    #: Histogram over 0..reuse_cap of per-word use counts (Fig 10).
    word_reuse: np.ndarray = None
    reuse_cap: int = 15
    #: Histogram over log2 lifetime buckets 0..lifetime_cap (Fig 11),
    #: lifetime measured in cache accesses.
    lifetimes: np.ndarray = None
    lifetime_cap: int = 34
    lines_loaded: int = 0
    words_loaded: int = 0
    words_used: int = 0

    def __post_init__(self) -> None:
        if self.unique_words is None:
            self.unique_words = np.zeros(self.words_per_line + 1, dtype=np.int64)
        if self.word_reuse is None:
            self.word_reuse = np.zeros(self.reuse_cap + 1, dtype=np.int64)
        if self.lifetimes is None:
            self.lifetimes = np.zeros(self.lifetime_cap + 1, dtype=np.int64)

    def record_replacement(self, word_counts: np.ndarray, lifetime: int) -> None:
        """Account one evicted line's residency."""
        used = int((word_counts > 0).sum())
        self.unique_words[used] += 1
        self.lines_loaded += 1
        self.words_loaded += len(word_counts)
        self.words_used += used
        capped = np.minimum(word_counts, self.reuse_cap)
        self.word_reuse += np.bincount(capped, minlength=self.reuse_cap + 1)
        bucket = min(self.lifetime_cap, max(0, int(lifetime).bit_length() - 1))
        self.lifetimes[bucket] += 1

    @property
    def unused_fraction(self) -> float:
        """Fraction of fetched words never used before replacement."""
        if self.words_loaded == 0:
            return 0.0
        return 1.0 - self.words_used / self.words_loaded

    def unique_words_fractions(self) -> np.ndarray:
        """Fig 9 series: fraction of replacements per unique-word count."""
        total = max(1, int(self.unique_words.sum()))
        return self.unique_words / total

    def word_reuse_fractions(self) -> np.ndarray:
        """Fig 10 series: fraction of loaded words per use count."""
        total = max(1, int(self.word_reuse.sum()))
        return self.word_reuse / total

    def lifetime_fractions(self) -> np.ndarray:
        """Fig 11 series: fraction of replacements per log2 bucket."""
        total = max(1, int(self.lifetimes.sum()))
        return self.lifetimes / total
