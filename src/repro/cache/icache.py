"""Instruction cache simulators.

Two engines over the same span representation (per trace entry: start
address + instructions fetched):

* :func:`_direct_mapped_misses` -- vectorized, counts misses only;
  used for the big cache-size x line-size sweeps (Figures 4/5).
* :class:`ICacheSim` -- set-associative LRU with the paper's detailed
  locality metrics (word usage, reuse, lifetimes, app/kernel
  interference); used for Figures 6, 7, 9-13.

The public entry points for running simulations live in
:mod:`repro.sim`; the ``simulate_*`` names kept here are deprecated
delegating wrappers (one ``DeprecationWarning`` per process each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.deprecation import warn_once
from repro.errors import SimulationError
from repro.cache.stats import APP, KERNEL, InterferenceMatrix, LocalityStats
from repro.ir import INSTRUCTION_BYTES
from repro.osmodel.kernel import KERNEL_BASE


@dataclass(frozen=True)
class CacheGeometry:
    """Size / line size / associativity of one cache."""

    size_bytes: int
    line_bytes: int
    assoc: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise SimulationError(
                f"cache {self.size_bytes}B cannot be divided into "
                f"{self.assoc}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // INSTRUCTION_BYTES

    def __str__(self) -> str:
        way = "direct-mapped" if self.assoc == 1 else f"{self.assoc}-way"
        return f"{self.size_bytes // 1024}KB/{self.line_bytes}B/{way}"


def expand_line_runs(
    starts: np.ndarray, counts: np.ndarray, line_bytes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand fetch spans into per-line access runs.

    Returns ``(line_ids, word_lo, word_hi, span_index)``: for each line
    touched by each span (in order), the line id, the inclusive word
    range used within the line, and the owning span's index.
    """
    mask = counts > 0
    starts = starts[mask]
    counts = counts[mask]
    span_index = np.nonzero(mask)[0]
    if len(starts) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, empty
    ends = starts + counts * INSTRUCTION_BYTES  # exclusive
    first_line = starts // line_bytes
    last_line = (ends - 1) // line_bytes
    lines_per_span = (last_line - first_line + 1).astype(np.int64)
    total = int(lines_per_span.sum())
    # Offsets of each run within its span: 0..lines_per_span-1.
    span_of_run = np.repeat(np.arange(len(starts)), lines_per_span)
    run_start = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(lines_per_span[:-1], out=run_start[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(run_start, lines_per_span)
    line_ids = first_line[span_of_run] + within
    words_per_line = line_bytes // INSTRUCTION_BYTES
    line_word0 = line_ids * words_per_line
    span_word_lo = (starts // INSTRUCTION_BYTES)[span_of_run]
    span_word_hi = ((ends // INSTRUCTION_BYTES) - 1)[span_of_run]
    word_lo = np.maximum(span_word_lo, line_word0) - line_word0
    word_hi = np.minimum(span_word_hi, line_word0 + words_per_line - 1) - line_word0
    return line_ids, word_lo, word_hi, span_index[span_of_run]


def collapse_consecutive(line_ids: np.ndarray) -> np.ndarray:
    """Indices of accesses starting a new-line run (consecutive repeats
    of the same line can never miss and are dropped)."""
    if len(line_ids) == 0:
        return np.zeros(0, dtype=np.int64)
    keep = np.ones(len(line_ids), dtype=bool)
    keep[1:] = line_ids[1:] != line_ids[:-1]
    return np.nonzero(keep)[0]


def _direct_mapped_misses(
    starts: np.ndarray, counts: np.ndarray, geometry: CacheGeometry
) -> int:
    """Vectorized direct-mapped miss count for one stream (the classic
    whole-stream engine; public surface is ``repro.sim``)."""
    if geometry.assoc != 1:
        raise SimulationError("simulate_direct_mapped needs assoc=1")
    line_ids, _, _, _ = expand_line_runs(starts, counts, geometry.line_bytes)
    keep = collapse_consecutive(line_ids)
    line_ids = line_ids[keep]
    if len(line_ids) == 0:
        return 0
    nsets = geometry.num_sets
    sets = line_ids % nsets
    # Stable sort by set preserves program order within each set; a
    # miss is any access whose predecessor *in the same set* held a
    # different line (or no line at all).
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = line_ids[order]
    new_set = np.ones(len(order), dtype=bool)
    new_set[1:] = sorted_sets[1:] != sorted_sets[:-1]
    changed = np.ones(len(order), dtype=bool)
    changed[1:] = sorted_lines[1:] != sorted_lines[:-1]
    return int((new_set | changed).sum())


def simulate_direct_mapped(
    starts: np.ndarray, counts: np.ndarray, geometry: CacheGeometry
) -> int:
    """Deprecated: use :func:`repro.sim.simulate` (or, for one raw
    stream, :func:`repro.sim.classic.direct_mapped_misses`)."""
    warn_once(
        "simulate_direct_mapped",
        "simulate_direct_mapped() is deprecated; use repro.sim.simulate() "
        "or repro.sim.classic.direct_mapped_misses()",
    )
    return _direct_mapped_misses(starts, counts, geometry)


@dataclass
class ICacheResult:
    """Outcome of a set-associative simulation."""

    geometry: CacheGeometry
    misses: int = 0
    accesses: int = 0
    misses_app: int = 0
    misses_kernel: int = 0
    interference: InterferenceMatrix = field(default_factory=InterferenceMatrix)
    locality: Optional[LocalityStats] = None
    #: Distinct lines touched (footprint, in lines).
    unique_lines: int = 0


class ICacheSim:
    """Set-associative LRU instruction cache with detailed metrics."""

    def __init__(self, geometry: CacheGeometry, detail: bool = False) -> None:
        self.geometry = geometry
        self.detail = detail
        nsets = geometry.num_sets
        # Per-set LRU stacks, most recent first.  Plain mode: lists of
        # line ids.  Detail mode: lists of [line, load_clock, counts].
        self._sets = [[] for _ in range(nsets)]
        self._clock = 0
        self.result = ICacheResult(
            geometry=geometry,
            locality=LocalityStats(words_per_line=geometry.words_per_line)
            if detail
            else None,
        )
        self._touched: set = set()

    # -- feeding ------------------------------------------------------------

    def access_stream(self, starts: np.ndarray, counts: np.ndarray) -> None:
        """Run one stream (already in program order) through the cache.

        Totals feed the ``icache.accesses``/``icache.misses`` counters;
        when a series window is configured (``repro.obs``), the stream
        is chunked into windows of that many line accesses and each
        window's miss rate lands on the ``icache.window_miss_rate``
        series — a time-resolved view of locality over the run.
        """
        line_ids, word_lo, word_hi, _ = expand_line_runs(
            starts, counts, self.geometry.line_bytes
        )
        accesses0 = self.result.accesses
        misses0 = self.result.misses
        window = obs.series_window()
        if not self.detail:
            keep = collapse_consecutive(line_ids)
            kept = line_ids[keep]
            if window and len(kept) > window:
                for lo in range(0, len(kept), window):
                    before = self.result.misses
                    chunk = kept[lo : lo + window]
                    self._run_plain(chunk)
                    obs.series("icache.window_miss_rate").record(
                        (self.result.misses - before) / len(chunk)
                    )
            else:
                self._run_plain(kept)
        else:
            if window and len(line_ids) > window:
                for lo in range(0, len(line_ids), window):
                    before = self.result.misses
                    hi = lo + window
                    self._run_detailed(
                        line_ids[lo:hi], word_lo[lo:hi], word_hi[lo:hi]
                    )
                    obs.series("icache.window_miss_rate").record(
                        (self.result.misses - before)
                        / len(line_ids[lo:hi])
                    )
            else:
                self._run_detailed(line_ids, word_lo, word_hi)
        obs.counter("icache.accesses").inc(self.result.accesses - accesses0)
        obs.counter("icache.misses").inc(self.result.misses - misses0)
        self._touched.update(np.unique(line_ids).tolist())
        self.result.unique_lines = len(self._touched)

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _space(line_id: int, line_bytes: int) -> str:
        return KERNEL if line_id * line_bytes >= KERNEL_BASE else APP

    def _run_plain(self, line_ids: np.ndarray) -> None:
        nsets = self.geometry.num_sets
        assoc = self.geometry.assoc
        sets = self._sets
        kernel_line = KERNEL_BASE // self.geometry.line_bytes
        misses = 0
        misses_app = 0
        misses_kernel = 0
        interference = self.result.interference
        inter_counts = interference.counts
        inter_cold = interference.cold
        for line in line_ids.tolist():
            stack = sets[line % nsets]
            if stack and stack[0] == line:
                continue
            try:
                stack.remove(line)
            except ValueError:
                misses += 1
                missing = KERNEL if line >= kernel_line else APP
                if missing is APP:
                    misses_app += 1
                else:
                    misses_kernel += 1
                if len(stack) >= assoc:
                    victim = stack.pop()
                    owner = KERNEL if victim >= kernel_line else APP
                    inter_counts[missing][owner] += 1
                else:
                    inter_cold[missing] += 1
            stack.insert(0, line)
        self.result.accesses += len(line_ids)
        self.result.misses += misses
        self.result.misses_app += misses_app
        self.result.misses_kernel += misses_kernel

    def _run_detailed(self, line_ids, word_lo, word_hi) -> None:
        nsets = self.geometry.num_sets
        assoc = self.geometry.assoc
        sets = self._sets
        words_per_line = self.geometry.words_per_line
        kernel_line = KERNEL_BASE // self.geometry.line_bytes
        result = self.result
        interference = result.interference
        locality = result.locality
        clock = self._clock
        lows = word_lo.tolist()
        highs = word_hi.tolist()
        for i, line in enumerate(line_ids.tolist()):
            clock += 1
            result.accesses += 1
            stack = sets[line % nsets]
            entry = None
            for pos, candidate in enumerate(stack):
                if candidate[0] == line:
                    entry = candidate
                    if pos:
                        del stack[pos]
                        stack.insert(0, entry)
                    break
            if entry is not None:
                counts = entry[2]
                for word in range(lows[i], highs[i] + 1):
                    counts[word] += 1
                continue
            result.misses += 1
            missing = KERNEL if line >= kernel_line else APP
            if missing is APP:
                result.misses_app += 1
            else:
                result.misses_kernel += 1
            if len(stack) >= assoc:
                victim = stack.pop()
                owner = KERNEL if victim[0] >= kernel_line else APP
                interference.record(missing, owner)
                locality.record_replacement(
                    np.asarray(victim[2], dtype=np.int64), clock - victim[1]
                )
            else:
                interference.record_cold(missing)
            counts = [0] * words_per_line
            for word in range(lows[i], highs[i] + 1):
                counts[word] = 1
            stack.insert(0, [line, clock, counts])
        self._clock = clock

    def finish(self) -> ICacheResult:
        """Flush resident lines into the locality stats and return."""
        if self.detail:
            locality = self.result.locality
            for stack in self._sets:
                for entry in stack:
                    locality.record_replacement(
                        np.asarray(entry[2], dtype=np.int64),
                        self._clock - entry[1],
                    )
        return self.result


def _lru_result(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    detail: bool = False,
) -> ICacheResult:
    """Simulate per-CPU private caches and merge the results.

    ``streams`` holds one (starts, counts) pair per CPU; each CPU gets
    its own cache (the paper's configuration) and the counts are summed.
    """
    merged: Optional[ICacheResult] = None
    for starts, counts in streams:
        sim = ICacheSim(geometry, detail=detail)
        sim.access_stream(starts, counts)
        result = sim.finish()
        if merged is None:
            merged = result
        else:
            merged.misses += result.misses
            merged.accesses += result.accesses
            merged.misses_app += result.misses_app
            merged.misses_kernel += result.misses_kernel
            merged.unique_lines += result.unique_lines
            for missing in (APP, KERNEL):
                merged.interference.cold[missing] += result.interference.cold[missing]
                for owner in (APP, KERNEL):
                    merged.interference.counts[missing][owner] += (
                        result.interference.counts[missing][owner]
                    )
            if detail:
                merged.locality.unique_words += result.locality.unique_words
                merged.locality.word_reuse += result.locality.word_reuse
                merged.locality.lifetimes += result.locality.lifetimes
                merged.locality.lines_loaded += result.locality.lines_loaded
                merged.locality.words_loaded += result.locality.words_loaded
                merged.locality.words_used += result.locality.words_used
    if merged is None:
        raise SimulationError("no streams supplied")
    return merged


def simulate_lru(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    detail: bool = False,
) -> ICacheResult:
    """Deprecated: use :func:`repro.sim.simulate` with
    ``MemoryHierarchy.l1i_only(geometry, detail=...)``."""
    warn_once(
        "simulate_lru",
        "simulate_lru() is deprecated; use repro.sim.simulate(streams, "
        "MemoryHierarchy.l1i_only(geometry))",
    )
    return _lru_result(streams, geometry, detail=detail)


def sweep_direct_mapped(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    sizes: List[int],
    line_sizes: List[int],
) -> dict:
    """Deprecated: use :func:`repro.sim.simulate_grid`, which evaluates
    the whole grid in one batched pass over the streams.

    Returns ``{(size, line): misses}`` summed over per-CPU caches.
    """
    warn_once(
        "sweep_direct_mapped",
        "sweep_direct_mapped() is deprecated; use repro.sim.simulate_grid()",
    )
    grid = {}
    for size in sizes:
        for line in line_sizes:
            geometry = CacheGeometry(size, line, 1)
            total = 0
            for starts, counts in streams:
                total += _direct_mapped_misses(starts, counts, geometry)
            grid[(size, line)] = total
    return grid
