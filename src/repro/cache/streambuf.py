"""Instruction stream buffers (Jouppi-style) next to the L1 I-cache.

The paper's discussion cites Ranganathan et al.: a 4-element
instruction stream buffer is effective for database workloads, and
"code layout optimizations ... can be used to enhance the efficiency
of instruction stream buffers by increasing instruction sequence
lengths".  This module lets us test that claim directly.

Model: on an L1 miss the stream buffers are probed; a hit promotes the
line to L1 and the buffer continues prefetching sequentially.  A miss
in both allocates a new stream buffer (LRU victim) which starts
prefetching the lines after the missing one.  Prefetches are modeled
as instantaneous (an upper bound on the benefit, as in trace-driven
prefetch studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.cache.icache import CacheGeometry, collapse_consecutive, expand_line_runs


@dataclass
class StreamBufferResult:
    geometry: CacheGeometry
    num_buffers: int
    depth: int
    accesses: int
    #: L1 misses without any stream buffer.
    raw_misses: int
    #: Misses remaining after stream-buffer hits (the refills that had
    #: to go to L2/memory).
    misses: int
    #: Raw misses that hit in a stream buffer.
    stream_hits: int

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses covered by the stream buffers."""
        return self.stream_hits / self.raw_misses if self.raw_misses else 0.0


class _StreamBuffer:
    __slots__ = ("next_line", "remaining")

    def __init__(self, depth: int) -> None:
        self.next_line = -1
        self.remaining = 0

    def covers(self, line: int) -> bool:
        return self.remaining > 0 and line == self.next_line

    def advance(self) -> None:
        self.next_line += 1
        self.remaining -= 1

    def restart(self, line: int, depth: int) -> None:
        self.next_line = line + 1
        self.remaining = depth


def simulate_stream_buffers(
    starts: np.ndarray,
    counts: np.ndarray,
    geometry: CacheGeometry,
    num_buffers: int = 4,
    depth: int = 4,
) -> StreamBufferResult:
    """L1 I-cache plus ``num_buffers`` sequential stream buffers.

    Only the head of each buffer is matched (classic stream buffer):
    a miss on the head line hits the buffer, promotes the line into
    the cache, and the buffer advances.
    """
    if num_buffers < 1 or depth < 1:
        raise SimulationError("need at least one stream buffer of depth 1")
    line_ids, _, _, _ = expand_line_runs(starts, counts, geometry.line_bytes)
    keep = collapse_consecutive(line_ids)
    line_ids = line_ids[keep]

    nsets = geometry.num_sets
    assoc = geometry.assoc
    sets: List[List[int]] = [[] for _ in range(nsets)]
    buffers = [_StreamBuffer(depth) for _ in range(num_buffers)]
    lru: List[int] = list(range(num_buffers))

    raw_misses = 0
    stream_hits = 0
    for line in line_ids.tolist():
        stack = sets[line % nsets]
        if stack and stack[0] == line:
            continue
        try:
            stack.remove(line)
            stack.insert(0, line)
            continue
        except ValueError:
            pass
        raw_misses += 1
        hit_buffer = -1
        for index, buffer in enumerate(buffers):
            if buffer.covers(line):
                hit_buffer = index
                break
        if hit_buffer >= 0:
            stream_hits += 1
            buffers[hit_buffer].advance()
            lru.remove(hit_buffer)
            lru.insert(0, hit_buffer)
        else:
            victim = lru.pop()
            buffers[victim].restart(line, depth)
            lru.insert(0, victim)
        if len(stack) >= assoc:
            stack.pop()
        stack.insert(0, line)

    return StreamBufferResult(
        geometry=geometry,
        num_buffers=num_buffers,
        depth=depth,
        accesses=len(line_ids),
        raw_misses=raw_misses,
        misses=raw_misses - stream_hits,
        stream_hits=stream_hits,
    )
