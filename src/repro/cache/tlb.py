"""Instruction TLB simulator (fully- or set-associative, LRU)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import obs
from repro.deprecation import warn_once
from repro.errors import SimulationError

#: Alpha page size: 8 KB.
PAGE_BYTES = 8192


@dataclass
class TlbResult:
    entries: int
    misses: int
    accesses: int
    unique_pages: int


def _itlb_result(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    entries: int = 64,
    page_bytes: int = PAGE_BYTES,
) -> TlbResult:
    """Fully-associative LRU iTLB, one per CPU, results summed.

    ``streams`` holds (starts, counts) fetch spans per CPU; the TLB sees
    the page of every line fetched (consecutive same-page accesses
    collapse, which cannot change LRU miss counts).
    """
    if entries < 1:
        raise SimulationError("iTLB needs at least one entry")
    total_misses = 0
    total_accesses = 0
    touched: set = set()
    for starts, counts in streams:
        mask = counts > 0
        s = starts[mask]
        c = counts[mask]
        if len(s) == 0:
            continue
        first = s // page_bytes
        last = (s + c * 4 - 1) // page_bytes
        # Spans rarely cross pages; expand the few that do.
        pages_per_span = last - first + 1
        if int(pages_per_span.max(initial=1)) == 1:
            pages = first
        else:
            span_of = np.repeat(np.arange(len(s)), pages_per_span)
            offsets = np.arange(int(pages_per_span.sum())) - np.repeat(
                np.concatenate([[0], np.cumsum(pages_per_span)[:-1]]), pages_per_span
            )
            pages = first[span_of] + offsets
        keep = np.ones(len(pages), dtype=bool)
        keep[1:] = pages[1:] != pages[:-1]
        pages = pages[keep]
        touched.update(np.unique(pages).tolist())
        # LRU over a small entry count: ordered list, most recent first.
        # With an obs series window configured, the page stream is cut
        # into windows and each window's miss rate is recorded.
        window = obs.series_window()
        page_list = pages.tolist()
        chunks = (
            [page_list[i : i + window] for i in range(0, len(page_list), window)]
            if window and len(page_list) > window
            else [page_list]
        )
        lru: List[int] = []
        for chunk in chunks:
            before = total_misses
            for page in chunk:
                total_accesses += 1
                try:
                    lru.remove(page)
                except ValueError:
                    total_misses += 1
                    if len(lru) >= entries:
                        lru.pop()
                lru.insert(0, page)
            if len(chunks) > 1:
                obs.series("itlb.window_miss_rate").record(
                    (total_misses - before) / len(chunk)
                )
    obs.counter("itlb.accesses").inc(total_accesses)
    obs.counter("itlb.misses").inc(total_misses)
    return TlbResult(
        entries=entries,
        misses=total_misses,
        accesses=total_accesses,
        unique_pages=len(touched),
    )


def simulate_itlb(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    entries: int = 64,
    page_bytes: int = PAGE_BYTES,
) -> TlbResult:
    """Deprecated: use :func:`repro.sim.simulate` with a
    :class:`~repro.sim.MemoryHierarchy` whose ``itlb_entries`` is set."""
    warn_once(
        "simulate_itlb",
        "simulate_itlb() is deprecated; use repro.sim.simulate() with "
        "hierarchy.itlb_entries set (or repro.sim.classic.itlb_result())",
    )
    return _itlb_result(streams, entries=entries, page_bytes=page_bytes)
