"""Victim cache (Jouppi) next to the L1 I-cache.

A hardware alternative the architecture community weighed against
software layout: a small fully-associative buffer holding recently
evicted lines, absorbing conflict misses.  The layout-vs-hardware
benchmark asks whether a victim cache recovers what code layout
delivers (the paper's implicit argument: it cannot, because OLTP
instruction misses are mostly capacity, not conflict).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.cache.icache import CacheGeometry, collapse_consecutive, expand_line_runs


@dataclass
class VictimCacheResult:
    geometry: CacheGeometry
    victim_entries: int
    accesses: int
    #: Misses of the plain cache (no victim buffer).
    raw_misses: int
    #: Misses remaining with the victim buffer (refills from L2/memory).
    misses: int
    #: Raw misses absorbed by the victim buffer.
    victim_hits: int

    @property
    def conflict_fraction(self) -> float:
        """Fraction of raw misses the victim buffer absorbed -- an
        upper-bound estimate of the conflict-miss share."""
        return self.victim_hits / self.raw_misses if self.raw_misses else 0.0


def simulate_victim_cache(
    starts: np.ndarray,
    counts: np.ndarray,
    geometry: CacheGeometry,
    victim_entries: int = 16,
) -> VictimCacheResult:
    """L1 I-cache plus a fully-associative victim buffer."""
    if victim_entries < 1:
        raise SimulationError("victim cache needs at least one entry")
    line_ids, _, _, _ = expand_line_runs(starts, counts, geometry.line_bytes)
    keep = collapse_consecutive(line_ids)
    line_ids = line_ids[keep]

    nsets = geometry.num_sets
    assoc = geometry.assoc
    sets = [[] for _ in range(nsets)]
    victims: list = []  # LRU, most recent first

    raw_misses = 0
    victim_hits = 0
    for line in line_ids.tolist():
        stack = sets[line % nsets]
        if stack and stack[0] == line:
            continue
        try:
            stack.remove(line)
            stack.insert(0, line)
            continue
        except ValueError:
            pass
        raw_misses += 1
        try:
            victims.remove(line)
            victim_hits += 1
        except ValueError:
            pass
        # Install into L1; the evicted line drops into the victim buffer.
        if len(stack) >= assoc:
            evicted = stack.pop()
            victims.insert(0, evicted)
            if len(victims) > victim_entries:
                victims.pop()
        stack.insert(0, line)

    return VictimCacheResult(
        geometry=geometry,
        victim_entries=victim_entries,
        accesses=len(line_ids),
        raw_misses=raw_misses,
        misses=raw_misses - victim_hits,
        victim_hits=victim_hits,
    )
