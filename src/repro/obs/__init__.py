"""``repro.obs`` — the unified observability layer.

One import point for the three observability primitives threaded
through the stack:

* **Tracing spans** — ``obs.span("layout.build", combo="all")``
  times a region (wall/CPU/peak-RSS), nests per thread, and, when
  tracing is enabled, appends one JSONL event per span to a thread-
  and fork-safe sink.  :mod:`repro.obs.chrome` exports the sink file
  for ``chrome://tracing`` / Perfetto.
* **Metric instruments** — counters, gauges, histograms, and
  per-window series in a process-global registry
  (``obs.counter("icache.misses").inc(...)``); snapshots land in the
  ``metrics`` section of every ``BENCH_*.json``.
* **Run artifacts** — :mod:`repro.obs.report` renders a results
  directory into one Markdown/HTML report; :mod:`repro.obs.benchdiff`
  compares fresh ``BENCH_*.json`` against committed baselines (the CI
  perf-regression gate).

Metrics are always on (they cost a few Python ops at stream/window
granularity).  Tracing is off by default; enable it with
:func:`enable` or the ``REPRO_TRACE`` environment variable (a
``.jsonl`` path).  ``REPRO_OBS_WINDOW`` sets the simulator series
window (accesses per miss-rate sample; 0 disables the series).

See ``docs/OBSERVABILITY.md`` for schemas and workflows.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Union

from repro.obs.chrome import chrome_trace, export_chrome_trace, spans_from_chrome
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Series,
    SERIES_CAPACITY,
)
from repro.obs.sink import JsonlSink, iter_events, read_events
from repro.obs.span import NULL_SPAN, Span, Tracer, peak_rss_kb

#: Default per-window sample size (simulator accesses per miss-rate
#: point) used when tracing is enabled without an explicit window.
DEFAULT_WINDOW = 8192

_REGISTRY = MetricRegistry()
_TRACER = Tracer()
_WINDOW = 0


def registry() -> MetricRegistry:
    """The process-global metric registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def counter(name: str) -> Counter:
    """Shorthand for ``registry().counter(name)``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``registry().gauge(name)``."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Shorthand for ``registry().histogram(name)``."""
    return _REGISTRY.histogram(name)


def series(name: str) -> Series:
    """Shorthand for ``registry().series(name)``."""
    return _REGISTRY.series(name)


def span(name: str, **attrs):
    """Open a traced span on the global tracer (no-op when disabled)."""
    return _TRACER.span(name, **attrs)


def enabled() -> bool:
    """True when span tracing is capturing (sink or in-memory)."""
    return _TRACER.active


def series_window() -> int:
    """Simulator accesses per miss-rate series point (0 = series off)."""
    return _WINDOW


def enable(
    trace_path: Optional[Union[str, "os.PathLike[str]"]] = None,
    *,
    record: bool = False,
    window: Optional[int] = None,
) -> Tracer:
    """Turn tracing on.

    ``trace_path`` opens a JSONL sink (events appended, fork-safe);
    ``record=True`` additionally keeps finished spans in memory on
    :attr:`Tracer.finished`.  ``window`` sets the simulator series
    window (defaults to :data:`DEFAULT_WINDOW` when tracing turns on
    and no window was configured).  Returns the global tracer.
    """
    global _WINDOW
    if trace_path is not None:
        if _TRACER.sink is not None:
            _TRACER.sink.close()
        _TRACER.sink = JsonlSink(trace_path)
    _TRACER.record = record or _TRACER.record
    if window is not None:
        _WINDOW = max(0, int(window))
    elif _WINDOW == 0:
        _WINDOW = DEFAULT_WINDOW
    return _TRACER


def disable() -> None:
    """Turn tracing off and close the sink (metrics stay on)."""
    global _WINDOW
    if _TRACER.sink is not None:
        _TRACER.sink.close()
        _TRACER.sink = None
    _TRACER.record = False
    _TRACER.finished.clear()
    _WINDOW = 0


def reset_metrics() -> None:
    """Clear every instrument in the global registry."""
    _REGISTRY.reset()


def flush_metrics() -> Optional[Dict]:
    """Emit a ``metrics`` snapshot event to the trace sink.

    Returns the snapshot (or None when empty / no sink attached).
    """
    snapshot = _REGISTRY.snapshot()
    if not snapshot or _TRACER.sink is None:
        return snapshot or None
    _TRACER.sink.emit(
        {
            "type": "metrics",
            "pid": os.getpid(),
            "ts": round(time.time(), 6),
            "metrics": snapshot,
        }
    )
    return snapshot


def _init_from_env() -> None:
    """Honor ``REPRO_TRACE`` / ``REPRO_OBS_WINDOW`` at import time, so
    pytest-driven benchmarks and forked workers trace without code
    changes."""
    global _WINDOW
    window = os.environ.get("REPRO_OBS_WINDOW")
    if window:
        try:
            _WINDOW = max(0, int(window))
        except ValueError:
            pass
    path = os.environ.get("REPRO_TRACE")
    if path:
        enable(path)


_init_from_env()

__all__ = [
    "Counter",
    "DEFAULT_WINDOW",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricRegistry",
    "NULL_SPAN",
    "SERIES_CAPACITY",
    "Series",
    "Span",
    "Tracer",
    "chrome_trace",
    "counter",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "flush_metrics",
    "gauge",
    "histogram",
    "iter_events",
    "peak_rss_kb",
    "read_events",
    "registry",
    "reset_metrics",
    "series",
    "series_window",
    "span",
    "spans_from_chrome",
    "tracer",
]
