"""Metric instruments: counters, gauges, histograms, and series.

Instruments live in a :class:`MetricRegistry` keyed by a dotted name
(``"icache.misses"``, ``"online.drift_score"``).  The default registry
(:func:`repro.obs.registry`) is always on — recording is a few Python
ops per call, and the hot simulator loops only touch instruments at
stream/window granularity, never per access.

Snapshots (:meth:`MetricRegistry.snapshot`) are plain JSON-ready
dicts; :func:`repro.harness.results.write_benchmark_json` embeds one
in every ``BENCH_*.json`` as the ``metrics`` section.

All instruments are thread-safe (one registry-wide lock guards
structural changes; per-instrument updates hold the instrument's own
lock).  Forked worker processes mutate *copies* of the registry —
their aggregates are not merged back; anything a worker must report
should travel through its return value or the span sink instead.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

#: Points a Series keeps before it starts decimating (drop every other
#: point and double the stride) — bounds memory on long runs while
#: keeping full time coverage.
SERIES_CAPACITY = 4096


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict:
        """JSON-ready view: ``{"kind": "counter", "value": n}``."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time float (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> Dict:
        """JSON-ready view: ``{"kind": "gauge", "value": x}``."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean."""

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations (None when empty)."""
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict:
        """JSON-ready view with count/sum/min/max/mean."""
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Series:
    """An append-only time series of ``(index, value)`` points.

    Used for the per-window miss-rate streams the cache simulators
    emit.  ``index`` is the running window number.  Past
    ``SERIES_CAPACITY`` points the series decimates: every other
    stored point is dropped and only every ``stride``-th new point is
    kept, so memory stays bounded on arbitrarily long runs.
    """

    kind = "series"

    def __init__(self, name: str, capacity: int = SERIES_CAPACITY) -> None:
        self.name = name
        self.capacity = max(2, capacity)
        self.points: List[Tuple[int, float]] = []
        self.stride = 1
        self._next_index = 0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Append one point at the next window index."""
        with self._lock:
            index = self._next_index
            self._next_index += 1
            if index % self.stride:
                return
            self.points.append((index, float(value)))
            if len(self.points) >= self.capacity:
                self.points = self.points[::2]
                self.stride *= 2

    def snapshot(self) -> Dict:
        """JSON-ready view: points plus count/stride bookkeeping."""
        with self._lock:
            points = list(self.points)
            return {
                "kind": self.kind,
                "count": self._next_index,
                "stride": self.stride,
                "points": [[i, v] for i, v in points],
            }


class MetricRegistry:
    """Name -> instrument map with typed, create-on-first-use access."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        """The series named ``name`` (created on first use)."""
        return self._get(name, Series)

    def snapshot(self) -> Dict[str, Dict]:
        """All instruments as a name-sorted JSON-ready dict."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI commands)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
