"""One-page run reports from a results directory.

``repro report`` gathers everything a run left behind — the
``BENCH_*.json`` documents, their embedded :mod:`repro.obs` metric
snapshots, and (optionally) a span trace JSONL — and renders a single
Markdown document: figure tables, metric summaries, and an ASCII
flamegraph of where the wall time went.  ``--html`` wraps the same
content in a minimal self-contained page.
"""

from __future__ import annotations

import html as _html
import pathlib
from typing import Dict, List, Optional, Union

from repro.obs.benchdiff import load_bench_dir
from repro.obs.sink import read_events

PathLike = Union[str, pathlib.Path]

#: Width of the flamegraph bar column.
FLAME_WIDTH = 40


def _md_table(columns: List[str], rows: List[List]) -> str:
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join(" --- " for _ in columns) + "|"
    body = [
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    ]
    return "\n".join([header, rule] + body)


def _sparkline(points: List[float]) -> str:
    """A unicode block-character sparkline for a metric series."""
    if not points:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(points), max(points)
    span = hi - lo
    if span <= 0:
        return blocks[0] * min(len(points), 60)
    step = max(1, len(points) // 60)
    sampled = points[::step][:60]
    return "".join(
        blocks[min(len(blocks) - 1, int((p - lo) / span * (len(blocks) - 1)))]
        for p in sampled
    )


def _metrics_section(name: str, metrics: Dict) -> List[str]:
    lines = [f"### Metrics: {name}", ""]
    counters = []
    gauges = []
    histograms = []
    series = []
    for metric, payload in sorted(metrics.items()):
        kind = payload.get("kind")
        if kind == "counter":
            counters.append([metric, payload.get("value")])
        elif kind == "gauge":
            gauges.append([metric, payload.get("value")])
        elif kind == "histogram":
            histograms.append(
                [
                    metric,
                    payload.get("count"),
                    _fmt(payload.get("mean")),
                    _fmt(payload.get("min")),
                    _fmt(payload.get("max")),
                    _fmt(payload.get("sum")),
                ]
            )
        elif kind == "series":
            # Series snapshots hold (index, value) pairs.
            points = [float(p[1]) for p in payload.get("points", [])]
            series.append(
                [
                    metric,
                    payload.get("count"),
                    _fmt(min(points)) if points else "-",
                    _fmt(max(points)) if points else "-",
                    f"`{_sparkline(points)}`" if points else "-",
                ]
            )
    if counters:
        lines += [_md_table(["counter", "value"], counters), ""]
    if gauges:
        lines += [_md_table(["gauge", "value"], gauges), ""]
    if histograms:
        lines += [
            _md_table(
                ["histogram", "count", "mean", "min", "max", "sum"], histograms
            ),
            "",
        ]
    if series:
        lines += [
            _md_table(["series", "points", "min", "max", "shape"], series),
            "",
        ]
    return lines


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def flamegraph_lines(trace_path: PathLike, width: int = FLAME_WIDTH) -> List[str]:
    """ASCII flamegraph of the span tree in a trace JSONL.

    Spans nest by ``parent_id``; each line shows an indented span name,
    a bar proportional to its wall time against the root total, and the
    time itself.  Multiple roots (e.g. spans from forked workers) are
    rendered as siblings.
    """
    spans = [e for e in read_events(trace_path) if e.get("type") == "span"]
    if not spans:
        return []
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.get("ts", 0.0))
    total = sum(s.get("wall_s", 0.0) for s in children.get(None, [])) or 1.0

    lines: List[str] = []

    def walk(span: Dict, depth: int) -> None:
        wall = span.get("wall_s", 0.0)
        bar = "█" * max(1, round(width * wall / total))
        indent = "  " * depth
        lines.append(
            f"{indent}{span['name']:<{max(1, 28 - 2 * depth)}} "
            f"{bar:<{width}} {wall * 1000:9.2f} ms"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def render_report(
    results_dir: PathLike, trace_path: Optional[PathLike] = None
) -> str:
    """The Markdown run report for one results directory."""
    documents = load_bench_dir(results_dir)
    lines: List[str] = ["# Run report", ""]
    if not documents:
        lines.append(f"No `BENCH_*.json` documents found in `{results_dir}`.")
        lines.append("")
    run_ids = sorted(
        {
            doc.get("run", {}).get("id")
            for doc in documents.values()
            if doc.get("run", {}).get("id")
        }
    )
    if run_ids:
        lines.append(f"Run id(s): {', '.join(run_ids)}")
        lines.append("")
    for name, document in sorted(documents.items()):
        title = document.get("title") or name
        lines += [f"## {title}", ""]
        columns = document.get("columns") or []
        rows = document.get("rows") or []
        if columns and rows:
            lines += [_md_table(columns, rows), ""]
        for note in document.get("notes") or []:
            lines.append(f"> {note}")
        if document.get("notes"):
            lines.append("")
        metrics = document.get("metrics") or {}
        if metrics:
            lines += _metrics_section(name, metrics)
    if trace_path is not None and pathlib.Path(trace_path).is_file():
        flame = flamegraph_lines(trace_path)
        if flame:
            lines += ["## Span flamegraph", "", "```"] + flame + ["```", ""]
    return "\n".join(lines).rstrip() + "\n"


def render_html(markdown: str, title: str = "repro run report") -> str:
    """A minimal self-contained HTML wrapper around the Markdown report.

    The report is intentionally served as preformatted Markdown — no
    third-party renderer is available in the pinned environment, and
    the tables read fine monospaced.
    """
    return (
        "<!DOCTYPE html>\n"
        "<html><head><meta charset=\"utf-8\">"
        f"<title>{_html.escape(title)}</title>"
        "<style>body{font-family:monospace;white-space:pre-wrap;"
        "max-width:100ch;margin:2em auto;}</style>"
        "</head><body>"
        f"{_html.escape(markdown)}"
        "</body></html>\n"
    )
