"""Benchmark regression gating: diff two directories of BENCH_*.json.

CI keeps a blessed set of quick-scale result documents under
``benchmarks/baselines/``; a fresh run writes the same documents to a
scratch directory, and :func:`compare_dirs` matches them name-by-name,
row-by-row, cell-by-cell.  A numeric cell that moved against the
baseline by more than the threshold percentage in the *worse*
direction is a regression and fails the gate.

"Worse" defaults to *higher* — the repro's tables are dominated by
miss counts, miss rates and MPKI.  Columns whose name signals a
better-is-higher quantity (hit rates, captured fractions, coverage,
speedups) are inverted automatically; see :data:`HIGHER_IS_BETTER`.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Column-name fragments marking quantities where *higher* is better.
HIGHER_IS_BETTER = (
    "captured",
    "hit",
    "coverage",
    "speedup",
    "reuse",
    "ratio_ok",
    "recovered",
    "gate_ok",
)


@dataclass
class CellDelta:
    """One numeric cell compared between baseline and fresh."""

    name: str
    row_key: str
    column: str
    baseline: float
    fresh: float
    pct_change: float
    #: True when the move exceeds the threshold in the worse direction.
    regression: bool

    def describe(self) -> str:
        """One human-readable line for the diff report."""
        arrow = "WORSE" if self.regression else "ok"
        return (
            f"{self.name}[{self.row_key}].{self.column}: "
            f"{self.baseline:g} -> {self.fresh:g} "
            f"({self.pct_change:+.2f}%) {arrow}"
        )


@dataclass
class DiffReport:
    """Outcome of one baseline-vs-fresh comparison."""

    threshold_pct: float
    deltas: List[CellDelta] = field(default_factory=list)
    #: Structural mismatches (missing files/rows/columns) — reported,
    #: never fatal, so adding a new benchmark does not break the gate.
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CellDelta]:
        """Cells that moved beyond the threshold in the worse direction."""
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        """True when no cell regressed beyond the threshold."""
        return not self.regressions

    def render(self) -> str:
        """The full diff as text: verdict, regressions, notes, summary."""
        lines = []
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"bench-diff: {verdict} "
            f"({len(self.regressions)} regression(s) beyond "
            f"{self.threshold_pct:g}% across {len(self.deltas)} compared cells)"
        )
        for delta in self.regressions:
            lines.append("  " + delta.describe())
        changed = [
            d for d in self.deltas if not d.regression and abs(d.pct_change) > 0
        ]
        if changed:
            lines.append(f"  ({len(changed)} cell(s) moved within tolerance)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines) + "\n"


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _higher_is_better(column: str) -> bool:
    lowered = column.lower()
    return any(marker in lowered for marker in HIGHER_IS_BETTER)


def load_bench_dir(path: PathLike) -> Dict[str, Dict]:
    """All ``BENCH_<name>.json`` documents under ``path``, keyed by name.

    History sidecars (``*.history.jsonl``) are ignored.
    """
    root = pathlib.Path(path)
    documents = {}
    for file in sorted(root.glob("BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(.+)\.json", file.name)
        if not match:
            continue
        documents[match.group(1)] = json.loads(file.read_text())
    return documents


def _rows_by_key(document: Dict) -> Dict[str, List]:
    rows = document.get("rows") or []
    return {str(row[0]): list(row) for row in rows if row}


def diff_documents(
    name: str,
    baseline: Dict,
    fresh: Dict,
    threshold_pct: float,
    report: DiffReport,
) -> None:
    """Compare one benchmark document pair into ``report``.

    Rows match on their first cell (the row key: a cache size, a combo
    name, ...); remaining cells match positionally against the
    baseline's column names.  Non-numeric cells are skipped; rows or
    columns present on one side only become notes.
    """
    base_columns = list(baseline.get("columns") or [])
    fresh_columns = list(fresh.get("columns") or [])
    if base_columns != fresh_columns:
        report.notes.append(
            f"{name}: column mismatch {base_columns} vs {fresh_columns}"
        )
    base_rows = _rows_by_key(baseline)
    fresh_rows = _rows_by_key(fresh)
    for key in base_rows.keys() - fresh_rows.keys():
        report.notes.append(f"{name}: row {key!r} missing from fresh run")
    for key in fresh_rows.keys() - base_rows.keys():
        report.notes.append(f"{name}: row {key!r} missing from baseline")
    for key in sorted(base_rows.keys() & fresh_rows.keys()):
        brow, frow = base_rows[key], fresh_rows[key]
        for idx in range(1, min(len(brow), len(frow))):
            bval, fval = _numeric(brow[idx]), _numeric(frow[idx])
            if bval is None or fval is None:
                continue
            column = (
                base_columns[idx] if idx < len(base_columns) else f"col{idx}"
            )
            if bval == 0:
                pct = 0.0 if fval == 0 else float("inf")
            else:
                pct = 100.0 * (fval - bval) / abs(bval)
            worse = -pct if _higher_is_better(column) else pct
            report.deltas.append(
                CellDelta(
                    name=name,
                    row_key=key,
                    column=column,
                    baseline=bval,
                    fresh=fval,
                    pct_change=pct,
                    regression=worse > threshold_pct,
                )
            )


def _wall_time_seconds(document: Dict) -> Optional[float]:
    metrics = document.get("metrics") or {}
    total = 0.0
    seen = False
    for name, payload in metrics.items():
        if name.startswith("pipeline.") and name.endswith(".seconds"):
            total += float(payload.get("sum", 0.0))
            seen = True
    return total if seen else None


def compare_dirs(
    fresh_dir: PathLike,
    baseline_dir: PathLike,
    threshold_pct: float = 8.0,
    wall_time: bool = False,
) -> DiffReport:
    """Diff every benchmark the two directories share.

    With ``wall_time``, the summed ``pipeline.*.seconds`` metric of
    each document pair is gated at the same threshold (documents
    without metrics are skipped — wall time is advisory by default
    because it is machine-dependent).
    """
    report = DiffReport(threshold_pct=threshold_pct)
    baseline = load_bench_dir(baseline_dir)
    fresh = load_bench_dir(fresh_dir)
    if not baseline:
        report.notes.append(f"no BENCH_*.json under baseline {baseline_dir}")
    if not fresh:
        report.notes.append(f"no BENCH_*.json under fresh {fresh_dir}")
    for name in sorted(baseline.keys() - fresh.keys()):
        report.notes.append(f"{name}: present in baseline only")
    for name in sorted(fresh.keys() - baseline.keys()):
        report.notes.append(f"{name}: present in fresh run only")
    for name in sorted(baseline.keys() & fresh.keys()):
        diff_documents(name, baseline[name], fresh[name], threshold_pct, report)
        if wall_time:
            bsecs = _wall_time_seconds(baseline[name])
            fsecs = _wall_time_seconds(fresh[name])
            if bsecs and fsecs is not None:
                pct = 100.0 * (fsecs - bsecs) / bsecs
                report.deltas.append(
                    CellDelta(
                        name=name,
                        row_key="<run>",
                        column="wall_time_s",
                        baseline=bsecs,
                        fresh=fsecs,
                        pct_change=pct,
                        regression=pct > threshold_pct,
                    )
                )
    return report
