"""Hierarchical tracing spans.

A span measures one named region of work — a pipeline stage, one
layout build, one simulated sweep cell.  Spans nest: each thread keeps
a stack, and a span records its parent's id, so the emitted events
reconstruct the call tree (``repro report`` renders it as an ASCII
flamegraph; :mod:`repro.obs.chrome` exports it for ``chrome://tracing``
/ Perfetto).

Each finished span captures:

* ``wall_s``  — wall time (``perf_counter`` delta);
* ``cpu_s``   — process CPU time (``process_time`` delta);
* ``rss_kb``  — peak RSS of the process at span end
  (``getrusage(RUSAGE_SELF).ru_maxrss``; 0 where unavailable);
* ``attrs``   — caller-provided key/values (combo names, cache
  hit/miss, byte counts ...).

Span ids are ``"<pid>:<serial>"`` so ids from forked worker processes
never collide in a shared sink.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix platforms
    resource = None

from repro.obs.sink import JsonlSink


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unknown)."""
    if resource is None:  # pragma: no cover - non-Unix platforms
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class Span:
    """One open (then finished) traced region."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "pid", "tid",
        "start_unix", "wall_s", "cpu_s", "rss_kb", "_t0", "_cpu0",
    )

    def __init__(
        self, name: str, attrs: Dict, span_id: str, parent_id: Optional[str]
    ) -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start_unix = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.rss_kb = 0
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value

    def finish(self) -> None:
        """Close the span, capturing wall/CPU time and peak RSS."""
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._cpu0
        self.rss_kb = peak_rss_kb()

    def to_event(self) -> Dict:
        """The span as a sink event (see docs/OBSERVABILITY.md)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "ts": round(self.start_unix, 6),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "rss_kb": self.rss_kb,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared span stand-in when tracing is disabled; absorbs sets."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        """No-op (tracing disabled)."""


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span factory: thread-local nesting, optional sink.

    With no sink and ``record=False`` (the defaults) ``span()`` is a
    cheap no-op context manager, so instrumented call sites cost
    almost nothing in untraced runs.
    """

    def __init__(
        self, sink: Optional[JsonlSink] = None, record: bool = False
    ) -> None:
        self.sink = sink
        self.record = record
        #: Finished spans kept in memory when ``record`` is set.
        self.finished: List[Span] = []
        self._local = threading.local()
        self._serial = itertools.count(1)

    @property
    def active(self) -> bool:
        """True when spans are being captured (sink or recording)."""
        return self.sink is not None or self.record

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[object]:
        """Open a nested span; yields it so callers can ``set`` attrs.

        Attributes with value ``None`` are dropped.  When the tracer
        is inactive this yields a shared no-op span.
        """
        if not self.active:
            yield NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            name,
            {k: v for k, v in attrs.items() if v is not None},
            span_id=f"{os.getpid()}:{next(self._serial)}",
            parent_id=parent,
        )
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.finish()
            if self.record:
                self.finished.append(span)
            if self.sink is not None:
                self.sink.emit(span.to_event())

    def current(self) -> Optional[Span]:
        """The innermost open span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None
