"""The JSONL event sink: one observability event per line.

Spans and metric flushes are appended to a single ``.jsonl`` file as
self-contained JSON objects.  The sink must survive the repo's two
concurrency regimes:

* **threads** — a lock serializes encoding + writing;
* **fork-based worker processes** (:func:`repro.harness.parallel.parallel_map`)
  — the file descriptor is opened with ``O_APPEND`` and every event is
  written with a *single* ``os.write`` call, so lines from different
  processes interleave whole, never intra-line.

Events are plain dicts.  Every event carries ``type`` (``"span"`` or
``"metrics"``), ``pid``, and a wall-clock ``ts`` (Unix seconds); span
events add the timing payload described in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Dict, Iterator, List, Union

PathLike = Union[str, "os.PathLike[str]"]


class JsonlSink:
    """Append-only, thread- and fork-safe JSONL event writer."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()
        self._closed = False

    def emit(self, event: Dict) -> None:
        """Append one event as a single JSON line (atomic per line)."""
        if self._closed:
            return
        line = json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if not self._closed:
                os.write(self._fd, data)

    def close(self) -> None:
        """Close the descriptor; subsequent emits are dropped."""
        with self._lock:
            if not self._closed:
                self._closed = True
                os.close(self._fd)

    def __repr__(self) -> str:
        return f"JsonlSink({str(self.path)!r})"


def read_events(path: PathLike) -> List[Dict]:
    """Load every event from a JSONL trace file, in file order.

    Raises ``ValueError`` on a corrupt (non-JSON) line — the
    concurrency tests rely on this to prove lines never tear.
    """
    return list(iter_events(path))


def iter_events(path: PathLike) -> Iterator[Dict]:
    """Yield events from a JSONL trace file one at a time."""
    with open(str(path), "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: corrupt trace line ({exc})"
                ) from exc
