"""Chrome ``trace_event`` export.

Converts the JSONL span events written by :class:`repro.obs.sink.JsonlSink`
into the Trace Event Format understood by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: one complete (``"ph": "X"``)
event per span, with microsecond timestamps, so a whole
``Experiment`` run — including spans emitted by forked sweep workers,
which appear as separate pids — is inspectable on a timeline.

The export is loss-free for spans: :func:`spans_from_chrome` recovers
every span's name, timing, and attributes from the exported document
(the round-trip the test suite checks).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.obs.sink import read_events

PathLike = Union[str, pathlib.Path]


def chrome_trace(events: Iterable[Dict]) -> Dict:
    """Build a Trace Event Format document from sink events.

    Non-span events (metric flushes) are carried across as
    ``metrics``-category instant events so they stay visible on the
    timeline.
    """
    trace_events: List[Dict] = []
    for event in events:
        if event.get("type") == "span":
            trace_events.append(
                {
                    "name": event["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": round(event["ts"] * 1e6, 3),
                    "dur": round(event["wall_s"] * 1e6, 3),
                    "pid": event["pid"],
                    "tid": event["tid"],
                    "args": {
                        "span_id": event["span_id"],
                        "parent_id": event["parent_id"],
                        "cpu_s": event["cpu_s"],
                        "rss_kb": event["rss_kb"],
                        **event.get("attrs", {}),
                    },
                }
            )
        elif event.get("type") == "metrics":
            trace_events.append(
                {
                    "name": "metrics",
                    "cat": "metrics",
                    "ph": "i",
                    "s": "g",
                    "ts": round(event.get("ts", 0.0) * 1e6, 3),
                    "pid": event.get("pid", 0),
                    "tid": 0,
                    "args": {"metrics": event.get("metrics", {})},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def spans_from_chrome(document: Dict) -> List[Dict]:
    """Recover span events from a Chrome trace document.

    The inverse of :func:`chrome_trace` for ``"X"`` events: returns
    dicts shaped like the original sink span events (timestamps back
    in seconds, attributes split out of ``args``).
    """
    spans: List[Dict] = []
    for entry in document.get("traceEvents", ()):
        if entry.get("ph") != "X":
            continue
        args = dict(entry.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        cpu_s = args.pop("cpu_s", 0.0)
        rss_kb = args.pop("rss_kb", 0)
        spans.append(
            {
                "type": "span",
                "name": entry["name"],
                "span_id": span_id,
                "parent_id": parent_id,
                "pid": entry["pid"],
                "tid": entry["tid"],
                "ts": round(entry["ts"] / 1e6, 6),
                "wall_s": round(entry["dur"] / 1e6, 6),
                "cpu_s": cpu_s,
                "rss_kb": rss_kb,
                "attrs": args,
            }
        )
    return spans


def export_chrome_trace(jsonl_path: PathLike, out_path: PathLike) -> pathlib.Path:
    """Convert a ``.jsonl`` trace file to a Chrome trace ``.json``.

    Returns the written path.  Load the result in ``chrome://tracing``
    or https://ui.perfetto.dev.
    """
    document = chrome_trace(read_events(jsonl_path))
    out_path = pathlib.Path(out_path)
    out_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return out_path
