"""Alpha-like binary IR: what the Spike-style optimizer sees."""

from repro.ir.binary import Binary
from repro.ir.block import BasicBlock
from repro.ir.callgraph import UnitCallGraph, build_unit_call_graph
from repro.ir.flowgraph import (
    FlowEdge,
    FlowGraph,
    flow_graph_from_block_counts,
    flow_graph_from_edge_counts,
)
from repro.ir.instruction import INSTRUCTION_BYTES, SEGMENT_ENDING, Terminator
from repro.ir.layout import (
    AddressMap,
    CodeUnit,
    Layout,
    assign_addresses,
    baseline_layout,
    trace_fetch_counts,
)
from repro.ir.procedure import Procedure

__all__ = [
    "AddressMap",
    "BasicBlock",
    "Binary",
    "CodeUnit",
    "FlowEdge",
    "FlowGraph",
    "INSTRUCTION_BYTES",
    "Layout",
    "Procedure",
    "SEGMENT_ENDING",
    "Terminator",
    "UnitCallGraph",
    "assign_addresses",
    "baseline_layout",
    "build_unit_call_graph",
    "flow_graph_from_block_counts",
    "flow_graph_from_edge_counts",
    "trace_fetch_counts",
]
