"""Weighted call graphs over placeable code units.

For unsplit binaries the nodes are procedures.  After fine-grain
splitting the nodes are segments, and -- as in Spike -- the graph
"includes branch as well as call edges to represent transitions between
these new procedures".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import LayoutError
from repro.ir.binary import Binary
from repro.ir.instruction import Terminator
from repro.ir.layout import CodeUnit


class UnitCallGraph:
    """Undirected weighted graph between code units.

    Parallel edges are summed ("if there is more than one edge with the
    same source and destination, we compute the sum of the execution
    counts and delete all but one edge").
    """

    def __init__(self, unit_names: Iterable[str]) -> None:
        self.nodes: List[str] = list(unit_names)
        self._index = {name: i for i, name in enumerate(self.nodes)}
        if len(self._index) != len(self.nodes):
            raise LayoutError("duplicate unit names in call graph")
        self._weights: Dict[Tuple[str, str], float] = defaultdict(float)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def add_weight(self, a: str, b: str, weight: float) -> None:
        """Accumulate weight on the (undirected) edge a--b."""
        if a == b:
            return  # self edges never influence placement
        if a not in self._index or b not in self._index:
            raise LayoutError(f"call graph edge references unknown unit: {a!r}/{b!r}")
        self._weights[self._key(a, b)] += weight

    def weight(self, a: str, b: str) -> float:
        return self._weights.get(self._key(a, b), 0.0)

    def edges_by_weight(self) -> List[Tuple[str, str, float]]:
        """Edges sorted heaviest-first with deterministic tie-break."""
        items = [(a, b, w) for (a, b), w in self._weights.items() if w > 0]
        items.sort(key=lambda e: (-e[2], e[0], e[1]))
        return items


def build_unit_call_graph(
    binary: Binary,
    units: Sequence[CodeUnit],
    block_counts: Sequence[int],
    edge_counts: Optional[Mapping[Tuple[int, int], int]] = None,
) -> UnitCallGraph:
    """Build the unit-level graph from profile data.

    Call edges are weighted by the execution count of the calling block
    (the paper's rule).  Inter-unit *branch* edges (conditional or
    unconditional transfers between segments of a split procedure) are
    weighted by the measured transition count when ``edge_counts`` is
    given, else by the source block count.
    """
    graph = UnitCallGraph(u.name for u in units)
    unit_of_block: Dict[int, str] = {}
    entry_unit_of_proc: Dict[str, str] = {}
    for unit in units:
        for bid in unit.block_ids:
            unit_of_block[bid] = unit.name
        if unit.is_entry:
            entry_unit_of_proc[unit.proc_name] = unit.name

    for unit in units:
        for bid in unit.block_ids:
            block = binary.block(bid)
            if block.terminator is Terminator.CALL:
                callee_entry = entry_unit_of_proc.get(block.call_target)
                if callee_entry is not None:
                    graph.add_weight(
                        unit.name, callee_entry, float(block_counts[bid])
                    )
            for dst in block.succs:
                dst_unit = unit_of_block[dst]
                if dst_unit == unit.name:
                    continue
                if edge_counts is not None and block.terminator is not Terminator.CALL:
                    weight = float(edge_counts.get((bid, dst), 0))
                else:
                    # Call continuations never appear as adjacent trace
                    # transitions (the callee runs in between), so --
                    # like Pettis-Hansen -- weight them by the calling
                    # block's execution count.
                    weight = float(block_counts[bid])
                graph.add_weight(unit.name, dst_unit, weight)
    return graph
