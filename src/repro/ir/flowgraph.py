"""Per-procedure control-flow graphs with profile edge weights."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.instruction import Terminator
from repro.ir.procedure import Procedure


@dataclass(frozen=True)
class FlowEdge:
    """A weighted intra-procedure control-flow edge."""

    src: int
    dst: int
    weight: float


class FlowGraph:
    """Control-flow graph of one procedure, weighted by a profile.

    Edges exist for every possible intra-procedure transition: both arms
    of conditional branches, unconditional branch targets, fallthroughs,
    call return-continuations, and all indirect-jump targets.
    """

    def __init__(self, proc: Procedure) -> None:
        self.proc = proc
        self._weights: Dict[Tuple[int, int], float] = {}
        for block in proc.blocks:
            for dst in block.succs:
                self._weights[(block.bid, dst)] = 0.0

    def set_weight(self, src: int, dst: int, weight: float) -> None:
        """Set the weight of an existing edge (unknown edges are ignored
        -- a profile may include transitions this graph does not model,
        e.g. exceptional paths)."""
        if (src, dst) in self._weights:
            self._weights[(src, dst)] = weight

    def weight(self, src: int, dst: int) -> float:
        return self._weights.get((src, dst), 0.0)

    def edges(self) -> List[FlowEdge]:
        """All edges, unordered."""
        return [FlowEdge(s, d, w) for (s, d), w in self._weights.items()]

    def edges_by_weight(self) -> List[FlowEdge]:
        """Edges sorted heaviest-first.

        Ties break deterministically on (src, dst) so chaining is
        reproducible run to run -- the "stable tie-break" design choice
        called out in DESIGN.md.
        """
        return sorted(
            self.edges(), key=lambda e: (-e.weight, e.src, e.dst)
        )


def flow_graph_from_block_counts(
    proc: Procedure, block_counts: Sequence[int]
) -> FlowGraph:
    """Estimate edge weights from basic-block execution counts.

    This mirrors the paper's Pixie-based setup: "the control flow edge
    weights are estimated from the basic block counts".  Each edge
    ``s -> d`` starts from the raw estimate ``min(count(s), count(d))``;
    a block's outgoing estimates are then rescaled to sum to
    ``count(s)``, since control leaves a block exactly once per
    execution.  Without the rescale a two-successor block whose arms
    are both hot would carry up to ``2 * count(s)`` units of outflow,
    violating flow conservation and overweighting branchy blocks in
    the chaining pass (``repro.check`` PRF002 catches this).
    """
    graph = FlowGraph(proc)
    for block in proc.blocks:
        src_count = float(block_counts[block.bid])
        raw = [
            (dst, min(src_count, float(block_counts[dst])))
            for dst in block.succs
        ]
        total = sum(weight for _dst, weight in raw)
        scale = src_count / total if total > src_count > 0 else 1.0
        for dst, weight in raw:
            graph.set_weight(block.bid, dst, weight * scale)
    return graph


def flow_graph_from_edge_counts(
    proc: Procedure,
    edge_counts: Mapping[Tuple[int, int], int],
    block_counts: Optional[Sequence[int]] = None,
) -> FlowGraph:
    """Build exact edge weights from measured transition counts.

    ``edge_counts`` maps ``(src_bid, dst_bid) -> count``; transitions
    not present default to zero.  Call blocks are special: the callee's
    code runs between the call and its continuation, so the transition
    never appears in the measured stream -- when ``block_counts`` is
    supplied, call-continuation edges are weighted by the calling
    block's execution count instead.
    """
    graph = FlowGraph(proc)
    for block in proc.blocks:
        for dst in block.succs:
            if block.terminator is Terminator.CALL and block_counts is not None:
                weight = float(block_counts[block.bid])
            else:
                weight = float(edge_counts.get((block.bid, dst), 0))
            graph.set_weight(block.bid, dst, weight)
    return graph
