"""Basic blocks of the binary IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import IRError
from repro.ir.instruction import Terminator


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in a terminator.

    Attributes:
        bid: Dense global block id, assigned by :class:`~repro.ir.binary.Binary`
            when the block is added.  ``-1`` until then.
        label: Human-readable label, unique within the owning procedure.
        size: Number of instructions including the terminator (>= 1).
        terminator: How control leaves the block.
        succs: Successor block ids.  Meaning depends on the terminator:
            COND_BRANCH -> ``(taken, fallthrough)``; FALLTHROUGH, CALL and
            UNCOND_BRANCH -> ``(next,)``; RETURN -> ``()``;
            INDIRECT_JUMP -> any number of possible targets.
        call_target: Callee procedure name for CALL blocks.
    """

    label: str
    size: int
    terminator: Terminator = Terminator.FALLTHROUGH
    succs: Tuple[int, ...] = ()
    call_target: Optional[str] = None
    bid: int = -1
    proc_name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise IRError(f"block {self.label!r}: size must be >= 1, got {self.size}")
        if self.terminator is Terminator.CALL and self.call_target is None:
            raise IRError(f"block {self.label!r}: CALL block needs a call_target")
        if self.terminator is not Terminator.CALL and self.call_target is not None:
            raise IRError(
                f"block {self.label!r}: call_target only valid on CALL blocks"
            )

    @property
    def taken(self) -> int:
        """Taken-branch successor of a COND_BRANCH block."""
        if self.terminator is not Terminator.COND_BRANCH:
            raise IRError(f"block {self.label!r} has no taken successor")
        return self.succs[0]

    @property
    def fallthrough(self) -> int:
        """Fallthrough successor of a COND_BRANCH block."""
        if self.terminator is not Terminator.COND_BRANCH:
            raise IRError(f"block {self.label!r} has no fallthrough successor")
        return self.succs[1]

    def validate(self) -> None:
        """Check the successor arity matches the terminator kind."""
        arity = len(self.succs)
        term = self.terminator
        if term is Terminator.COND_BRANCH and arity != 2:
            raise IRError(f"block {self.label!r}: COND_BRANCH needs 2 succs")
        if term in (
            Terminator.FALLTHROUGH,
            Terminator.UNCOND_BRANCH,
            Terminator.CALL,
        ) and arity != 1:
            raise IRError(f"block {self.label!r}: {term.value} needs 1 succ")
        if term is Terminator.RETURN and arity != 0:
            raise IRError(f"block {self.label!r}: RETURN takes no succs")
        if term is Terminator.INDIRECT_JUMP and arity < 1:
            raise IRError(f"block {self.label!r}: INDIRECT_JUMP needs >= 1 succ")
