"""Instruction-level definitions for the Alpha-like binary IR.

The IR models code at basic-block granularity: a block is ``size``
fixed-width instructions ending in a *terminator*.  Individual
instructions are not materialized as objects -- addresses are derived
arithmetically from block placement, which is all the paper's metrics
need (cache lines, words, sequential runs).
"""

from __future__ import annotations

import enum

#: Bytes per instruction (Alpha has fixed 32-bit instructions).
INSTRUCTION_BYTES = 4


class Terminator(enum.Enum):
    """How control leaves a basic block.

    The terminator kind determines which successors a block may have and
    how the layout engine may rewrite the block:

    * ``FALLTHROUGH`` -- no branch; control continues at the single
      successor.  If the successor is not adjacent in the final layout,
      an unconditional branch must be appended (+1 instruction).
    * ``COND_BRANCH`` -- conditional branch with a *taken* successor and
      a *fallthrough* successor.  The layout engine may invert the
      polarity (swap taken/fallthrough) when the taken target is the
      adjacent block, or append an unconditional branch when neither
      successor is adjacent.
    * ``UNCOND_BRANCH`` -- unconditional branch to a single successor.
      The branch instruction is deleted when the target becomes adjacent
      (-1 instruction), which is how chaining "eliminates frequently
      executed unconditional branches".
    * ``CALL`` -- subroutine call; ``call_target`` names the callee
      procedure and the single successor is the return continuation.
      Like FALLTHROUGH, a non-adjacent continuation costs +1.
    * ``RETURN`` -- subroutine return; no successors, always a control
      break.
    * ``INDIRECT_JUMP`` -- computed jump (switch/dispatch); successors
      enumerate the possible targets, always a control break.
    """

    FALLTHROUGH = "fallthrough"
    COND_BRANCH = "cond"
    UNCOND_BRANCH = "uncond"
    CALL = "call"
    RETURN = "return"
    INDIRECT_JUMP = "indirect"


#: Terminators that end a code segment for fine-grain procedure
#: splitting ("a code segment is ended by an unconditional branch or
#: return").  Indirect jumps are unconditional transfers as well.
SEGMENT_ENDING = frozenset(
    {Terminator.UNCOND_BRANCH, Terminator.RETURN, Terminator.INDIRECT_JUMP}
)
