"""Code layout: placing code units in the address space.

A :class:`Layout` is an ordered list of :class:`CodeUnit` (whole
procedures, or segments produced by fine-grain splitting), each an
ordered list of block ids.  :func:`assign_addresses` turns a layout
into an :class:`AddressMap`, applying the classic branch fixups:

* a conditional branch whose *taken* target became the adjacent block is
  inverted (polarity swap, no size change);
* a conditional branch with neither successor adjacent gets an
  unconditional branch appended (+1 instruction);
* a fallthrough/call whose continuation is not adjacent gets an
  unconditional branch appended (+1 instruction);
* an unconditional branch whose target became adjacent is deleted
  (-1 instruction; a branch-only block vanishes entirely).

These fixups are why chaining actually shortens the dynamic path and
lengthens sequential runs -- they are the mechanism behind the paper's
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import LayoutError
from repro.ir.binary import Binary
from repro.ir.instruction import INSTRUCTION_BYTES, Terminator


@dataclass(frozen=True)
class CodeUnit:
    """An independently placeable run of blocks.

    For an unsplit binary a unit is a whole procedure; after fine-grain
    splitting each segment is its own unit.  ``is_entry`` marks the unit
    containing the owning procedure's entry block.
    """

    name: str
    proc_name: str
    block_ids: Tuple[int, ...]
    is_entry: bool = True
    #: Extra padding bytes inserted before this unit (after alignment);
    #: used by the CFA layout to steer code away from reserved cache sets.
    pad_before: int = 0

    def __post_init__(self) -> None:
        if not self.block_ids:
            raise LayoutError(f"code unit {self.name!r} has no blocks")
        if self.pad_before < 0:
            raise LayoutError(f"code unit {self.name!r}: negative padding")

    def with_pad(self, pad_before: int) -> "CodeUnit":
        """Copy of this unit with different leading padding."""
        return CodeUnit(
            name=self.name,
            proc_name=self.proc_name,
            block_ids=self.block_ids,
            is_entry=self.is_entry,
            pad_before=pad_before,
        )


@dataclass
class Layout:
    """An ordered placement of code units.

    Attributes:
        units: Units in address order.
        alignment: Byte alignment of each unit's start address.
        name: Label for reports ("base", "chain+porder", ...).
    """

    units: List[CodeUnit]
    alignment: int = 16
    name: str = "layout"

    def block_order(self) -> List[int]:
        """All block ids in placement order."""
        order: List[int] = []
        for unit in self.units:
            order.extend(unit.block_ids)
        return order

    def validate_against(self, binary: Binary) -> None:
        """Check the layout places every block of the binary exactly once."""
        seen = self.block_order()
        if len(seen) != binary.num_blocks or len(set(seen)) != len(seen):
            raise LayoutError(
                f"layout {self.name!r} places {len(set(seen))} distinct blocks; "
                f"binary has {binary.num_blocks}"
            )


def baseline_layout(binary: Binary, alignment: int = 16) -> Layout:
    """The original image layout: procedures in link order, blocks in
    source order -- one unit per procedure."""
    units = [
        CodeUnit(
            name=name,
            proc_name=name,
            block_ids=tuple(binary.proc(name).block_ids()),
            is_entry=True,
        )
        for name in binary.proc_order()
    ]
    return Layout(units=units, alignment=alignment, name="base")


class AddressMap:
    """Block placement produced by :func:`assign_addresses`.

    Flat numpy arrays indexed by global block id:

    * ``addr``: byte address of the block's first instruction.
    * ``n_fetch``: instructions fetched when the block executes and
      control leaves via any path other than an inverted/taken special
      case (includes appended fixup branches, excludes deleted ones).
    * ``taken_succ`` / ``n_fetch_taken``: for conditional blocks where
      the taken path fetches a different count (e.g. a cond branch with
      an appended unconditional branch: the taken path skips the
      appended branch), ``taken_succ[b]`` is the successor id and
      ``n_fetch_taken[b]`` the count; -1 elsewhere.

    ``fetched(bid, next_bid)`` and the vectorized helpers derive
    per-transition fetch spans for trace replay.
    """

    def __init__(self, binary: Binary, layout: Layout) -> None:
        self.binary = binary
        self.layout = layout
        n = binary.num_blocks
        self.addr = np.zeros(n, dtype=np.int64)
        self.n_fetch = np.zeros(n, dtype=np.int32)
        self.taken_succ = np.full(n, -1, dtype=np.int64)
        self.n_fetch_taken = np.full(n, -1, dtype=np.int32)
        #: Polarity inversions applied (block ids) -- informational.
        self.inverted: set = set()
        #: Unconditional branches deleted / appended (block ids).
        self.deleted_branches: set = set()
        self.appended_branches: set = set()
        self.total_bytes = 0
        self.unit_starts: Dict[str, int] = {}

    def end_addr(self, bid: int) -> int:
        """Byte address one past the block's placed footprint."""
        return int(self.addr[bid]) + int(self.n_fetch[bid]) * INSTRUCTION_BYTES

    def fetched(self, bid: int, next_bid: Optional[int]) -> int:
        """Instructions fetched executing ``bid`` then going to ``next_bid``."""
        if next_bid is not None and next_bid == self.taken_succ[bid]:
            return int(self.n_fetch_taken[bid])
        return int(self.n_fetch[bid])

    def is_sequential(self, bid: int, next_bid: int) -> bool:
        """True when the transition ``bid -> next_bid`` does not break
        the sequential instruction stream."""
        fetched = self.fetched(bid, next_bid)
        return int(self.addr[next_bid]) == int(self.addr[bid]) + fetched * INSTRUCTION_BYTES

    def fetch_counts(self, blocks: np.ndarray) -> np.ndarray:
        """Instructions fetched per trace entry (vectorized
        :meth:`fetched` over a whole block trace)."""
        return trace_fetch_counts(
            self.n_fetch, self.taken_succ, self.n_fetch_taken, blocks
        )

    def expand_spans(self, blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(start_address, instruction_count) per trace entry."""
        return self.addr[blocks], self.fetch_counts(blocks)


def trace_fetch_counts(
    n_fetch: np.ndarray,
    taken_succ: np.ndarray,
    n_fetch_taken: np.ndarray,
    blocks: np.ndarray,
) -> np.ndarray:
    """Instructions fetched per entry of a block trace.

    The default span of block ``b`` is ``n_fetch[b]``; when the trace's
    next block is ``b``'s recorded taken successor, the taken-path span
    ``n_fetch_taken[b]`` applies instead (e.g. the taken path skips an
    appended fall-through branch).  Shared by :class:`AddressMap` and
    the execution layer's combined app+kernel map.
    """
    counts = n_fetch[blocks].astype(np.int64)
    if len(blocks) >= 2:
        special = taken_succ[blocks[:-1]] == blocks[1:]
        if special.any():
            idx = np.nonzero(special)[0]
            counts[idx] = n_fetch_taken[blocks[idx]]
    return counts


def assign_addresses(binary: Binary, layout: Layout) -> AddressMap:
    """Place a layout in the address space, applying branch fixups.

    When the layout packs units densely (alignment == instruction
    width, no padding), branch fixups also apply across unit
    boundaries: a segment-terminal branch to the very next segment is
    deleted, exactly as a final optimizer pass would do.
    """
    layout.validate_against(binary)
    amap = AddressMap(binary, layout)
    align = max(layout.alignment, INSTRUCTION_BYTES)
    dense = align == INSTRUCTION_BYTES
    cursor = 0
    for index, unit in enumerate(layout.units):
        cursor += unit.pad_before
        rem = cursor % align
        if rem:
            cursor += align - rem
        amap.unit_starts[unit.name] = cursor
        ids = unit.block_ids
        next_unit_first: Optional[int] = None
        if dense and index + 1 < len(layout.units):
            nxt = layout.units[index + 1]
            if nxt.pad_before == 0:
                next_unit_first = nxt.block_ids[0]
        for pos, bid in enumerate(ids):
            block = binary.block(bid)
            if pos + 1 < len(ids):
                next_in_unit: Optional[int] = ids[pos + 1]
            else:
                next_in_unit = next_unit_first
            n_fetch = block.size
            term = block.terminator
            if term is Terminator.FALLTHROUGH or term is Terminator.CALL:
                if block.succs[0] != next_in_unit:
                    n_fetch += 1
                    amap.appended_branches.add(bid)
            elif term is Terminator.COND_BRANCH:
                taken, fallthrough = block.succs
                if fallthrough == next_in_unit:
                    pass  # natural polarity
                elif taken == next_in_unit:
                    amap.inverted.add(bid)
                    amap.taken_succ[bid] = fallthrough
                    amap.n_fetch_taken[bid] = block.size
                else:
                    # Neither successor adjacent: keep the conditional
                    # branch (to the taken target) and append an
                    # unconditional branch for the fallthrough path.
                    n_fetch += 1
                    amap.appended_branches.add(bid)
                    amap.taken_succ[bid] = taken
                    amap.n_fetch_taken[bid] = block.size
            elif term is Terminator.UNCOND_BRANCH:
                if block.succs[0] == next_in_unit and block.size >= 1:
                    n_fetch -= 1
                    amap.deleted_branches.add(bid)
            # RETURN / INDIRECT_JUMP need no fixups.
            amap.addr[bid] = cursor
            amap.n_fetch[bid] = n_fetch
            cursor += n_fetch * INSTRUCTION_BYTES
        # A block reduced to zero instructions (branch-only block whose
        # branch was deleted) occupies no bytes; its address aliases the
        # next block, which is exactly the fall-into behaviour we want.
    amap.total_bytes = cursor
    return amap
