"""Procedures of the binary IR."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.instruction import Terminator


class Procedure:
    """A named procedure: an entry block plus a control-flow graph.

    Blocks are kept in *source order* -- the order the original compiler
    emitted them, which defines the baseline (unoptimized) layout.
    Successor references use labels while the procedure is under
    construction; :meth:`seal` resolves them to global block ids once
    the owning binary has assigned ids.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}
        self._label_succs: Dict[str, tuple] = {}
        self._sealed = False

    def add_block(
        self,
        label: str,
        size: int,
        terminator: Terminator = Terminator.FALLTHROUGH,
        succs: Iterable[str] = (),
        call_target: Optional[str] = None,
    ) -> BasicBlock:
        """Append a block; ``succs`` are labels resolved at seal time."""
        if self._sealed:
            raise IRError(f"procedure {self.name!r} is sealed")
        if label in self._by_label:
            raise IRError(f"procedure {self.name!r}: duplicate label {label!r}")
        block = BasicBlock(
            label=label,
            size=size,
            terminator=terminator,
            call_target=call_target,
            proc_name=self.name,
        )
        self.blocks.append(block)
        self._by_label[label] = block
        self._label_succs[label] = tuple(succs)
        return block

    @property
    def entry(self) -> BasicBlock:
        """The procedure entry block (always the first source block)."""
        if not self.blocks:
            raise IRError(f"procedure {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        """Look a block up by label."""
        try:
            return self._by_label[label]
        except KeyError:
            raise IRError(f"procedure {self.name!r}: no block {label!r}") from None

    def seal(self) -> None:
        """Resolve label successors to global block ids and validate.

        Must be called after the owning binary has assigned ``bid`` to
        every block of this procedure.
        """
        for block in self.blocks:
            if block.bid < 0:
                raise IRError(
                    f"procedure {self.name!r}: block {block.label!r} has no id"
                )
        for block in self.blocks:
            labels = self._label_succs[block.label]
            try:
                block.succs = tuple(self._by_label[lab].bid for lab in labels)
            except KeyError as exc:
                raise IRError(
                    f"procedure {self.name!r}: block {block.label!r} references "
                    f"unknown successor {exc.args[0]!r}"
                ) from None
            block.validate()
        self._sealed = True

    @property
    def size(self) -> int:
        """Total instruction count over all blocks (pre-layout)."""
        return sum(b.size for b in self.blocks)

    def block_ids(self) -> List[int]:
        """Global ids of this procedure's blocks in source order."""
        return [b.bid for b in self.blocks]

    def __repr__(self) -> str:
        return f"Procedure({self.name!r}, {len(self.blocks)} blocks)"
