"""The Binary: a whole program image of procedures with dense block ids."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.procedure import Procedure


class Binary:
    """A complete executable image.

    Procedures are kept in *link order* -- the order they appear in the
    original image, which defines the baseline layout.  Every block in
    the binary gets a dense global id (0..n-1) so downstream components
    (profiles, traces, address maps) can use flat numpy arrays indexed
    by block id.
    """

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self.procedures: Dict[str, Procedure] = {}
        self._order: List[str] = []
        self._blocks: List[BasicBlock] = []
        self._sealed = False

    def add_procedure(self, proc: Procedure) -> Procedure:
        """Register a procedure and assign global ids to its blocks."""
        if self._sealed:
            raise IRError(f"binary {self.name!r} is sealed")
        if proc.name in self.procedures:
            raise IRError(f"binary {self.name!r}: duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc
        self._order.append(proc.name)
        for block in proc.blocks:
            block.bid = len(self._blocks)
            self._blocks.append(block)
        return proc

    def seal(self) -> None:
        """Finalize: resolve successor labels, validate call targets."""
        for name in self._order:
            self.procedures[name].seal()
        for block in self._blocks:
            if block.call_target is not None and block.call_target not in self.procedures:
                raise IRError(
                    f"block {block.proc_name}.{block.label}: call target "
                    f"{block.call_target!r} is not a procedure of this binary"
                )
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def proc(self, name: str) -> Procedure:
        """Look a procedure up by name."""
        try:
            return self.procedures[name]
        except KeyError:
            raise IRError(f"binary {self.name!r}: no procedure {name!r}") from None

    def proc_order(self) -> List[str]:
        """Procedure names in link order."""
        return list(self._order)

    def block(self, bid: int) -> BasicBlock:
        """Look a block up by global id."""
        try:
            return self._blocks[bid]
        except IndexError:
            raise IRError(f"binary {self.name!r}: no block id {bid}") from None

    def blocks(self) -> Iterator[BasicBlock]:
        """Iterate all blocks in global-id order."""
        return iter(self._blocks)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_procedures(self) -> int:
        return len(self._order)

    @property
    def static_size(self) -> int:
        """Total static instruction count (pre-layout, no fixups)."""
        return sum(b.size for b in self._blocks)

    def owner_of(self, bid: int) -> str:
        """Name of the procedure owning a block."""
        return self.block(bid).proc_name

    def entry_bid(self, proc_name: str) -> int:
        """Global id of a procedure's entry block."""
        return self.proc(proc_name).entry.bid

    def __repr__(self) -> str:
        return (
            f"Binary({self.name!r}, {self.num_procedures} procs, "
            f"{self.num_blocks} blocks, {self.static_size} instrs)"
        )
