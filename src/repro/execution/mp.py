"""The multiprocessor OLTP system model.

Runs N server processes (8 per CPU by default, as in the paper) against
the shared mini-DBMS, interleaving their execution at engine-operation
granularity.  Each CPU gets its own instruction stream; kernel events
(syscalls from the engine, quantum-expiry context switches and clock
ticks from this scheduler) are woven in where they occur.

Lock conflicts are real: a process whose step parks on a lock queue is
descheduled and retried when the holding transaction commits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.db import CallTrace, Engine, LockWait
from repro.db.instrument import CallEvent
from repro.db.pages import PAGE_SIZE
from repro.errors import DeadlockError
from repro.execution.interpreter import CfgWalker
from repro.execution.trace import CpuTrace, SystemTrace
from repro.progen.builder import CompiledProgram
from repro.workloads.tpcb import TpcbConfig, TpcbWorkload

#: Base address of the shared database buffer region (data stream).
DATA_BASE = 0x40000000
#: Base of per-process private memory (stack / sort heaps / cursors).
PRIVATE_BASE = 0x80000000
PRIVATE_STRIDE = 1 << 22
#: Log buffer region.
LOG_BASE = 0x70000000


@dataclass
class SystemConfig:
    """Multiprocessor model parameters."""

    cpus: int = 4
    processes_per_cpu: int = 8
    #: Instructions before an involuntary context switch.
    quantum: int = 30_000
    #: Instructions between clock ticks, per CPU.
    timer_interval: int = 200_000
    seed: int = 5

    @property
    def processes(self) -> int:
        return self.cpus * self.processes_per_cpu


class _Process:
    def __init__(self, pid: int, cpu: int, client) -> None:
        self.pid = pid
        self.cpu = cpu
        self.client = client
        self.txn = None
        self.blocked = False
        self.committed = 0


class _CpuState:
    def __init__(self, index: int, processes: List[_Process]) -> None:
        self.index = index
        self.processes = processes
        self.current = 0
        self.quantum_used = 0
        self.since_timer = 0
        self.block_chunks: List[np.ndarray] = []
        self.pid_chunks: List[np.ndarray] = []
        self.length = 0
        self.data_addr: List[int] = []
        self.data_pos: List[int] = []


class OltpSystem:
    """Builds and drives the full simulated system."""

    def __init__(
        self,
        app: CompiledProgram,
        kernel: CompiledProgram,
        tpcb_config: Optional[TpcbConfig] = None,
        system_config: Optional[SystemConfig] = None,
        pool_capacity: int = 2048,
        btree_order: int = 64,
        workload=None,
    ) -> None:
        """``workload`` is any object with ``load(engine)`` and
        ``client(pid)`` (returning per-process transaction factories);
        defaults to TPC-B over ``tpcb_config``."""
        self.app = app
        self.kernel = kernel
        self.tpcb_config = tpcb_config or TpcbConfig()
        self.workload = workload or TpcbWorkload(self.tpcb_config)
        self.config = system_config or SystemConfig()
        self.walker = CfgWalker(app, kernel)
        self.trace = CallTrace()
        self.engine = Engine(
            pool_capacity=pool_capacity, btree_order=btree_order, trace=self.trace
        )
        self.workload.load(self.engine)
        self.trace.take()  # discard load-phase events
        self._rng = random.Random(self.config.seed)
        self._sizes = np.array(
            [b.size for b in app.binary.blocks()]
            + [b.size for b in kernel.binary.blocks()],
            dtype=np.int64,
        )
        self._txn_to_pid: Dict[int, int] = {}
        self._data_salt = 0
        self.engine.pool.on_access = self._on_page_access
        self._processes = [
            _Process(
                pid,
                pid // self.config.processes_per_cpu,
                self.workload.client(pid),
            )
            for pid in range(self.config.processes)
        ]
        self._cpus = [
            _CpuState(i, [p for p in self._processes if p.cpu == i])
            for i in range(self.config.cpus)
        ]
        self._active_cpu: Optional[_CpuState] = None
        self._pending_commits = 0

    # -- data-stream hooks ---------------------------------------------------

    def _on_page_access(self, page_id: int, hit: bool) -> None:
        cpu = self._active_cpu
        if cpu is None:
            return
        self._data_salt += 1
        offset = (self._data_salt * 2654435761) % (PAGE_SIZE // 64) * 64
        cpu.data_addr.append(DATA_BASE + page_id * PAGE_SIZE + offset)
        cpu.data_pos.append(cpu.length)

    def _private_accesses(self, cpu: _CpuState, pid: int, count: int = 3) -> None:
        base = PRIVATE_BASE + pid * PRIVATE_STRIDE
        for _ in range(count):
            self._data_salt += 1
            offset = (self._data_salt * 40503) % (64 * 1024) // 64 * 64
            cpu.data_addr.append(base + offset)
            cpu.data_pos.append(cpu.length)

    def _log_access(self, cpu: _CpuState) -> None:
        self._data_salt += 1
        offset = (self._data_salt * 64) % (1 << 20)
        cpu.data_addr.append(LOG_BASE + offset)
        cpu.data_pos.append(cpu.length)

    # -- execution ------------------------------------------------------------

    def run(self, transactions: int, warmup: int = 0) -> SystemTrace:
        """Run the system until ``transactions`` commits are traced.

        ``warmup`` transactions are executed first and their trace
        discarded (caches and the statement cache stay warm), matching
        the paper's measurement methodology.
        """
        if warmup:
            self._run_until(warmup)
            for cpu in self._cpus:
                cpu.block_chunks.clear()
                cpu.pid_chunks.clear()
                cpu.length = 0
                cpu.data_addr.clear()
                cpu.data_pos.clear()
        committed = self._run_until(transactions)
        cpus = [
            CpuTrace(
                blocks=_concat(cpu.block_chunks),
                pids=_concat(cpu.pid_chunks, dtype=np.int16),
            )
            for cpu in self._cpus
        ]
        return SystemTrace(
            cpus=cpus,
            data_addresses=[
                np.asarray(cpu.data_addr, dtype=np.int64) for cpu in self._cpus
            ],
            data_positions=[
                np.asarray(cpu.data_pos, dtype=np.int64) for cpu in self._cpus
            ],
            kernel_offset=self.walker.kernel_offset,
            transactions=committed,
        )

    def _run_until(self, target: int) -> int:
        committed = 0
        idle_rounds = 0
        while committed < target:
            progressed = False
            for cpu in self._cpus:
                if committed >= target:
                    break
                if self._step_cpu(cpu):
                    progressed = True
                    committed += self._collect_commits(cpu)
            if not progressed:
                idle_rounds += 1
                if idle_rounds > self.config.processes + 4:
                    raise SimulationError(
                        "system wedged: every process is blocked"
                    )
            else:
                idle_rounds = 0
        return committed

    def _collect_commits(self, cpu: _CpuState) -> int:
        count = self._pending_commits
        self._pending_commits = 0
        return count

    def _step_cpu(self, cpu: _CpuState) -> bool:
        process = self._pick_runnable(cpu)
        if process is None:
            return False
        self._active_cpu = cpu
        try:
            self._step_process(cpu, process)
        finally:
            self._active_cpu = None
        return True

    def _pick_runnable(self, cpu: _CpuState) -> Optional[_Process]:
        n = len(cpu.processes)
        for offset in range(n):
            idx = (cpu.current + offset) % n
            process = cpu.processes[idx]
            if not process.blocked:
                if offset:
                    cpu.current = idx
                    cpu.quantum_used = 0
                return process
        return None

    def _step_process(self, cpu: _CpuState, process: _Process) -> None:
        if process.txn is None or process.txn.done:
            process.txn = process.client.next_transaction(self.engine)
        step_was_begin = process.txn.step_index == 0
        switched = False
        try:
            process.txn.run_step()
        except LockWait:
            process.blocked = True
            switched = True
        except DeadlockError:
            woken = self.engine.abort(process.txn.txn)
            for txn_id in woken:
                pid = self._txn_to_pid.get(txn_id)
                if pid is not None:
                    self._processes[pid].blocked = False
            self._txn_to_pid.pop(process.txn.txn.txn_id, None)
            process.txn = None
        events = self.trace.take()
        emitted = self._emit(cpu, process.pid, events)
        if emitted:
            self._private_accesses(cpu, process.pid)
        if step_was_begin and process.txn is not None and process.txn.txn is not None:
            self._txn_to_pid[process.txn.txn.txn_id] = process.pid
        if process.txn is not None and process.txn.done:
            self._pending_commits += 1
            process.committed += 1
            self._log_access(cpu)
            for txn_id in process.txn.woken_txns:
                pid = self._txn_to_pid.get(txn_id)
                if pid is not None:
                    self._processes[pid].blocked = False
            self._txn_to_pid.pop(process.txn.txn.txn_id, None)
            process.txn = None
            switched = True  # wait for the log write: yield the CPU
        self._tick(cpu, switched)

    def _emit(self, cpu: _CpuState, pid: int, events: List[CallEvent]) -> int:
        out: List[int] = []
        for event in events:
            self.walker.walk_event(event, out)
        if not out:
            return 0
        blocks = np.asarray(out, dtype=np.int64)
        cpu.block_chunks.append(blocks)
        cpu.pid_chunks.append(np.full(len(blocks), pid, dtype=np.int16))
        cpu.length += len(blocks)
        instrs = int(self._sizes[blocks].sum())
        cpu.quantum_used += instrs
        cpu.since_timer += instrs
        return instrs

    def _tick(self, cpu: _CpuState, want_switch: bool) -> None:
        while cpu.since_timer >= self.config.timer_interval:
            cpu.since_timer -= self.config.timer_interval
            self._emit_kernel(cpu, "k.timer")
        if want_switch or cpu.quantum_used >= self.config.quantum:
            runnable = [p for p in cpu.processes if not p.blocked]
            if len(runnable) > 1:
                if cpu.quantum_used >= self.config.quantum and not want_switch:
                    self._emit_kernel(cpu, "k.switch")
                cpu.current = (cpu.current + 1) % len(cpu.processes)
            cpu.quantum_used = 0

    def _emit_kernel(self, cpu: _CpuState, name: str) -> None:
        event = CallEvent(name, {"salt": self._rng.randrange(1 << 31)})
        pid = cpu.processes[cpu.current].pid
        out: List[int] = []
        self.walker.walk_event(event, out)
        blocks = np.asarray(out, dtype=np.int64)
        cpu.block_chunks.append(blocks)
        cpu.pid_chunks.append(np.full(len(blocks), pid, dtype=np.int16))
        cpu.length += len(blocks)
        cpu.since_timer += int(self._sizes[blocks].sum())


def _concat(chunks: List[np.ndarray], dtype=np.int64) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(chunks).astype(dtype)
