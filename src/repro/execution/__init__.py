"""Execution model: CFG interpretation and the multiprocessor system."""

from repro.execution.interpreter import CfgWalker
from repro.execution.mp import (
    DATA_BASE,
    LOG_BASE,
    OltpSystem,
    PRIVATE_BASE,
    SystemConfig,
)
from repro.execution.trace import (
    CombinedAddressMap,
    CpuTrace,
    KERNEL_PID,
    SystemTrace,
)

__all__ = [
    "CfgWalker",
    "CombinedAddressMap",
    "CpuTrace",
    "DATA_BASE",
    "KERNEL_PID",
    "LOG_BASE",
    "OltpSystem",
    "PRIVATE_BASE",
    "SystemConfig",
    "SystemTrace",
]
