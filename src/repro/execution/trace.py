"""Trace containers and layout-aware address expansion.

A block trace is layout-invariant (the executed block sequence never
changes); a :class:`CombinedAddressMap` maps it to instruction
addresses under a particular (application layout, kernel layout) pair.
The expansion to per-transition fetch spans is fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.ir import AddressMap, INSTRUCTION_BYTES
from repro.ir.layout import trace_fetch_counts
from repro.osmodel.kernel import KERNEL_BASE

#: Process id used for kernel-initiated work with no process context.
KERNEL_PID = -1


@dataclass
class CpuTrace:
    """One CPU's instruction stream at block granularity."""

    blocks: np.ndarray  # int64, combined block-id space
    pids: np.ndarray    # int16, server process id per entry

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.pids):
            raise SimulationError("blocks/pids length mismatch")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


@dataclass
class SystemTrace:
    """The full multiprocessor run: per-CPU streams plus data accesses."""

    cpus: List[CpuTrace]
    #: Per-CPU data access addresses (for the L2/D-cache studies) and
    #: the block-trace position after which each access occurs.
    data_addresses: List[np.ndarray]
    data_positions: List[np.ndarray]
    kernel_offset: int
    #: Committed transactions represented in the trace.
    transactions: int = 0

    def app_block_stream(self, cpu: int) -> np.ndarray:
        """One CPU's stream filtered to application blocks."""
        trace = self.cpus[cpu]
        return trace.blocks[trace.blocks < self.kernel_offset]

    def per_process_app_streams(self) -> List[np.ndarray]:
        """Application-only block streams, one per process (Pixie input).

        Valid because processes never migrate between CPUs.
        """
        streams = []
        for trace in self.cpus:
            mask = trace.blocks < self.kernel_offset
            blocks = trace.blocks[mask]
            pids = trace.pids[mask]
            for pid in np.unique(pids):
                if pid == KERNEL_PID:
                    continue
                streams.append(blocks[pids == pid])
        return streams

    def total_instructions(self, amap: "CombinedAddressMap") -> int:
        return sum(
            int(amap.fetch_counts(trace.blocks).sum()) for trace in self.cpus
        )


class CombinedAddressMap:
    """Concatenated app+kernel address maps over the combined id space.

    Application blocks keep their app-layout addresses; kernel blocks
    are offset by :data:`KERNEL_BASE`.
    """

    def __init__(
        self,
        app_map: AddressMap,
        kernel_map: AddressMap,
        kernel_base: int = KERNEL_BASE,
    ) -> None:
        self.app_map = app_map
        self.kernel_map = kernel_map
        self.kernel_base = kernel_base
        self.kernel_offset = len(app_map.addr)
        n_kernel = len(kernel_map.addr)
        self.addr = np.concatenate([app_map.addr, kernel_map.addr + kernel_base])
        self.n_fetch = np.concatenate([app_map.n_fetch, kernel_map.n_fetch])
        kernel_taken = kernel_map.taken_succ.copy()
        kernel_taken[kernel_taken >= 0] += self.kernel_offset
        self.taken_succ = np.concatenate([app_map.taken_succ, kernel_taken])
        self.n_fetch_taken = np.concatenate(
            [app_map.n_fetch_taken, kernel_map.n_fetch_taken]
        )
        if app_map.total_bytes > kernel_base:
            raise SimulationError(
                f"application image ({app_map.total_bytes} bytes) overlaps "
                f"the kernel base {kernel_base:#x}"
            )

    def fetch_counts(self, blocks: np.ndarray) -> np.ndarray:
        """Instructions fetched per trace entry (vectorized)."""
        return trace_fetch_counts(
            self.n_fetch, self.taken_succ, self.n_fetch_taken, blocks
        )

    def expand_spans(self, blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(start_address, instruction_count) per trace entry."""
        return self.addr[blocks], self.fetch_counts(blocks)

    def sequential_breaks(self, blocks: np.ndarray) -> np.ndarray:
        """Boolean per transition: True where the stream breaks.

        Transition i covers blocks[i] -> blocks[i+1].
        """
        starts, counts = self.expand_spans(blocks)
        ends = starts + counts * INSTRUCTION_BYTES
        return starts[1:] != ends[:-1]
