"""CFG interpreter: engine call events -> executed basic-block traces.

Walks the bid-annotated routine specs with each event's semantic
bindings, emitting global block ids.  Application blocks keep their
binary ids; kernel blocks are offset by the application block count so
one flat id space covers the combined instruction stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.db.instrument import CallEvent
from repro.progen.builder import CompiledProgram
from repro.progen.dsl import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    Node,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
    eval_cond,
    eval_count,
)


class CfgWalker:
    """Expands call-event trees into block-id traces."""

    def __init__(self, app: CompiledProgram, kernel: CompiledProgram) -> None:
        self.app = app
        self.kernel = kernel
        self.kernel_offset = app.binary.num_blocks

    @property
    def total_blocks(self) -> int:
        """Size of the combined block-id space."""
        return self.app.binary.num_blocks + self.kernel.binary.num_blocks

    def is_kernel_bid(self, bid: int) -> bool:
        return bid >= self.kernel_offset

    # -- public API -------------------------------------------------------

    def expand(self, events: Sequence[CallEvent]) -> np.ndarray:
        """Expand top-level events into one flat block-id trace."""
        out: List[int] = []
        for event in events:
            self.walk_event(event, out)
        return np.asarray(out, dtype=np.int64)

    def walk_event(self, event: CallEvent, out: List[int]) -> None:
        """Expand one event (app routine or kernel entry) into ``out``."""
        if event.name.startswith("k."):
            spec = self.kernel.spec(event.name)
            offset = self.kernel_offset
        else:
            name = self.app.resolve(event.name, event.bindings.get("table"))
            spec = self.app.spec(name)
            offset = 0
        self._walk_routine(spec, event.bindings, event.children, offset, out)

    # -- routine walking -----------------------------------------------------

    def _walk_routine(
        self,
        spec: RoutineSpec,
        bindings: Dict,
        children: Sequence[CallEvent],
        offset: int,
        out: List[int],
    ) -> None:
        out.append(spec.prologue_bid + offset)
        cursor = [0]
        self._walk_seq(spec.body, bindings, children, cursor, offset, out)
        if cursor[0] != len(children):
            leftover = [c.name for c in children[cursor[0] :]]
            raise SimulationError(
                f"routine {spec.name!r}: {len(leftover)} unconsumed child "
                f"events: {leftover[:5]}"
            )
        out.append(spec.epilogue_bid + offset)

    def _walk_seq(self, nodes, bindings, children, cursor, offset, out) -> None:
        for node in nodes:
            self._walk_node(node, bindings, children, cursor, offset, out)

    def _walk_node(self, node: Node, bindings, children, cursor, offset, out) -> None:
        if isinstance(node, Straight):
            out.append(node.bid + offset)
        elif isinstance(node, If):
            out.append(node.bid + offset)
            if eval_cond(node.cond, bindings, nonce=node.bid):
                self._walk_seq(node.then, bindings, children, cursor, offset, out)
                if node.orelse:
                    out.append(node.then_exit_bid + offset)
            else:
                self._walk_seq(node.orelse, bindings, children, cursor, offset, out)
        elif isinstance(node, Loop):
            count = eval_count(node.count, node.minus, bindings)
            out.append(node.bid + offset)
            for _ in range(count):
                self._walk_seq(node.body, bindings, children, cursor, offset, out)
                out.append(node.latch_bid + offset)
                out.append(node.bid + offset)
        elif isinstance(node, Call):
            out.append(node.bid + offset)
            child = self._consume(node.match, children, cursor, node)
            self.walk_event(child, out)
        elif isinstance(node, Syscall):
            out.append(node.bid + offset)
            child = self._consume(node.match, children, cursor, node)
            if not child.name.startswith("k."):
                raise SimulationError(
                    f"Syscall matched non-kernel event {child.name!r}"
                )
            self.walk_event(child, out)
        elif isinstance(node, SubCall):
            out.append(node.bid + offset)
            program = self.kernel if offset else self.app
            self._walk_routine(program.spec(node.target), bindings, (), offset, out)
        elif isinstance(node, CallSeq):
            self._walk_callseq(node, bindings, children, cursor, offset, out)
        elif isinstance(node, ColdPath):
            out.append(node.bid + offset)
        else:
            raise SimulationError(f"unknown DSL node: {type(node).__name__}")

    def _walk_callseq(self, node: CallSeq, bindings, children, cursor, offset, out):
        k = len(node.matches)
        while cursor[0] < len(children) and children[cursor[0]].name in node.matches:
            child = children[cursor[0]]
            cursor[0] += 1
            out.append(node.bid + offset)
            idx = node.matches.index(child.name)
            # Dispatch chain executed up to the matching arm.
            last_dispatch = min(idx, k - 2)
            for i in range(last_dispatch + 1):
                out.append(getattr(node, f"_dispatch_{i}") + offset)
            out.append(getattr(node, f"_call_{idx}") + offset)
            self.walk_event(child, out)
            out.append(node.latch_bid + offset)
        out.append(node.bid + offset)

    def _consume(self, match: str, children, cursor, node) -> CallEvent:
        if cursor[0] >= len(children):
            raise SimulationError(
                f"expected child event {match!r} but the event has no more "
                f"children (node {type(node).__name__})"
            )
        child = children[cursor[0]]
        if child.name != match:
            raise SimulationError(
                f"expected child event {match!r}, got {child.name!r}"
            )
        cursor[0] += 1
        return child
