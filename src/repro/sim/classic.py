"""The classic per-cell simulation engines, under non-deprecated names.

These are the whole-stream reference implementations the batched engine
(:mod:`repro.sim.batch`) is validated against, re-exposed here so
internal callers and cross-check paths don't trip the deprecation
shims left on the old ``repro.cache.simulate_*`` names.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cache.dcache import DCacheResult, _dcache_result
from repro.cache.icache import (
    CacheGeometry,
    ICacheResult,
    _direct_mapped_misses,
    _lru_result,
)
from repro.cache.l2 import L2Result, _l2_result
from repro.cache.tlb import PAGE_BYTES, TlbResult, _itlb_result


def direct_mapped_misses(
    starts: np.ndarray, counts: np.ndarray, geometry: CacheGeometry
) -> int:
    """Vectorized direct-mapped miss count for one fetch-span stream."""
    return _direct_mapped_misses(starts, counts, geometry)


def lru_result(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    detail: bool = False,
) -> ICacheResult:
    """Per-CPU private set-associative LRU caches, results merged."""
    return _lru_result(streams, geometry, detail=detail)


def l2_result(
    refill_streams: List[Tuple[np.ndarray, np.ndarray]],
    geometry: CacheGeometry,
    physical: bool = True,
) -> L2Result:
    """One shared L2 over per-CPU refill streams merged by position."""
    return _l2_result(refill_streams, geometry, physical=physical)


def itlb_result(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    entries: int = 64,
    page_bytes: int = PAGE_BYTES,
) -> TlbResult:
    """Fully-associative LRU iTLB, one per CPU, results summed."""
    return _itlb_result(streams, entries=entries, page_bytes=page_bytes)


def dcache_result(
    addresses: np.ndarray,
    geometry: CacheGeometry,
    positions: Optional[np.ndarray] = None,
) -> DCacheResult:
    """One data-address stream through an L1D, miss stream kept."""
    return _dcache_result(addresses, geometry, positions)
