"""Unified simulation engine: one entry point over the memory hierarchy.

:func:`simulate` runs per-CPU fetch-span streams (and optionally data
streams) through a composed :class:`MemoryHierarchy` -- L1I, L2, iTLB,
L1D -- and returns one :class:`SimResult`.  :func:`simulate_grid` is
the batched sweep engine behind Figures 4/5: one vectorized pass over
shared trace chunks evaluates every direct-mapped geometry in the grid
(see :mod:`repro.sim.batch` for the algorithm and
``docs/SIMULATION.md`` for the design).

The legacy ``repro.cache.simulate_*`` functions are deprecated thin
wrappers over the same engines; :mod:`repro.sim.classic` exposes the
per-level reference implementations under non-deprecated names.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.cache.dcache import DCacheResult
from repro.cache.l2 import simulate_l1i_misses
from repro.sim import classic
from repro.sim.batch import (
    DEFAULT_CHUNK_INSTRUCTIONS,
    ENGINES,
    iter_chunks,
    simulate_grid,
)
from repro.sim.hierarchy import MemoryHierarchy, SimResult
from repro.sim.sharedmem import SharedStreams

__all__ = [
    "DEFAULT_CHUNK_INSTRUCTIONS",
    "ENGINES",
    "MemoryHierarchy",
    "SharedStreams",
    "SimResult",
    "classic",
    "iter_chunks",
    "simulate",
    "simulate_grid",
]


def _merge_dcache(results: List[DCacheResult]) -> DCacheResult:
    """Fold per-CPU L1D outcomes into one result (counts summed, miss
    streams concatenated in CPU order)."""
    merged = DCacheResult(
        geometry=results[0].geometry,
        misses=sum(r.misses for r in results),
        accesses=sum(r.accesses for r in results),
        miss_addresses=np.concatenate([r.miss_addresses for r in results]),
        miss_positions=np.concatenate([r.miss_positions for r in results]),
    )
    return merged


def simulate(
    streams: Iterable[Tuple[np.ndarray, np.ndarray]],
    hierarchy: MemoryHierarchy,
    *,
    data_streams: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None,
) -> SimResult:
    """Run streams through one memory hierarchy; the single entry point.

    Args:
        streams: Per-CPU ``(starts, counts)`` fetch spans (a plain list
            or a :class:`~repro.harness.experiment.StreamSet`).
        hierarchy: Which cache levels to model.
        data_streams: Optional per-CPU ``(addresses, positions)`` data
            accesses; simulated only when ``hierarchy.dcache`` is set.

    Without an L2 the L1I runs the full LRU simulator and
    ``result.icache`` carries interference/locality detail.  With an L2
    the L1I runs as a tag array whose refills (merged with L1D refills,
    instruction refills first per CPU) feed the shared L2.
    """
    stream_list = list(streams)
    instructions = sum(int(counts.sum()) for _, counts in stream_list)
    result = SimResult(hierarchy=hierarchy, instructions=instructions)
    with obs.span("sim.simulate", hierarchy=str(hierarchy)):
        dcache_results: List[DCacheResult] = []
        if hierarchy.l2 is None:
            icache = classic.lru_result(
                stream_list, hierarchy.l1i, detail=hierarchy.detail
            )
            result.icache = icache
            result.l1i_misses = icache.misses
            if data_streams and hierarchy.dcache is not None:
                for addresses, positions in data_streams:
                    dcache_results.append(
                        classic.dcache_result(
                            addresses, hierarchy.dcache, positions
                        )
                    )
        else:
            refills: List[Tuple[np.ndarray, np.ndarray]] = []
            for starts, counts in stream_list:
                addresses, positions = simulate_l1i_misses(
                    starts, counts, hierarchy.l1i
                )
                result.l1i_misses += len(addresses)
                refills.append((addresses, positions))
            if data_streams and hierarchy.dcache is not None:
                for cpu, (addresses, positions) in enumerate(data_streams):
                    dres = classic.dcache_result(
                        addresses, hierarchy.dcache, positions
                    )
                    dcache_results.append(dres)
                    refills[cpu] = (
                        np.concatenate([refills[cpu][0], dres.miss_addresses]),
                        np.concatenate([refills[cpu][1], dres.miss_positions]),
                    )
            result.l2 = classic.l2_result(
                refills, hierarchy.l2, physical=hierarchy.physical_l2
            )
        if dcache_results:
            result.dcache = _merge_dcache(dcache_results)
        if hierarchy.itlb_entries:
            result.itlb = classic.itlb_result(
                stream_list, entries=hierarchy.itlb_entries
            )
    return result
