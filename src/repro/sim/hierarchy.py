"""The unified memory-hierarchy description and simulation result.

:class:`MemoryHierarchy` composes the caches one simulation run models
-- the L1 instruction cache (always present), and optionally a shared
unified L2, an L1 data cache, and an instruction TLB.
:func:`repro.sim.simulate` takes one hierarchy plus the fetch-span
streams and returns a :class:`SimResult` with every level's outcome, so
``timing.cpu``, ``harness.figures`` and ``online.experiment`` all speak
one vocabulary instead of composing ``simulate_*`` calls by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.dcache import DCacheResult
from repro.cache.icache import CacheGeometry, ICacheResult
from repro.cache.l2 import L2Result
from repro.cache.tlb import TlbResult
from repro.errors import SimulationError


@dataclass(frozen=True)
class MemoryHierarchy:
    """What to simulate: the composed cache levels of one machine.

    Attributes:
        l1i: The L1 instruction cache geometry (required).
        l2: Shared unified L2 geometry; ``None`` skips the L2.  When
            set, the L1I runs as a tag array producing a refill stream
            (no locality detail) and the L2 sees per-CPU instruction
            refills interleaved with data refills by trace position.
        dcache: L1 data cache geometry; ``None`` skips the data side.
            Only simulated when the caller also passes data streams.
        itlb_entries: Instruction-TLB entry count; ``0`` skips the TLB.
        detail: Collect the paper's detailed locality metrics (word
            usage, reuse, lifetimes) on the L1I.  Only valid without an
            L2 (the refill-stream L1I keeps no locality state).
        physical_l2: Run L2 addresses through first-touch page-frame
            allocation (physically indexed cache) before indexing.
    """

    l1i: CacheGeometry
    l2: Optional[CacheGeometry] = None
    dcache: Optional[CacheGeometry] = None
    itlb_entries: int = 0
    detail: bool = False
    physical_l2: bool = True

    def __post_init__(self) -> None:
        if self.itlb_entries < 0:
            raise SimulationError(
                f"itlb_entries must be >= 0, got {self.itlb_entries}"
            )
        if self.detail and self.l2 is not None:
            raise SimulationError(
                "MemoryHierarchy(detail=True) is only valid without an "
                "L2: the refill-producing L1I keeps no locality detail"
            )

    @classmethod
    def l1i_only(
        cls, geometry: CacheGeometry, detail: bool = False
    ) -> "MemoryHierarchy":
        """A hierarchy of just one L1 instruction cache."""
        return cls(l1i=geometry, detail=detail)

    @classmethod
    def from_platform(cls, platform) -> "MemoryHierarchy":
        """The full hierarchy of a :class:`repro.timing.Platform`."""
        return cls(
            l1i=platform.icache,
            l2=platform.l2,
            dcache=platform.dcache,
            itlb_entries=platform.itlb_entries,
        )

    def __str__(self) -> str:
        parts = [f"L1I {self.l1i}"]
        if self.dcache is not None:
            parts.append(f"L1D {self.dcache}")
        if self.l2 is not None:
            parts.append(f"L2 {self.l2}")
        if self.itlb_entries:
            parts.append(f"iTLB {self.itlb_entries}e")
        return " + ".join(parts)


@dataclass
class SimResult:
    """Everything one :func:`repro.sim.simulate` run measured.

    Levels absent from the hierarchy (or starved of input, like a
    dcache with no data streams) are ``None``/zero.
    """

    hierarchy: MemoryHierarchy
    #: Total instructions fetched across all streams.
    instructions: int
    #: Full L1I result (locality, interference) -- only on the LRU
    #: path, i.e. when the hierarchy has no L2.
    icache: Optional[ICacheResult] = None
    #: L1I miss count (populated on both the LRU and the refill path).
    l1i_misses: int = 0
    itlb: Optional[TlbResult] = None
    l2: Optional[L2Result] = None
    #: Merged L1D outcome across all data streams.
    dcache: Optional[DCacheResult] = None

    @property
    def misses(self) -> int:
        """L1I misses -- the paper's headline metric, for terse call
        sites that only care about the instruction cache."""
        return self.l1i_misses

    @property
    def mpki(self) -> float:
        """L1I misses per 1000 instructions fetched."""
        return self.l1i_misses / max(1, self.instructions) * 1000.0
