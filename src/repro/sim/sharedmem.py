"""Shared-memory packing for per-CPU fetch-span streams.

The sweep figures fan independent cells across a fork-based process
pool.  The streams themselves are multi-megabyte int64 arrays; packing
them once into a :mod:`multiprocessing.shared_memory` block means
workers map the same physical pages instead of each holding (or being
sent) a private copy -- and a spawn-style pool only has to pickle the
tiny :meth:`SharedStreams.handle`, never the arrays.

Lifecycle: the parent :meth:`SharedStreams.pack`\\ s, workers either
inherit the object over ``fork`` or :meth:`SharedStreams.attach` by
handle, and the parent :meth:`~SharedStreams.close`\\ s and
:meth:`~SharedStreams.unlink`\\ s once the fan-out completes.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro import obs
from repro.errors import SimulationError

_DTYPE = np.int64
_ITEMSIZE = np.dtype(_DTYPE).itemsize


class SharedStreams:
    """Per-CPU ``(starts, counts)`` streams in one shared-memory block.

    Iterating (or calling :meth:`stream`) yields zero-copy numpy views
    into the shared buffer; they are valid until :meth:`close`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: List[Tuple[int, int]],
        owner: bool,
    ) -> None:
        self._shm = shm
        #: (word offset, length) of each stream's starts array; the
        #: counts array of a stream follows its starts immediately.
        self._layout = layout
        self._owner = owner
        self._closed = False

    # -- construction -------------------------------------------------------

    @classmethod
    def pack(
        cls, streams: Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> "SharedStreams":
        """Copy per-CPU streams into a fresh shared-memory block."""
        pairs = [
            (
                np.ascontiguousarray(starts, dtype=_DTYPE),
                np.ascontiguousarray(counts, dtype=_DTYPE),
            )
            for starts, counts in streams
        ]
        for starts, counts in pairs:
            if len(starts) != len(counts):
                raise SimulationError(
                    "stream starts and counts lengths differ: "
                    f"{len(starts)} vs {len(counts)}"
                )
        total_words = sum(2 * len(starts) for starts, _ in pairs)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, total_words * _ITEMSIZE)
        )
        layout: List[Tuple[int, int]] = []
        offset = 0
        buffer = np.ndarray(total_words, dtype=_DTYPE, buffer=shm.buf)
        for starts, counts in pairs:
            n = len(starts)
            layout.append((offset, n))
            buffer[offset : offset + n] = starts
            buffer[offset + n : offset + 2 * n] = counts
            offset += 2 * n
        del buffer
        obs.counter("sim.shared_bytes").inc(total_words * _ITEMSIZE)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, handle: Dict) -> "SharedStreams":
        """Map an existing block from a :attr:`handle` (read-only use;
        the attached side must :meth:`close` but never unlink)."""
        shm = shared_memory.SharedMemory(name=handle["name"])
        return cls(shm, [tuple(item) for item in handle["layout"]], owner=False)

    @property
    def handle(self) -> Dict:
        """Tiny picklable description (block name + array layout)."""
        return {"name": self._shm.name, "layout": list(self._layout)}

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._layout)

    def stream(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(starts, counts)`` views of one CPU's stream."""
        offset, n = self._layout[index]
        starts = np.ndarray(
            n, dtype=_DTYPE, buffer=self._shm.buf, offset=offset * _ITEMSIZE
        )
        counts = np.ndarray(
            n,
            dtype=_DTYPE,
            buffer=self._shm.buf,
            offset=(offset + n) * _ITEMSIZE,
        )
        return starts, counts

    def __iter__(self):
        return (self.stream(index) for index in range(len(self)))

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes."""
        return self._shm.size

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Unmap the block from this process (idempotent; outstanding
        numpy views keep the mapping alive until they are dropped)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # A live view still pins the buffer; the mapping is
            # reclaimed when the process exits.
            pass

    def unlink(self) -> None:
        """Destroy the block (creator only; no-op when attached)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
