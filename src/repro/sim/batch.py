"""Batched single-pass direct-mapped sweep engine.

The Figure 4/5 grid evaluates |sizes| x |line sizes| direct-mapped
geometries over the same fetch-span streams.  The classic path pays the
span-to-line expansion and a stable argsort *per cell*; this engine
pays them once per (chunk, line size) and reuses the work across every
cache size sharing that line size:

* **Chunked traversal** -- :func:`iter_chunks` cuts each stream into
  spans totalling at most ``chunk_instructions``, splitting fetch spans
  at chunk boundaries, so the working set stays cache-resident while
  per-geometry miss state is carried across chunks.
* **Shared expansion** -- each chunk is expanded to line ids once per
  line size (no word ranges, no span indices) and consecutive repeats
  collapse with the previous chunk's last line carried over; every
  cache size with that line size consumes the same array.
* **Sort refinement** -- a direct-mapped cache with ``2n`` sets groups
  accesses by one more address bit than one with ``n`` sets.  The
  stable order for the smallest size is computed with one argsort;
  each doubling is derived by a stable single-bit partition, which is
  O(n) instead of another sort.
* **Carried state** -- per-geometry ``last line per set`` arrays
  (initialized to -1, the classic cold-cache semantics) make the
  per-chunk miss counts sum to exactly the whole-stream answer: the
  batched grid is bit-identical to the classic per-cell engine.

Fan-out is per CPU stream (not per cell): the streams are packed into
:class:`~repro.sim.sharedmem.SharedStreams` once and workers inherit or
attach to the same block instead of re-pickling arrays per cell.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cache.icache import CacheGeometry
from repro.errors import SimulationError
from repro.ir import INSTRUCTION_BYTES
from repro.sim.classic import direct_mapped_misses
from repro.sim.sharedmem import SharedStreams

#: Default chunk budget (instructions) for the batched traversal --
#: large enough that quick-experiment streams stay one chunk, small
#: enough that paper-scale expansions stay memory-friendly.
DEFAULT_CHUNK_INSTRUCTIONS = 1 << 20

#: Engines :func:`simulate_grid` accepts.
ENGINES = ("batched", "classic")


def iter_chunks(
    starts: np.ndarray, counts: np.ndarray, chunk_instructions: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Cut one stream into span chunks of at most ``chunk_instructions``.

    Fetch spans straddling a boundary are split: a span fetching ``c``
    instructions from ``a`` becomes ``(a, j)`` and ``(a + 4j, c - j)``,
    so the concatenated chunks fetch exactly the original line sequence
    (the boundary line appears in both parts and collapses away).
    """
    if chunk_instructions < 1:
        raise SimulationError(
            f"chunk_instructions must be >= 1, got {chunk_instructions}"
        )
    mask = counts > 0
    starts = starts[mask]
    counts = counts[mask]
    if len(starts) == 0:
        return
    cum = np.cumsum(counts)
    total = int(cum[-1])
    if total <= chunk_instructions:
        yield starts, counts
        return
    cum0 = cum - counts
    for lo in range(0, total, chunk_instructions):
        hi = min(lo + chunk_instructions, total)
        first = int(np.searchsorted(cum, lo, side="right"))
        last = int(np.searchsorted(cum0, hi, side="left")) - 1
        chunk_starts = starts[first : last + 1].copy()
        chunk_counts = counts[first : last + 1].copy()
        skip = lo - int(cum0[first])
        if skip:
            chunk_starts[0] += skip * INSTRUCTION_BYTES
            chunk_counts[0] -= skip
        overshoot = int(cum[last]) - hi
        if overshoot:
            chunk_counts[-1] -= overshoot
        yield chunk_starts, chunk_counts


def _expand_lines(
    starts: np.ndarray, counts: np.ndarray, line_bytes: int
) -> np.ndarray:
    """Line ids touched by each span, in fetch order (lines only -- the
    sweep needs no word ranges or span indices)."""
    if len(starts) == 0:
        return np.zeros(0, dtype=np.int64)
    ends = starts + counts * INSTRUCTION_BYTES
    first_line = starts // line_bytes
    lines_per_span = ((ends - 1) // line_bytes - first_line + 1).astype(np.int64)
    total = int(lines_per_span.sum())
    span_of_run = np.repeat(np.arange(len(starts)), lines_per_span)
    run_start = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(lines_per_span[:-1], out=run_start[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(run_start, lines_per_span)
    return first_line[span_of_run] + within


def _count_chunk(
    sorted_sets: np.ndarray, sorted_lines: np.ndarray, state: np.ndarray
) -> int:
    """Misses of one chunk against carried per-set state (updated)."""
    n = len(sorted_lines)
    miss = np.empty(n, dtype=bool)
    miss[0] = True
    miss[1:] = sorted_lines[1:] != sorted_lines[:-1]
    new_set = np.empty(n, dtype=bool)
    new_set[0] = True
    new_set[1:] = sorted_sets[1:] != sorted_sets[:-1]
    group_start = np.nonzero(new_set)[0]
    start_sets = sorted_sets[group_start]
    # The predecessor of each set's first access lives in the carried
    # state, not in this chunk.
    miss[group_start] = state[start_sets] != sorted_lines[group_start]
    group_end = np.empty(len(group_start), dtype=np.int64)
    group_end[:-1] = group_start[1:] - 1
    group_end[-1] = n - 1
    state[start_sets] = sorted_lines[group_end]
    return int(miss.sum())


def _group_geometries(
    sizes: Sequence[int], line_sizes: Sequence[int]
) -> List[Tuple[int, List[Tuple[int, int]]]]:
    """``[(line_bytes, [(size, nsets), ...])]`` with sizes ascending;
    validates every (size, line) pair via :class:`CacheGeometry`."""
    groups = []
    for line in line_sizes:
        geoms = []
        for size in sorted(sizes):
            geoms.append((size, CacheGeometry(size, line, 1).num_sets))
        groups.append((line, geoms))
    return groups


def _refinable(nsets: int, prev_nsets: int) -> bool:
    ratio, rem = divmod(nsets, prev_nsets)
    return rem == 0 and ratio >= 2 and (ratio & (ratio - 1)) == 0


def _batched_stream_grid(
    starts: np.ndarray,
    counts: np.ndarray,
    groups: List[Tuple[int, List[Tuple[int, int]]]],
    chunk_instructions: int,
) -> Tuple[Dict[Tuple[int, int], int], int, List[int]]:
    """One stream through every geometry: ``({(size, line): misses},
    chunks processed, per-expansion batch occupancies)``."""
    states = {
        (line, nsets): np.full(nsets, -1, dtype=np.int64)
        for line, geoms in groups
        for _size, nsets in geoms
    }
    misses = {
        (size, line): 0 for line, geoms in groups for size, _nsets in geoms
    }
    carry = {line: -1 for line, _geoms in groups}
    chunks = 0
    occupancy: List[int] = []
    for chunk_starts, chunk_counts in iter_chunks(
        starts, counts, chunk_instructions
    ):
        chunks += 1
        for line, geoms in groups:
            lines = _expand_lines(chunk_starts, chunk_counts, line)
            if len(lines) == 0:  # defensive; chunks always fetch
                continue
            keep = np.empty(len(lines), dtype=bool)
            keep[0] = lines[0] != carry[line]
            keep[1:] = lines[1:] != lines[:-1]
            carry[line] = int(lines[-1])
            lines = lines[keep]
            occupancy.append(len(geoms))
            if len(lines) == 0:
                continue
            order: Optional[np.ndarray] = None
            sorted_lines: Optional[np.ndarray] = None
            prev_nsets = 0
            for size, nsets in geoms:
                if order is not None and _refinable(nsets, prev_nsets):
                    # Stable single-bit partitions: the order for 2n
                    # sets is the order for n sets with the bit-0 group
                    # kept ahead of the bit-1 group.
                    grouped = prev_nsets
                    while grouped < nsets:
                        low = (sorted_lines // grouped) & 1 == 0
                        order = np.concatenate([order[low], order[~low]])
                        sorted_lines = np.concatenate(
                            [sorted_lines[low], sorted_lines[~low]]
                        )
                        grouped *= 2
                else:
                    order = np.argsort(lines % nsets, kind="stable")
                    sorted_lines = lines[order]
                prev_nsets = nsets
                misses[(size, line)] += _count_chunk(
                    sorted_lines % nsets, sorted_lines, states[(line, nsets)]
                )
    return misses, chunks, occupancy


# -- fan-out plumbing ---------------------------------------------------------
#
# Streams are packed into shared memory and published through a module
# global before the pool forks; workers inherit the mapping (no attach,
# no pickling).  The classic engine publishes the same way but fans per
# cell, mirroring the historical per-cell pool shape.

_WORKER_STREAMS: Optional[SharedStreams] = None
_WORKER_SPEC: Dict = {}


def _publish(packed: Optional[SharedStreams], spec: Optional[Dict]) -> None:
    global _WORKER_STREAMS
    _WORKER_STREAMS = packed
    _WORKER_SPEC.clear()
    if spec:
        _WORKER_SPEC.update(spec)


def _batched_worker(index: int):
    return _batched_stream_grid(
        *_WORKER_STREAMS.stream(index),
        _WORKER_SPEC["groups"],
        _WORKER_SPEC["chunk_instructions"],
    )


def _classic_worker(cell: Tuple[int, int]) -> int:
    size, line = cell
    geometry = CacheGeometry(size, line, 1)
    return sum(
        direct_mapped_misses(starts, counts, geometry)
        for starts, counts in _WORKER_STREAMS
    )


def simulate_grid(
    streams: Iterable[Tuple[np.ndarray, np.ndarray]],
    sizes: Sequence[int],
    line_sizes: Sequence[int],
    *,
    jobs: Optional[int] = None,
    chunk_instructions: int = DEFAULT_CHUNK_INSTRUCTIONS,
    engine: str = "batched",
) -> Dict[Tuple[int, int], int]:
    """Direct-mapped miss counts over a size x line-size grid.

    Returns ``{(size_bytes, line_bytes): misses}`` summed over the
    per-CPU streams.  ``engine="batched"`` (default) runs the
    single-pass engine above, fanned per stream; ``engine="classic"``
    runs the reference per-cell engine, fanned per cell.  Both return
    bit-identical counts; classic remains for cross-checking and as
    the degenerate path for exotic geometry lists.
    """
    # Imported here: repro.harness pulls in figures, which uses this
    # module -- a top-level import would be circular.
    from repro.harness.parallel import parallel_map

    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; valid engines: {', '.join(ENGINES)}"
        )
    stream_list = list(streams)
    if not stream_list:
        raise SimulationError("no streams supplied")
    groups = _group_geometries(sizes, line_sizes)
    packed = SharedStreams.pack(stream_list)
    try:
        if engine == "classic":
            _publish(packed, None)
            cells = [(size, line) for size in sizes for line in line_sizes]
            counts = parallel_map(_classic_worker, cells, jobs=jobs)
            return dict(zip(cells, counts))
        _publish(
            packed,
            {"groups": groups, "chunk_instructions": chunk_instructions},
        )
        per_stream = parallel_map(
            _batched_worker, range(len(stream_list)), jobs=jobs
        )
    finally:
        _publish(None, None)
        packed.close()
        packed.unlink()
    grid: Dict[Tuple[int, int], int] = {
        (size, line): 0 for line, geoms in groups for size, _nsets in geoms
    }
    total_chunks = 0
    for misses, chunks, occupancy in per_stream:
        total_chunks += chunks
        for key, count in misses.items():
            grid[key] += count
        for batch in occupancy:
            obs.series("sim.batch_occupancy").record(batch)
    obs.counter("sim.chunks").inc(total_chunks)
    return grid
