"""TPC-B: schema, scaled database population, and the transaction.

The TPC-B transaction updates one random account's balance, the balance
of the teller submitting it and of the teller's branch, and appends a
record to the history table.  Per the spec shape: 10 tellers and
100,000 accounts per branch -- we scale accounts down (configurable)
so simulated runs stay laptop-sized, exactly as the paper scales its
own 40-branch database.

The transaction is expressed as a sequence of *steps* so the
multiprocessor scheduler can interleave transactions from different
server processes and real lock conflicts arise on the hot branch rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import WorkloadError
from repro.db import Engine, int_col, pad_col
from repro.db.txn import Transaction

TELLERS_PER_BRANCH = 10

SCHEMA = {
    "account": [int_col("account_id"), int_col("branch_id"), int_col("balance"),
                pad_col("filler", 76)],
    "teller": [int_col("teller_id"), int_col("branch_id"), int_col("balance"),
               pad_col("filler", 76)],
    "branch": [int_col("branch_id"), int_col("balance"), pad_col("filler", 84)],
    "history": [int_col("account_id"), int_col("teller_id"), int_col("branch_id"),
                int_col("delta"), int_col("timestamp"), pad_col("filler", 10)],
}

KEY_COLUMNS = {
    "account": "account_id",
    "teller": "teller_id",
    "branch": "branch_id",
    "history": "account_id",  # unused: history has no index
}


@dataclass
class TpcbConfig:
    """Scaling knobs for the TPC-B database."""

    branches: int = 40
    accounts_per_branch: int = 2500
    tellers_per_branch: int = TELLERS_PER_BRANCH
    seed: int = 1234

    @property
    def accounts(self) -> int:
        return self.branches * self.accounts_per_branch

    @property
    def tellers(self) -> int:
        return self.branches * self.tellers_per_branch


def create_schema(engine: Engine) -> None:
    """Create the four TPC-B tables (history is unindexed)."""
    for name, columns in SCHEMA.items():
        engine.create_table(
            name, columns, KEY_COLUMNS[name], indexed=(name != "history")
        )


def load_database(engine: Engine, config: TpcbConfig) -> None:
    """Populate a scaled TPC-B database with zero balances."""
    create_schema(engine)
    for branch_id in range(config.branches):
        engine.load_row("branch", {"branch_id": branch_id, "balance": 0})
    for teller_id in range(config.tellers):
        engine.load_row(
            "teller",
            {
                "teller_id": teller_id,
                "branch_id": teller_id // config.tellers_per_branch,
                "balance": 0,
            },
        )
    for account_id in range(config.accounts):
        engine.load_row(
            "account",
            {
                "account_id": account_id,
                "branch_id": account_id // config.accounts_per_branch,
                "balance": 0,
            },
        )
    engine.checkpoint()


@dataclass(frozen=True)
class TpcbRequest:
    """One generated transaction's inputs."""

    account_id: int
    teller_id: int
    branch_id: int
    delta: int
    timestamp: int


class TpcbGenerator:
    """Deterministic TPC-B input generator.

    Per the spec, the account is uniform over the whole database while
    each client (server process) is bound to a home teller/branch --
    this is what makes branch rows the contention hot spot.
    """

    def __init__(self, config: TpcbConfig, client_id: int = 0) -> None:
        self.config = config
        self.client_id = client_id
        self._rng = random.Random((config.seed << 16) ^ client_id)
        self._clock = 0
        teller = self._rng.randrange(config.tellers)
        self.home_teller = teller
        self.home_branch = teller // config.tellers_per_branch

    def next_request(self) -> TpcbRequest:
        self._clock += 1
        return TpcbRequest(
            account_id=self._rng.randrange(self.config.accounts),
            teller_id=self.home_teller,
            branch_id=self.home_branch,
            delta=self._rng.randint(-999999, 999999),
            timestamp=self._clock,
        )


class TpcbTransaction:
    """One in-flight TPC-B transaction as a resumable step machine.

    Each step performs exactly one engine operation whose first action
    is its lock acquisition, so a step interrupted by
    :class:`~repro.db.engine.LockWait` has no partial work and is simply
    re-executed when the process wakes.
    """

    def __init__(self, engine: Engine, request: TpcbRequest) -> None:
        self.engine = engine
        self.request = request
        self.txn: Optional[Transaction] = None
        self._step = 0
        self._steps: List[Callable[[], None]] = [
            self._begin,
            self._update_account,
            self._update_teller,
            self._update_branch,
            self._insert_history,
            self._commit,
        ]
        self.woken_txns: List[int] = []

    @property
    def done(self) -> bool:
        return self._step >= len(self._steps)

    @property
    def step_index(self) -> int:
        """Index of the next step to run (0 = begin has not run yet)."""
        return self._step

    def run_step(self) -> None:
        """Execute the next step.  Raises LockWait if the step parked."""
        if self.done:
            raise WorkloadError("transaction already complete")
        self._steps[self._step]()
        self._step += 1

    # -- steps ----------------------------------------------------------------

    def _begin(self) -> None:
        self.txn = self.engine.begin()

    def _update_account(self) -> None:
        self.engine.update_row(
            self.txn, "account", self.request.account_id,
            deltas={"balance": self.request.delta},
        )

    def _update_teller(self) -> None:
        self.engine.update_row(
            self.txn, "teller", self.request.teller_id,
            deltas={"balance": self.request.delta},
        )

    def _update_branch(self) -> None:
        self.engine.update_row(
            self.txn, "branch", self.request.branch_id,
            deltas={"balance": self.request.delta},
        )

    def _insert_history(self) -> None:
        self.engine.insert_row(
            self.txn,
            "history",
            {
                "account_id": self.request.account_id,
                "teller_id": self.request.teller_id,
                "branch_id": self.request.branch_id,
                "delta": self.request.delta,
                "timestamp": self.request.timestamp,
            },
        )

    def _commit(self) -> None:
        self.woken_txns = self.engine.commit(self.txn)


class TpcbWorkload:
    """The pluggable-workload adapter the system model consumes.

    ``load(engine)`` populates the database; ``client(pid)`` returns a
    per-process factory whose ``next_transaction(engine)`` yields the
    next step-machine transaction.
    """

    def __init__(self, config: Optional[TpcbConfig] = None) -> None:
        self.config = config or TpcbConfig()

    def load(self, engine: Engine) -> None:
        load_database(engine, self.config)

    def client(self, pid: int) -> "TpcbClient":
        return TpcbClient(TpcbGenerator(self.config, pid))


class TpcbClient:
    """One server process's stream of TPC-B transactions."""

    def __init__(self, generator: TpcbGenerator) -> None:
        self.generator = generator

    def next_transaction(self, engine: Engine) -> TpcbTransaction:
        return TpcbTransaction(engine, self.generator.next_request())


def run_transactions(engine: Engine, config: TpcbConfig, count: int,
                     client_id: int = 0) -> int:
    """Run ``count`` transactions back to back on one client (no
    concurrency); returns the net sum of applied deltas."""
    generator = TpcbGenerator(config, client_id)
    net = 0
    for _ in range(count):
        request = generator.next_request()
        txn = TpcbTransaction(engine, request)
        while not txn.done:
            txn.run_step()
        net += request.delta
    return net
