"""A small decision-support (DSS) workload over the TPC-B schema.

The paper contrasts OLTP with DSS: "applications such as decision
support (DSS) ... have been shown to be relatively insensitive to
memory system performance" and the authors' earlier software-trace-
cache work "was mainly on DSS which has a much better instruction
cache behavior than OLTP".  This workload lets the benchmarks measure
that contrast on the same engine: read-only aggregation queries whose
time is spent in a tight scan loop rather than OLTP's sprawling
update path.

Queries (round-robin per client):

* Q1 -- total account balance for one branch (account table scan).
* Q2 -- teller balance summary (teller table scan).
* Q3 -- spot-check: probe a sample of account keys through the index.
* Q4 -- range aggregation: sum balances over an account key range
  (B+tree leaf-chain scan).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.db import Engine
from repro.db.txn import Transaction
from repro.workloads.tpcb import TpcbConfig, load_database


@dataclass
class DssConfig:
    """DSS workload configuration (data is the TPC-B database)."""

    tpcb: TpcbConfig = None
    seed: int = 91
    #: Keys probed by the Q3 spot-check query.
    probe_keys: int = 12

    def __post_init__(self) -> None:
        if self.tpcb is None:
            self.tpcb = TpcbConfig()


class DssQuery:
    """One read-only query as a step machine (same driver protocol as
    :class:`~repro.workloads.tpcb.TpcbTransaction`)."""

    def __init__(self, engine: Engine, kind: str, config: DssConfig,
                 rng: random.Random) -> None:
        self.engine = engine
        self.kind = kind
        self.config = config
        self.rng = rng
        self.txn: Optional[Transaction] = None
        self.result: Optional[int] = None
        self._step = 0
        self._steps = [self._begin, self._work, self._commit]
        self.woken_txns: List[int] = []

    @property
    def done(self) -> bool:
        return self._step >= len(self._steps)

    @property
    def step_index(self) -> int:
        return self._step

    def run_step(self) -> None:
        if self.done:
            raise WorkloadError("query already complete")
        self._steps[self._step]()
        self._step += 1

    def _begin(self) -> None:
        self.txn = self.engine.begin()

    def _work(self) -> None:
        if self.kind == "q1_branch_balance":
            branch = self.rng.randrange(self.config.tpcb.branches)
            rows = self.engine.scan_rows(
                self.txn, "account", lambda r: r["branch_id"] == branch
            )
            self.result = sum(r["balance"] for r in rows)
        elif self.kind == "q2_teller_summary":
            rows = self.engine.scan_rows(self.txn, "teller")
            self.result = sum(r["balance"] for r in rows)
        elif self.kind == "q4_range_sum":
            span = max(10, self.config.tpcb.accounts // 20)
            lo = self.rng.randrange(max(1, self.config.tpcb.accounts - span))
            rows = self.engine.range_rows(self.txn, "account", lo, lo + span - 1)
            self.result = sum(r["balance"] for r in rows)
        elif self.kind == "q3_spot_check":
            total = 0
            for _ in range(self.config.probe_keys):
                key = self.rng.randrange(self.config.tpcb.accounts)
                total += self.engine.get_row(self.txn, "account", key)["balance"]
            self.result = total
        else:
            raise WorkloadError(f"unknown DSS query kind {self.kind!r}")

    def _commit(self) -> None:
        self.woken_txns = self.engine.commit(self.txn)


QUERY_MIX = ("q1_branch_balance", "q2_teller_summary", "q3_spot_check",
             "q4_range_sum")


class DssClient:
    """One process's round-robin query stream."""

    def __init__(self, config: DssConfig, pid: int) -> None:
        self.config = config
        self.rng = random.Random((config.seed << 16) ^ pid)
        self._next = pid % len(QUERY_MIX)

    def next_transaction(self, engine: Engine) -> DssQuery:
        kind = QUERY_MIX[self._next]
        self._next = (self._next + 1) % len(QUERY_MIX)
        return DssQuery(engine, kind, self.config, self.rng)


class DssWorkload:
    """Pluggable workload for :class:`~repro.execution.mp.OltpSystem`."""

    def __init__(self, config: Optional[DssConfig] = None) -> None:
        self.config = config or DssConfig()

    def load(self, engine: Engine) -> None:
        load_database(engine, self.config.tpcb)

    def client(self, pid: int) -> DssClient:
        return DssClient(self.config, pid)
