"""Workload drivers (TPC-B, DSS, phase-shifting mixes, and the
synthetic generator).

The synthetic workload lives in :mod:`repro.scenarios.synth` but is a
first-class citizen of this namespace: ``repro.workloads.SyntheticWorkload``
et al. resolve lazily (module ``__getattr__``) so importing
``repro.workloads`` never pulls in the scenarios package — which itself
imports the harness, which imports this module."""

from repro.workloads.dss import (
    DssClient,
    DssConfig,
    DssQuery,
    DssWorkload,
    QUERY_MIX,
)
from repro.workloads.phased import (
    PHASE_MIXES,
    Phase,
    PhasedClient,
    PhasedConfig,
    PhasedWorkload,
)
from repro.workloads.tpcb import (
    KEY_COLUMNS,
    SCHEMA,
    TpcbClient,
    TpcbWorkload,
    TpcbConfig,
    TpcbGenerator,
    TpcbRequest,
    TpcbTransaction,
    create_schema,
    load_database,
    run_transactions,
)

#: Synthetic-workload symbols re-exported lazily from
#: :mod:`repro.scenarios.synth` (import cycle avoidance, see above).
_SYNTH_EXPORTS = (
    "MIX_PRESETS",
    "OP_KINDS",
    "SynthPhase",
    "SyntheticClient",
    "SyntheticConfig",
    "SyntheticTransaction",
    "SyntheticWorkload",
)


def __getattr__(name):
    if name in _SYNTH_EXPORTS:
        from repro.scenarios import synth

        return getattr(synth, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_SYNTH_EXPORTS))


__all__ = [
    "DssClient",
    "DssConfig",
    "DssQuery",
    "DssWorkload",
    "QUERY_MIX",
    "PHASE_MIXES",
    "Phase",
    "PhasedClient",
    "PhasedConfig",
    "PhasedWorkload",
    "TpcbClient",
    "TpcbWorkload",
    "KEY_COLUMNS",
    "SCHEMA",
    "TpcbConfig",
    "TpcbGenerator",
    "TpcbRequest",
    "TpcbTransaction",
    "create_schema",
    "load_database",
    "run_transactions",
    *_SYNTH_EXPORTS,
]
