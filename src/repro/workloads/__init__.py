"""Workload drivers (TPC-B, DSS, and phase-shifting mixes)."""

from repro.workloads.dss import (
    DssClient,
    DssConfig,
    DssQuery,
    DssWorkload,
    QUERY_MIX,
)
from repro.workloads.phased import (
    PHASE_MIXES,
    Phase,
    PhasedClient,
    PhasedConfig,
    PhasedWorkload,
)
from repro.workloads.tpcb import (
    KEY_COLUMNS,
    SCHEMA,
    TpcbClient,
    TpcbWorkload,
    TpcbConfig,
    TpcbGenerator,
    TpcbRequest,
    TpcbTransaction,
    create_schema,
    load_database,
    run_transactions,
)

__all__ = [
    "DssClient",
    "DssConfig",
    "DssQuery",
    "DssWorkload",
    "QUERY_MIX",
    "PHASE_MIXES",
    "Phase",
    "PhasedClient",
    "PhasedConfig",
    "PhasedWorkload",
    "TpcbClient",
    "TpcbWorkload",
    "KEY_COLUMNS",
    "SCHEMA",
    "TpcbConfig",
    "TpcbGenerator",
    "TpcbRequest",
    "TpcbTransaction",
    "create_schema",
    "load_database",
    "run_transactions",
]
