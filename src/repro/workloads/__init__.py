"""Workload drivers (TPC-B)."""

from repro.workloads.dss import (
    DssClient,
    DssConfig,
    DssQuery,
    DssWorkload,
    QUERY_MIX,
)
from repro.workloads.tpcb import (
    KEY_COLUMNS,
    SCHEMA,
    TpcbClient,
    TpcbWorkload,
    TpcbConfig,
    TpcbGenerator,
    TpcbRequest,
    TpcbTransaction,
    create_schema,
    load_database,
    run_transactions,
)

__all__ = [
    "DssClient",
    "DssConfig",
    "DssQuery",
    "DssWorkload",
    "QUERY_MIX",
    "TpcbClient",
    "TpcbWorkload",
    "KEY_COLUMNS",
    "SCHEMA",
    "TpcbConfig",
    "TpcbGenerator",
    "TpcbRequest",
    "TpcbTransaction",
    "create_schema",
    "load_database",
    "run_transactions",
]
