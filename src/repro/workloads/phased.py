"""Phase-shifting workload: the executed path mix changes mid-run.

The paper's Section 5 interference study trains the layout on one
request mix and measures on another; this workload reproduces that
situation *within a single run*.  Every client (server process) works
through a schedule of phases -- e.g. TPC-B updates for its first N
transactions, then read-only DSS aggregation queries -- so the hot
path mix of the system shifts while it serves traffic.  The online
adaptation subsystem (:mod:`repro.online`) uses it to demonstrate
static-layout decay and adaptive recovery.

Because clients advance through their schedules at roughly the same
rate (the scheduler round-robins processes), the shift shows up in the
system trace as a fairly sharp change in the executed block mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import WorkloadError
from repro.db import Engine
from repro.workloads.dss import DssClient, DssConfig
from repro.workloads.tpcb import (
    TpcbClient,
    TpcbConfig,
    TpcbGenerator,
    load_database,
)

#: Workload mixes a phase can run.
PHASE_MIXES = ("tpcb", "dss")


@dataclass(frozen=True)
class Phase:
    """One stretch of a client's schedule.

    ``transactions`` is the number of transactions each client issues
    in this phase before advancing; 0 means "run forever" and is only
    valid for the final phase.
    """

    mix: str
    transactions: int = 0

    def __post_init__(self) -> None:
        if self.mix not in PHASE_MIXES:
            raise WorkloadError(
                f"unknown phase mix {self.mix!r}; valid mixes: "
                f"{', '.join(PHASE_MIXES)}"
            )
        if self.transactions < 0:
            raise WorkloadError(
                f"phase {self.mix!r}: negative transaction count"
            )


@dataclass
class PhasedConfig:
    """Schedule plus the underlying TPC-B / DSS configurations."""

    tpcb: Optional[TpcbConfig] = None
    dss: Optional[DssConfig] = None
    phases: Tuple[Phase, ...] = (Phase("tpcb", 6), Phase("dss", 0))

    def __post_init__(self) -> None:
        if self.tpcb is None:
            self.tpcb = TpcbConfig()
        if self.dss is None:
            self.dss = DssConfig(tpcb=self.tpcb)
        if not self.phases:
            raise WorkloadError("phased workload needs at least one phase")
        for phase in self.phases[:-1]:
            if phase.transactions == 0:
                raise WorkloadError(
                    f"phase {phase.mix!r}: only the final phase may be "
                    "unbounded (transactions=0)"
                )


class PhasedClient:
    """One process's transaction stream walking the phase schedule."""

    def __init__(self, config: PhasedConfig, pid: int) -> None:
        self.config = config
        self.pid = pid
        self._tpcb = TpcbClient(TpcbGenerator(config.tpcb, pid))
        self._dss = DssClient(config.dss, pid)
        self._phase_index = 0
        self._issued_in_phase = 0

    @property
    def phase(self) -> Phase:
        """The phase the *next* transaction will come from."""
        self._advance()
        return self.config.phases[self._phase_index]

    def _advance(self) -> None:
        while True:
            phase = self.config.phases[self._phase_index]
            last = self._phase_index + 1 >= len(self.config.phases)
            if last or not phase.transactions or \
                    self._issued_in_phase < phase.transactions:
                return
            self._phase_index += 1
            self._issued_in_phase = 0

    def next_transaction(self, engine: Engine):
        phase = self.phase  # advances the schedule if needed
        self._issued_in_phase += 1
        client = self._tpcb if phase.mix == "tpcb" else self._dss
        return client.next_transaction(engine)


class PhasedWorkload:
    """Pluggable workload for :class:`~repro.execution.mp.OltpSystem`."""

    def __init__(self, config: Optional[PhasedConfig] = None) -> None:
        self.config = config or PhasedConfig()

    def load(self, engine: Engine) -> None:
        load_database(engine, self.config.tpcb)

    def client(self, pid: int) -> PhasedClient:
        return PhasedClient(self.config, pid)
