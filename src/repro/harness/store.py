"""Persistence for the expensive pipeline products.

Generating the measurement trace is the costly step of every
experiment (two full system runs).  These helpers serialize traces and
profiles to ``.npz`` files so repeat studies — parameter sweeps, or
re-running the benchmark suite after analysis-only changes — skip the
regeneration.

File format: a single compressed ``.npz`` whose arrays are prefixed by
kind (``cpu{i}_blocks``, ``cpu{i}_pids``, ``data{i}_addr``, ...), plus
a metadata array.  Profiles store the block-count array and the edge
dictionary as parallel arrays.  Layouts serialize to JSON (unit names,
block ids, padding); compiled programs to stdlib pickle.

:class:`ArtifactStore` arranges these files into a content-addressed
cache directory keyed by ``ExperimentConfig.fingerprint()``, so warm
reruns of any figure skip codegen, profiling, and tracing entirely::

    <root>/<fingerprint>/app.pkl           compiled application
    <root>/<fingerprint>/kernel.pkl        compiled kernel
    <root>/<fingerprint>/profile-app.npz   Pixie profile (app)
    <root>/<fingerprint>/profile-kernel.npz
    <root>/<fingerprint>/trace.npz         measurement trace
    <root>/<fingerprint>/layout-<combo>.json
    <root>/<fingerprint>/klayout-<combo>.json
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import pickle
import shutil
import uuid
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.execution.trace import CpuTrace, SystemTrace
from repro.ir import Binary, CodeUnit, Layout
from repro.profiles import Profile

LOGGER = logging.getLogger("repro.harness")

PathLike = Union[str, pathlib.Path]


def save_trace(trace: SystemTrace, path: PathLike) -> None:
    """Serialize a SystemTrace to a compressed .npz file."""
    arrays = {
        "meta": np.array(
            [len(trace.cpus), trace.kernel_offset, trace.transactions],
            dtype=np.int64,
        )
    }
    for i, cpu in enumerate(trace.cpus):
        arrays[f"cpu{i}_blocks"] = cpu.blocks
        arrays[f"cpu{i}_pids"] = cpu.pids
        arrays[f"data{i}_addr"] = trace.data_addresses[i]
        arrays[f"data{i}_pos"] = trace.data_positions[i]
    np.savez_compressed(str(path), **arrays)


def load_trace(path: PathLike) -> SystemTrace:
    """Load a SystemTrace written by :func:`save_trace`."""
    with np.load(str(path)) as data:
        try:
            n_cpus, kernel_offset, transactions = data["meta"].tolist()
        except KeyError:
            raise SimulationError(f"{path}: not a serialized SystemTrace")
        cpus = []
        data_addresses = []
        data_positions = []
        for i in range(n_cpus):
            cpus.append(
                CpuTrace(
                    blocks=data[f"cpu{i}_blocks"],
                    pids=data[f"cpu{i}_pids"],
                )
            )
            data_addresses.append(data[f"data{i}_addr"])
            data_positions.append(data[f"data{i}_pos"])
    return SystemTrace(
        cpus=cpus,
        data_addresses=data_addresses,
        data_positions=data_positions,
        kernel_offset=int(kernel_offset),
        transactions=int(transactions),
    )


def save_profile(profile: Profile, path: PathLike) -> None:
    """Serialize a Profile to a compressed .npz file."""
    edges = profile.edge_counts
    src = np.array([edge[0] for edge in edges], dtype=np.int64)
    dst = np.array([edge[1] for edge in edges], dtype=np.int64)
    counts = np.array([edges[edge] for edge in edges], dtype=np.int64)
    np.savez_compressed(
        str(path),
        block_counts=profile.block_counts,
        edge_src=src,
        edge_dst=dst,
        edge_counts=counts,
    )


def load_profile(binary: Binary, path: PathLike) -> Profile:
    """Load a Profile written by :func:`save_profile`.

    The caller supplies the binary it belongs to; a block-count length
    mismatch (different generated binary) is rejected.
    """
    profile = Profile(binary)
    with np.load(str(path)) as data:
        block_counts = data["block_counts"]
        if len(block_counts) != binary.num_blocks:
            raise SimulationError(
                f"{path}: profile covers {len(block_counts)} blocks, "
                f"binary has {binary.num_blocks} (stale cache?)"
            )
        profile.block_counts = block_counts.astype(np.int64)
        for src, dst, count in zip(
            data["edge_src"].tolist(),
            data["edge_dst"].tolist(),
            data["edge_counts"].tolist(),
        ):
            profile.edge_counts[(src, dst)] = count
    return profile


def layout_to_dict(layout: Layout) -> Dict:
    """A Layout as a JSON-ready dict (the on-disk and wire shape)."""
    return {
        "name": layout.name,
        "alignment": layout.alignment,
        "units": [
            {
                "name": unit.name,
                "proc_name": unit.proc_name,
                "block_ids": list(unit.block_ids),
                "is_entry": unit.is_entry,
                "pad_before": unit.pad_before,
            }
            for unit in layout.units
        ],
    }


def layout_from_dict(payload: Dict, binary: Binary = None) -> Layout:
    """Rebuild a Layout from :func:`layout_to_dict` output.

    When ``binary`` is given the layout is validated against it; a
    layout for a different generated binary raises ``LayoutError``.
    """
    layout = Layout(
        units=[
            CodeUnit(
                name=unit["name"],
                proc_name=unit["proc_name"],
                block_ids=tuple(unit["block_ids"]),
                is_entry=unit["is_entry"],
                pad_before=unit["pad_before"],
            )
            for unit in payload["units"]
        ],
        alignment=payload["alignment"],
        name=payload["name"],
    )
    if binary is not None:
        layout.validate_against(binary)
    return layout


def save_layout(layout: Layout, path: PathLike) -> None:
    """Serialize a Layout to JSON."""
    pathlib.Path(path).write_text(json.dumps(layout_to_dict(layout)))


def load_layout(path: PathLike, binary: Binary = None) -> Layout:
    """Load a Layout written by :func:`save_layout`.

    When ``binary`` is given the layout is validated against it; a
    layout for a different generated binary raises ``LayoutError``
    (which cache readers treat as a miss).
    """
    payload = json.loads(pathlib.Path(path).read_text())
    return layout_from_dict(payload, binary)


def save_program(program, path: PathLike) -> None:
    """Serialize a CompiledProgram (binary + routine specs) to pickle."""
    with open(path, "wb") as handle:
        pickle.dump(program, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_program(path: PathLike):
    """Load a CompiledProgram written by :func:`save_program`."""
    with open(path, "rb") as handle:
        return pickle.load(handle)


def default_cache_dir() -> pathlib.Path:
    """The default artifact cache location.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro``
    (``~/.cache/repro``).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override).expanduser()
    base = os.environ.get("XDG_CACHE_HOME") or "~/.cache"
    return pathlib.Path(base).expanduser() / "repro"


@dataclass
class StoreInfo:
    """Summary of an :class:`ArtifactStore`'s contents."""

    root: pathlib.Path
    experiments: int
    files: int
    total_bytes: int


class ArtifactStore:
    """Content-addressed, on-disk cache for pipeline artifacts.

    Entries are keyed by ``(fingerprint, name)`` where the fingerprint
    is :meth:`ExperimentConfig.fingerprint` and the name identifies the
    stage product (``trace.npz``, ``layout-all.json``, ...).  The store
    only provides paths and bookkeeping; serialization stays in the
    module-level ``save_*``/``load_*`` helpers so artifacts remain
    readable without a store.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root).expanduser()

    def path(self, fingerprint: str, name: str) -> pathlib.Path:
        """Where the artifact for ``(fingerprint, name)`` lives."""
        return self.root / fingerprint / name

    def has(self, fingerprint: str, name: str) -> bool:
        """True when the artifact exists in the cache."""
        return self.path(fingerprint, name).is_file()

    def prepare(self, fingerprint: str, name: str) -> pathlib.Path:
        """The artifact path, with its directory created."""
        path = self.path(fingerprint, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def load(self, fingerprint: str, name: str, loader):
        """Load one artifact through ``loader(path)``.

        Returns None on a miss; any load failure (missing, corrupt,
        stale) degrades to a miss so callers recompute.  Hits, misses,
        errors, and bytes read feed the ``store.*`` metrics
        (:mod:`repro.obs`).
        """
        path = self.path(fingerprint, name)
        if not path.is_file():
            obs.counter("store.misses").inc()
            return None
        try:
            obj = loader(path)
        except Exception as exc:  # corrupt/stale entries must not kill runs
            LOGGER.warning(
                "cache entry %s unreadable (%s); recomputing", path, exc
            )
            obs.counter("store.errors").inc()
            obs.counter("store.misses").inc()
            return None
        obs.counter("store.hits").inc()
        obs.counter("store.bytes_read").inc(path.stat().st_size)
        return obj

    def save(self, fingerprint: str, name: str, obj, saver) -> int:
        """Persist one artifact through ``saver(obj, path)``.

        The write is **atomic**: the saver writes a same-directory
        temporary file which is then ``os.replace``d over the final
        path.  Readers (and the server's persistent cache tier) never
        observe a torn artifact, and concurrent writers of the same
        key each land a complete file — last replace wins.

        Returns bytes written (0 when the write failed, e.g. on a
        read-only cache directory).  Writes and bytes feed the
        ``store.*`` metrics.
        """
        path = self.path(fingerprint, name)
        # The temp name *ends with* the real name so suffix-sniffing
        # savers (np.savez appends ".npz" to unsuffixed paths) behave
        # identically on the temporary file.
        tmp = path.with_name(
            f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}-{path.name}"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            saver(obj, tmp)
            size = tmp.stat().st_size
            os.replace(tmp, path)
        except OSError as exc:  # read-only cache dir etc.
            LOGGER.warning("cannot persist %s (%s); continuing uncached", name, exc)
            return 0
        finally:
            tmp.unlink(missing_ok=True)
        obs.counter("store.writes").inc()
        obs.counter("store.bytes_written").inc(size)
        return size

    def info(self) -> StoreInfo:
        """Count cached experiments, files, and bytes."""
        experiments = files = total = 0
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if not entry.is_dir():
                    continue
                experiments += 1
                for artifact in entry.iterdir():
                    if artifact.is_file():
                        files += 1
                        total += artifact.stat().st_size
        return StoreInfo(
            root=self.root, experiments=experiments,
            files=files, total_bytes=total,
        )

    def clear(self) -> int:
        """Delete every cached artifact; returns experiments removed."""
        removed = 0
        if self.root.is_dir():
            for entry in list(self.root.iterdir()):
                if entry.is_dir():
                    shutil.rmtree(entry)
                    removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
