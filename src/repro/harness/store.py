"""Persistence for the expensive pipeline products.

Generating the measurement trace is the costly step of every
experiment (two full system runs).  These helpers serialize traces and
profiles to ``.npz`` files so repeat studies — parameter sweeps, or
re-running the benchmark suite after analysis-only changes — skip the
regeneration.

File format: a single compressed ``.npz`` whose arrays are prefixed by
kind (``cpu{i}_blocks``, ``cpu{i}_pids``, ``data{i}_addr``, ...), plus
a metadata array.  Profiles store the block-count array and the edge
dictionary as parallel arrays.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.errors import SimulationError
from repro.execution.trace import CpuTrace, SystemTrace
from repro.ir import Binary
from repro.profiles import Profile

PathLike = Union[str, pathlib.Path]


def save_trace(trace: SystemTrace, path: PathLike) -> None:
    """Serialize a SystemTrace to a compressed .npz file."""
    arrays = {
        "meta": np.array(
            [len(trace.cpus), trace.kernel_offset, trace.transactions],
            dtype=np.int64,
        )
    }
    for i, cpu in enumerate(trace.cpus):
        arrays[f"cpu{i}_blocks"] = cpu.blocks
        arrays[f"cpu{i}_pids"] = cpu.pids
        arrays[f"data{i}_addr"] = trace.data_addresses[i]
        arrays[f"data{i}_pos"] = trace.data_positions[i]
    np.savez_compressed(str(path), **arrays)


def load_trace(path: PathLike) -> SystemTrace:
    """Load a SystemTrace written by :func:`save_trace`."""
    with np.load(str(path)) as data:
        try:
            n_cpus, kernel_offset, transactions = data["meta"].tolist()
        except KeyError:
            raise SimulationError(f"{path}: not a serialized SystemTrace")
        cpus = []
        data_addresses = []
        data_positions = []
        for i in range(n_cpus):
            cpus.append(
                CpuTrace(
                    blocks=data[f"cpu{i}_blocks"],
                    pids=data[f"cpu{i}_pids"],
                )
            )
            data_addresses.append(data[f"data{i}_addr"])
            data_positions.append(data[f"data{i}_pos"])
    return SystemTrace(
        cpus=cpus,
        data_addresses=data_addresses,
        data_positions=data_positions,
        kernel_offset=int(kernel_offset),
        transactions=int(transactions),
    )


def save_profile(profile: Profile, path: PathLike) -> None:
    """Serialize a Profile to a compressed .npz file."""
    edges = profile.edge_counts
    src = np.array([edge[0] for edge in edges], dtype=np.int64)
    dst = np.array([edge[1] for edge in edges], dtype=np.int64)
    counts = np.array([edges[edge] for edge in edges], dtype=np.int64)
    np.savez_compressed(
        str(path),
        block_counts=profile.block_counts,
        edge_src=src,
        edge_dst=dst,
        edge_counts=counts,
    )


def load_profile(binary: Binary, path: PathLike) -> Profile:
    """Load a Profile written by :func:`save_profile`.

    The caller supplies the binary it belongs to; a block-count length
    mismatch (different generated binary) is rejected.
    """
    profile = Profile(binary)
    with np.load(str(path)) as data:
        block_counts = data["block_counts"]
        if len(block_counts) != binary.num_blocks:
            raise SimulationError(
                f"{path}: profile covers {len(block_counts)} blocks, "
                f"binary has {binary.num_blocks} (stale cache?)"
            )
        profile.block_counts = block_counts.astype(np.int64)
        for src, dst, count in zip(
            data["edge_src"].tolist(),
            data["edge_dst"].tolist(),
            data["edge_counts"].tolist(),
        ):
            profile.edge_counts[(src, dst)] = count
    return profile
