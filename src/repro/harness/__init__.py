"""Experiment harness shared by the benchmark suite."""

from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    default_experiment,
    dss_experiment,
    quick_experiment,
    uniprocessor_experiment,
)
from repro.harness import figures
from repro.harness.store import load_profile, load_trace, save_profile, save_trace

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "default_experiment",
    "dss_experiment",
    "figures",
    "load_profile",
    "load_trace",
    "save_profile",
    "save_trace",
    "quick_experiment",
    "uniprocessor_experiment",
]
