"""Experiment harness shared by the benchmark suite."""

from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    STREAM_SCOPES,
    StreamSet,
    default_experiment,
    dss_experiment,
    quick_experiment,
    uniprocessor_experiment,
)
from repro.harness import figures
from repro.harness.parallel import parallel_map, resolve_jobs
from repro.harness.results import (
    RESULTS_SCHEMA_VERSION,
    read_history,
    run_id,
    table_payload,
    write_benchmark_json,
)
from repro.harness.runlog import RunLog, StageRecord
from repro.harness.store import (
    ArtifactStore,
    StoreInfo,
    default_cache_dir,
    load_layout,
    load_profile,
    load_program,
    load_trace,
    save_layout,
    save_profile,
    save_program,
    save_trace,
)

__all__ = [
    "ArtifactStore",
    "Experiment",
    "ExperimentConfig",
    "RESULTS_SCHEMA_VERSION",
    "RunLog",
    "STREAM_SCOPES",
    "StageRecord",
    "StoreInfo",
    "StreamSet",
    "default_cache_dir",
    "default_experiment",
    "dss_experiment",
    "figures",
    "load_layout",
    "load_profile",
    "load_program",
    "load_trace",
    "parallel_map",
    "read_history",
    "resolve_jobs",
    "run_id",
    "save_layout",
    "save_profile",
    "save_program",
    "save_trace",
    "table_payload",
    "quick_experiment",
    "uniprocessor_experiment",
    "write_benchmark_json",
]
