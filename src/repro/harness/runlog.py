"""Per-stage observability for the experiment pipeline.

Every expensive stage of an :class:`~repro.harness.Experiment` —
codegen, the profiling run, the measurement trace, per-combo layouts,
fanned-out sweeps — records a :class:`StageRecord` (wall time, cache
hit/miss, bytes persisted) in the experiment's :class:`RunLog`.  Each
record is also emitted through the ``repro.harness`` logger as it
completes, so long ``--full`` runs show progress live; the CLI renders
the collected log as a summary table after each command.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro import obs

LOGGER = logging.getLogger("repro.harness")

#: Cache states a stage can report.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_OFF = "off"


@dataclass
class StageRecord:
    """One pipeline stage execution."""

    stage: str
    detail: str = ""
    seconds: float = 0.0
    cache: str = CACHE_OFF
    bytes: int = 0

    def describe(self) -> str:
        """One summary line: stage, seconds, cache disposition, bytes."""
        label = f"{self.stage}[{self.detail}]" if self.detail else self.stage
        text = f"{label}: {self.seconds:.3f}s cache={self.cache}"
        if self.bytes:
            text += f" bytes={self.bytes}"
        return text


class RunLog:
    """Ordered collection of stage records for one experiment."""

    def __init__(self) -> None:
        self.records: List[StageRecord] = []

    @contextmanager
    def stage(self, stage: str, detail: str = "") -> Iterator[StageRecord]:
        """Time one stage; the body sets ``cache``/``bytes`` on the record.

        Each stage also opens a ``stage.<name>`` tracing span and
        records its wall time in the ``pipeline.<name>.seconds``
        histogram, so pipeline timing shows up in trace files and in
        the ``metrics`` section of benchmark results.
        """
        record = StageRecord(stage=stage, detail=detail)
        start = time.perf_counter()
        with obs.span(f"stage.{stage}", detail=detail or None) as span:
            try:
                yield record
            finally:
                record.seconds = time.perf_counter() - start
                span.set("cache", record.cache)
                if record.bytes:
                    span.set("bytes", record.bytes)
                obs.histogram(f"pipeline.{stage}.seconds").record(record.seconds)
                self.records.append(record)
                LOGGER.info("%s", record.describe())

    def cache_states(self, stage: Optional[str] = None) -> List[str]:
        """Cache states of all records (optionally for one stage)."""
        return [
            r.cache for r in self.records if stage is None or r.stage == stage
        ]

    def all_hits(self, *stages: str) -> bool:
        """True when every record of each named stage was a cache hit."""
        for stage in stages:
            states = self.cache_states(stage)
            if not states or any(state != CACHE_HIT for state in states):
                return False
        return True

    def total_seconds(self) -> float:
        """Wall time summed over every recorded stage."""
        return sum(r.seconds for r in self.records)

    def render(self, header: str = "pipeline stages") -> str:
        """The log as an aligned text table."""
        columns = ("stage", "detail", "cache", "seconds", "bytes")
        rows = [
            (r.stage, r.detail or "-", r.cache, f"{r.seconds:.3f}",
             str(r.bytes) if r.bytes else "-")
            for r in self.records
        ]
        widths = [
            max(len(col), *(len(row[i]) for row in rows)) if rows else len(col)
            for i, col in enumerate(columns)
        ]
        lines = [f"{header} ({len(rows)} stages, "
                 f"{self.total_seconds():.3f}s total)"]
        lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines) + "\n"
