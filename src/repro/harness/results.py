"""Machine-readable benchmark results.

Every benchmark table saved under ``benchmarks/results/`` has always
been a rendered ``.txt`` — fine for eyeballing, useless for tooling.
:func:`write_benchmark_json` emits the same result as
``BENCH_<name>.json`` with a small stable schema, so CI jobs and
notebooks can assert on numbers instead of parsing aligned columns.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from repro.harness.figures import Table

PathLike = Union[str, pathlib.Path]

#: Bump when the JSON document shape changes.
RESULTS_SCHEMA_VERSION = 1


def table_payload(table: Table) -> Dict:
    """A benchmark :class:`~repro.harness.figures.Table` as plain data."""
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def write_benchmark_json(
    name: str,
    payload: Union[Table, Dict],
    results_dir: PathLike,
    extra: Optional[Dict] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``results_dir``.

    ``payload`` is either a :class:`~repro.harness.figures.Table`
    (converted via :func:`table_payload`) or an already-structured
    dict (e.g. an online report's ``to_dict()``).  ``extra`` keys are
    merged in at the top level.  Returns the written path.
    """
    if isinstance(payload, Table):
        payload = table_payload(payload)
    document = {"schema": RESULTS_SCHEMA_VERSION, "name": name}
    document.update(payload)
    if extra:
        document.update(extra)
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
