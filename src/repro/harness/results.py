"""Machine-readable benchmark results.

Every benchmark table saved under ``benchmarks/results/`` has always
been a rendered ``.txt`` — fine for eyeballing, useless for tooling.
:func:`write_benchmark_json` emits the same result as
``BENCH_<name>.json`` with a small stable schema, so CI jobs and
notebooks can assert on numbers instead of parsing aligned columns.

Schema v2 adds two observability-driven sections:

``run``
    Provenance for the writing process: a run id (``REPRO_RUN_ID`` or
    a fresh random one), ISO-8601 timestamp, and unix time.  Every
    ``BENCH_*.json`` written by the same process shares one run id.
``metrics``
    A snapshot of the in-process :mod:`repro.obs` metric registry at
    write time (omitted when no metrics were recorded), so cache
    simulator counters, layout decision counts and pipeline stage
    timings travel with the numbers they explain.

Because ``BENCH_<name>.json`` is overwritten in place on every run,
each write also *appends* the full document as one line to
``BENCH_<name>.history.jsonl`` keyed by run id — the trail of past
runs survives re-runs and feeds regression analysis.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import time
import uuid
from typing import Dict, Optional, Union

from repro import obs
from repro.harness.figures import Table

PathLike = Union[str, pathlib.Path]

#: Bump when the JSON document shape changes.
RESULTS_SCHEMA_VERSION = 2

_RUN_ID: Optional[str] = None


def run_id() -> str:
    """The stable run id for this process.

    ``REPRO_RUN_ID`` wins when set (CI passes the pipeline id so all
    artifacts of one workflow correlate); otherwise a random 12-hex-char
    id is minted once per process.
    """
    global _RUN_ID
    env = os.environ.get("REPRO_RUN_ID")
    if env:
        return env
    if _RUN_ID is None:
        _RUN_ID = uuid.uuid4().hex[:12]
    return _RUN_ID


def run_info() -> Dict:
    """The ``run`` provenance section for a results document."""
    now = time.time()
    stamp = datetime.datetime.fromtimestamp(now, datetime.timezone.utc)
    return {
        "id": run_id(),
        "timestamp": stamp.isoformat(timespec="seconds"),
        "unix_time": round(now, 3),
    }


def table_payload(table: Table) -> Dict:
    """A benchmark :class:`~repro.harness.figures.Table` as plain data."""
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def write_benchmark_json(
    name: str,
    payload: Union[Table, Dict],
    results_dir: PathLike,
    extra: Optional[Dict] = None,
    history: bool = True,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``results_dir``.

    ``payload`` is either a :class:`~repro.harness.figures.Table`
    (converted via :func:`table_payload`) or an already-structured
    dict (e.g. an online report's ``to_dict()``).  ``extra`` keys are
    merged in at the top level.  The document carries a ``run``
    provenance section and, when the :mod:`repro.obs` registry is
    non-empty, a ``metrics`` snapshot.  With ``history`` (the
    default), the document is also appended as one JSON line to
    ``BENCH_<name>.history.jsonl``, so overwriting the latest result
    never loses earlier runs.  Returns the written path.
    """
    if isinstance(payload, Table):
        payload = table_payload(payload)
    document = {"schema": RESULTS_SCHEMA_VERSION, "name": name}
    document.update(payload)
    if extra:
        document.update(extra)
    document["run"] = run_info()
    metrics = obs.registry().snapshot()
    if metrics:
        document["metrics"] = metrics
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    if history:
        history_path = results_dir / f"BENCH_{name}.history.jsonl"
        with history_path.open("a") as fh:
            fh.write(json.dumps(document, separators=(",", ":")) + "\n")
    return path


def read_history(name: str, results_dir: PathLike) -> list:
    """All recorded runs of ``name``, oldest first.

    Reads ``BENCH_<name>.history.jsonl``; a missing file is an empty
    history, a corrupt line raises :class:`ValueError` naming the line.
    """
    path = pathlib.Path(results_dir) / f"BENCH_{name}.history.jsonl"
    if not path.is_file():
        return []
    runs = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            runs.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: corrupt history line") from exc
    return runs
