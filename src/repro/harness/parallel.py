"""Deterministic process-level fan-out for independent sweep cells.

The paper-scale figures replay the same measurement trace through many
independent (layout combo x cache geometry) cells.  :func:`parallel_map`
fans those cells across a ``ProcessPoolExecutor`` while keeping results
**bit-identical to serial execution**: the input order defines the
output order, each cell is a pure function of its arguments, and the
pool uses the ``fork`` start method so workers inherit the parent's
prepared streams without re-deriving anything.

When ``jobs <= 1``, ``fork`` is unavailable (e.g. Windows), or there is
only one cell, the map degrades to a plain serial comprehension — the
same function applied in the same order.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a job-count request: ``None``/``0`` -> 1 (serial),
    negative -> one worker per CPU."""
    if not jobs:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def fork_available() -> bool:
    """True when the deterministic ``fork`` start method exists."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Order-preserving map over independent items.

    ``fn`` must be a module-level (picklable) function.  Results are
    returned in input order regardless of completion order, so parallel
    runs reproduce serial output exactly.
    """
    work = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1 or not fork_available():
        return [fn(item) for item in work]
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))
