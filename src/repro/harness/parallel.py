"""Deterministic process-level fan-out for independent sweep cells.

The paper-scale figures replay the same measurement trace through many
independent (layout combo x cache geometry) cells.  :func:`parallel_map`
fans those cells across a ``ProcessPoolExecutor`` while keeping results
**bit-identical to serial execution**: the input order defines the
output order, each cell is a pure function of its arguments, and the
pool uses the ``fork`` start method so workers inherit the parent's
prepared streams without re-deriving anything.

When ``jobs <= 1``, ``fork`` is unavailable (e.g. Windows), or there is
only one cell, the map degrades to a plain serial comprehension — the
same function applied in the same order.

With ``timeout`` set, the whole map must finish within that many
seconds.  A hung worker (or one killed by the OS / ``os._exit``) no
longer stalls the sweep forever: the pool's processes are terminated
and a :class:`~repro.errors.ParallelError` naming the offending task
index is raised instead.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ParallelError

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a job-count request: ``None``/``0`` -> 1 (serial),
    negative -> one worker per CPU."""
    if not jobs:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def fork_available() -> bool:
    """True when the deterministic ``fork`` start method exists."""
    return "fork" in multiprocessing.get_all_start_methods()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on stuck or dead workers.

    ``shutdown(wait=True)`` would block on a hung worker, so the
    worker processes are terminated first.  ``_processes`` is private
    but stable across the supported CPython versions; an attribute
    error degrades to a non-waiting shutdown.
    """
    try:
        processes = list(getattr(pool, "_processes", {}).values())
    except Exception:
        processes = []
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _mapped_with_deadline(
    pool: ProcessPoolExecutor,
    fn: Callable[[T], R],
    work: List[T],
    timeout: float,
) -> List[R]:
    """Submit every task, then collect in order against one deadline."""
    futures = [pool.submit(fn, item) for item in work]
    deadline = time.monotonic() + timeout
    results: List[R] = []
    for index, future in enumerate(futures):
        remaining = deadline - time.monotonic()
        try:
            results.append(future.result(timeout=max(0.0, remaining)))
        except FutureTimeoutError:
            _kill_pool(pool)
            raise ParallelError(
                f"parallel_map task {index} did not finish within the "
                f"{timeout:g}s hard timeout ({len(results)} of "
                f"{len(work)} tasks completed); worker pool terminated"
            ) from None
        except BrokenProcessPool as exc:
            _kill_pool(pool)
            raise ParallelError(
                f"parallel_map worker crashed while running task {index} "
                f"(process killed or died without returning); "
                f"{len(results)} of {len(work)} tasks completed"
            ) from exc
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    timeout: Optional[float] = None,
) -> List[R]:
    """Order-preserving map over independent items.

    ``fn`` must be a module-level (picklable) function.  Results are
    returned in input order regardless of completion order, so parallel
    runs reproduce serial output exactly.

    ``timeout`` (seconds, parallel path only) bounds the whole map.
    On expiry — or when a worker process dies mid-task — the pool is
    terminated and :class:`~repro.errors.ParallelError` is raised
    naming the first unfinished / crashed task index.
    """
    work = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1 or not fork_available():
        return [fn(item) for item in work]
    context = multiprocessing.get_context("fork")
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    try:
        if timeout is None:
            try:
                return list(pool.map(fn, work, chunksize=chunksize))
            except BrokenProcessPool as exc:
                _kill_pool(pool)
                raise ParallelError(
                    "parallel_map worker crashed (process killed or died "
                    "without returning); rerun with timeout= to identify "
                    "the offending task"
                ) from exc
        return _mapped_with_deadline(pool, fn, work, timeout)
    finally:
        # Normal completion: a regular shutdown (workers are idle).
        # Error paths already terminated the workers, so this returns
        # immediately instead of joining corpses.
        pool.shutdown(wait=False, cancel_futures=True)
