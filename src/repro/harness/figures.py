"""Per-figure data assembly: regenerates every table/figure in the paper.

Each ``figNN_*`` function computes the series the corresponding paper
figure plots, using a shared :class:`~repro.harness.experiment.Experiment`.
``render_*`` helpers print them as aligned text tables (the benchmark
suite writes these next to the raw numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import (
    InterferenceBreakdown,
    execution_profile_curve,
    merge_sequence_stats,
    sequence_lengths,
    union_footprint_in_lines,
)
from repro.cache import CacheGeometry, ICacheResult
from repro.harness.experiment import Experiment
from repro.pipeline import StreamHandoff, resilient_map
from repro.sim import MemoryHierarchy, simulate, simulate_grid
from repro.layout import PAPER_COMBOS
from repro.timing import (
    ALPHA_21164,
    ALPHA_21264,
    Platform,
    estimate_cycles,
    relative_execution_time,
)

#: Cache sizes (bytes) on the paper's sweep axes.
SWEEP_SIZES = tuple(kb * 1024 for kb in (32, 64, 128, 256, 512))
#: Line sizes (bytes) on the paper's sweep axes.
SWEEP_LINES = (16, 32, 64, 128, 256)
#: The detailed-metrics configuration (Figs 9-11, 13).
DETAIL_GEOMETRY = CacheGeometry(128 * 1024, 128, 4)


@dataclass
class Table:
    """A printable result table."""

    title: str
    columns: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The table as aligned plain text."""
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, ""]
        header = "  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def render_chart(self, value_column: int = 1, width: int = 40) -> str:
        """Render one numeric column as a horizontal ASCII bar chart.

        Rows with non-numeric values in the chosen column are skipped.
        """
        numeric = [
            (row[0], float(row[value_column]))
            for row in self.rows
            if isinstance(row[value_column], (int, float))
        ]
        if not numeric:
            return self.render()
        peak = max(value for _, value in numeric) or 1.0
        label_width = max(len(str(label)) for label, _ in numeric)
        lines = [self.title, ""]
        for label, value in numeric:
            bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
            lines.append(f"{str(label).rjust(label_width)} |{bar} {_fmt(value)}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# -- Figure 3 -----------------------------------------------------------------


def fig03_execution_profile(exp: Experiment) -> Table:
    """Cumulative fraction of executed instructions vs footprint."""
    footprint, cumulative = execution_profile_curve(exp.profile)
    rows = []
    for kb in (10, 25, 50, 75, 100, 125, 150, 175, 200, 250):
        idx = np.searchsorted(footprint, kb * 1024, side="right") - 1
        if idx < 0:
            continue
        captured = cumulative[min(idx, len(cumulative) - 1)]
        rows.append([kb, round(float(captured) * 100, 1)])
        if captured >= 1.0:
            break
    total_idx = min(
        int(np.searchsorted(cumulative, 1.0 - 1e-9)), len(footprint) - 1
    )
    total = int(footprint[total_idx])
    return Table(
        title="Figure 3: execution profile of the unoptimized binary",
        columns=["footprint_KB", "captured_%"],
        rows=rows,
        notes=[
            f"total dynamic footprint ~= {total // 1024} KB "
            f"(paper: ~260 KB total, 50 KB captures ~60%, 200 KB captures 99%)",
        ],
    )


# -- parallel fan-out ---------------------------------------------------------
#
# The sweep figures replay prepared streams through many independent
# cache geometries.  The Figure 4/5 direct-mapped grid goes through
# repro.sim.simulate_grid (batched single-pass engine, shared-memory
# stream buffers).  The LRU figures materialize streams in the parent
# and publish them through repro.pipeline's StreamHandoff; the
# fork-based pool in resilient_map lets workers inherit them without
# pickling multi-megabyte arrays, and retries the fan-out with backoff
# if a worker is killed.  Cells are pure functions of (geometry,
# streams), and the map preserves input order, so --jobs N output is
# bit-identical to serial.


def _lru_cell(cell: Tuple[str, int, int, int]) -> int:
    combo, size, line, assoc = cell
    return simulate(
        StreamHandoff.get(combo),
        MemoryHierarchy.l1i_only(CacheGeometry(size, line, assoc)),
    ).misses


def _jobs(exp: Experiment, jobs: Optional[int]) -> Optional[int]:
    return exp.jobs if jobs is None else jobs


# -- Figures 4 and 5 ----------------------------------------------------------


def fig04_cache_sweep(
    exp: Experiment,
    combo: str,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> Dict[Tuple[int, int], int]:
    """Direct-mapped miss counts over the size x line grid (app only).

    ``engine`` picks the sweep implementation: ``"batched"`` (default)
    evaluates the whole grid in one pass per stream chunk,
    ``"classic"`` runs the per-cell reference engine.  Both are
    bit-identical (CI cross-checks them).
    """
    with exp.runlog.stage("sweep", f"fig04:{combo}:{engine}"):
        return simulate_grid(
            exp.streams(combo, scope="app"),
            SWEEP_SIZES,
            SWEEP_LINES,
            jobs=_jobs(exp, jobs),
            engine=engine,
        )


def fig04_table(grid: Dict[Tuple[int, int], int], combo: str) -> Table:
    """One Figure 4 sweep grid as a printable size-by-line table."""
    rows = []
    for size in SWEEP_SIZES:
        rows.append(
            [size // 1024] + [grid[(size, line)] for line in SWEEP_LINES]
        )
    return Table(
        title=f"Figure 4 ({combo}): app-only I-cache misses, direct-mapped",
        columns=["size_KB"] + [f"{line}B" for line in SWEEP_LINES],
        rows=rows,
    )


def fig05_relative(base_grid, opt_grid) -> Table:
    """Optimized misses as a percentage of baseline (Figure 5)."""
    rows = []
    for size in SWEEP_SIZES:
        row = [size // 1024]
        for line in SWEEP_LINES:
            base = base_grid[(size, line)]
            row.append(round(100.0 * opt_grid[(size, line)] / max(1, base), 1))
        rows.append(row)
    return Table(
        title="Figure 5: optimized misses as % of baseline (app only, DM)",
        columns=["size_KB"] + [f"{line}B" for line in SWEEP_LINES],
        rows=rows,
        notes=["paper: ~35-45% at 64-128KB/128B (i.e. a 55-65% reduction)"],
    )


# -- Figure 6 -----------------------------------------------------------------


def fig06_associativity(exp: Experiment, jobs: Optional[int] = None) -> Table:
    """Miss rate vs associativity at fixed size/line (Figure 6)."""
    combos = ("base", "all")
    with exp.runlog.stage("sweep", "fig06"):
        handoff = StreamHandoff(
            {combo: list(exp.streams(combo, scope="app")) for combo in combos}
        )
        with handoff:
            cells = [
                (combo, size, 128, assoc)
                for size in SWEEP_SIZES
                for combo in combos
                for assoc in (1, 4)
            ]
            misses = dict(
                zip(cells, resilient_map(_lru_cell, cells, jobs=_jobs(exp, jobs)))
            )
    rows = []
    for size in SWEEP_SIZES:
        row = [size // 1024]
        for combo in combos:
            row.append(misses[(combo, size, 128, 1)])
            row.append(misses[(combo, size, 128, 4)])
        rows.append(row)
    return Table(
        title="Figure 6: impact of associativity (128B lines, app only)",
        columns=["size_KB", "base_DM", "base_4way", "opt_DM", "opt_4way"],
        rows=rows,
        notes=["paper: associativity gains are small next to layout gains"],
    )


# -- Figure 7 -----------------------------------------------------------------


def fig07_ablation(
    exp: Experiment,
    combos: Sequence[str] = PAPER_COMBOS,
    jobs: Optional[int] = None,
) -> Table:
    """Optimization-combination ablation at fixed geometry (Figure 7)."""
    with exp.runlog.stage("sweep", "fig07"):
        handoff = StreamHandoff(
            {combo: list(exp.streams(combo, scope="app")) for combo in combos}
        )
        with handoff:
            cells = [
                (combo, size, 128, 4)
                for combo in combos
                for size in SWEEP_SIZES
            ]
            misses = dict(
                zip(cells, resilient_map(_lru_cell, cells, jobs=_jobs(exp, jobs)))
            )
    rows = []
    for combo in combos:
        rows.append(
            [combo] + [misses[(combo, size, 128, 4)] for size in SWEEP_SIZES]
        )
    return Table(
        title="Figure 7: optimization ablation (128B lines, 4-way, app only)",
        columns=["combo"] + [f"{s // 1024}KB" for s in SWEEP_SIZES],
        rows=rows,
        notes=[
            "paper: porder alone slightly hurts; chaining gives the largest "
            "gain; ordering pays off again after fine-grain splitting",
        ],
    )


# -- Figure 8 -----------------------------------------------------------------


def fig08_sequences(exp: Experiment) -> Tuple[Table, Table]:
    """Sequential-run length and fetch-break tables (Figure 8)."""
    sizes = np.array(
        [b.size for b in exp.app.binary.blocks()], dtype=np.int64
    )
    blocks = np.concatenate(
        [cpu.blocks[cpu.blocks < exp.trace.kernel_offset] for cpu in exp.trace.cpus]
    )
    bb_size = float(sizes[blocks].mean())
    stats = {}
    for combo in ("base", "all"):
        stats[combo] = merge_sequence_stats(
            [sequence_lengths(s, c) for s, c in exp.streams(combo, scope="app")]
        )
    summary = Table(
        title="Figure 8a: average sequentially executed instructions",
        columns=["setup", "avg_length"],
        rows=[
            ["basic block size", round(bb_size, 2)],
            ["base", round(stats["base"].mean_length, 2)],
            ["optimized", round(stats["all"].mean_length, 2)],
        ],
        notes=["paper: 7.3 (base) -> 10+ (optimized)"],
    )
    hist_rows = []
    base_frac = stats["base"].fractions() * 100
    opt_frac = stats["all"].fractions() * 100
    for length in range(1, 34):
        hist_rows.append(
            [length, round(float(base_frac[length]), 2), round(float(opt_frac[length]), 2)]
        )
    histogram = Table(
        title="Figure 8b: sequence-length histogram (% of all sequences)",
        columns=["length", "base_%", "optimized_%"],
        rows=hist_rows,
        notes=["paper: base has 21% 1-instruction sequences; optimized 15%"],
    )
    return summary, histogram


# -- Figures 9, 10, 11, and the packing text numbers --------------------------


def detailed_results(exp: Experiment, combo: str) -> ICacheResult:
    """Detailed 128KB/128B/4-way simulation of CPU 0's app stream."""
    streams = exp.streams(combo, scope="app")
    return simulate(
        [streams[0]], MemoryHierarchy.l1i_only(DETAIL_GEOMETRY, detail=True)
    ).icache


def fig09_word_usage(base: ICacheResult, opt: ICacheResult) -> Table:
    """Fetched-word usage before/after optimization (Figure 9)."""
    rows = []
    base_frac = base.locality.unique_words_fractions() * 100
    opt_frac = opt.locality.unique_words_fractions() * 100
    for words in range(1, 33):
        rows.append([words, round(float(base_frac[words]), 2),
                     round(float(opt_frac[words]), 2)])
    return Table(
        title="Figure 9: unique words used per 128B line before replacement (%)",
        columns=["words", "base_%", "optimized_%"],
        rows=rows,
        notes=["paper: optimized uses the full line on >60% of replacements"],
    )


def fig10_word_reuse(base: ICacheResult, opt: ICacheResult) -> Table:
    """Cache-line word reuse distribution (Figure 10)."""
    rows = []
    base_frac = base.locality.word_reuse_fractions() * 100
    opt_frac = opt.locality.word_reuse_fractions() * 100
    for uses in range(0, 16):
        rows.append([uses, round(float(base_frac[uses]), 2),
                     round(float(opt_frac[uses]), 2)])
    return Table(
        title="Figure 10: times a word is used before replacement (% of words)",
        columns=["uses", "base_%", "optimized_%"],
        rows=rows,
        notes=[
            "paper: >50% of fetched words unused in base; far fewer optimized",
            f"measured unused fraction: base {base.locality.unused_fraction:.2f}, "
            f"optimized {opt.locality.unused_fraction:.2f} (paper: 0.46 vs 0.21)",
        ],
    )


def fig11_lifetimes(base: ICacheResult, opt: ICacheResult) -> Table:
    """Cache-line lifetime distribution (Figure 11)."""
    base_frac = base.locality.lifetime_fractions() * 100
    opt_frac = opt.locality.lifetime_fractions() * 100
    rows = []
    for bucket in range(4, 31):
        b, o = float(base_frac[bucket]), float(opt_frac[bucket])
        if b < 0.05 and o < 0.05:
            continue
        rows.append([bucket, round(b, 2), round(o, 2)])
    def mean_lifetime(result):
        fractions = result.locality.lifetime_fractions()
        return float(sum((2.0 ** i) * f for i, f in enumerate(fractions)))
    return Table(
        title="Figure 11: cache-line lifetimes, log2(cache accesses) buckets (%)",
        columns=["log2_lifetime", "base_%", "optimized_%"],
        rows=rows,
        notes=[
            f"mean lifetime: base ~2^{np.log2(max(1.0, mean_lifetime(base))):.1f}, "
            f"optimized ~2^{np.log2(max(1.0, mean_lifetime(opt))):.1f} accesses "
            "(paper: optimized is >2x base)",
        ],
    )


def text_packing(exp: Experiment) -> Table:
    """Static/dynamic footprint packing summary (text table)."""
    base_lines = union_footprint_in_lines(exp.streams("base", scope="app"), 128)
    opt_lines = union_footprint_in_lines(exp.streams("all", scope="app"), 128)
    return Table(
        title="Text 4.1: footprint in unique 128B cache lines",
        columns=["binary", "lines", "KB"],
        rows=[
            ["base", base_lines, base_lines * 128 // 1024],
            ["optimized", opt_lines, opt_lines * 128 // 1024],
            ["reduction_%", "-", round(100 * (1 - opt_lines / max(1, base_lines)), 1)],
        ],
        notes=["paper: 500KB -> 315KB (37% smaller)"],
    )


# -- Figure 12 ----------------------------------------------------------------


def fig12_combined(exp: Experiment, combo: str) -> Table:
    """App+kernel combined miss rates for one combo (Figure 12)."""
    rows = []
    for size in SWEEP_SIZES:
        hierarchy = MemoryHierarchy.l1i_only(CacheGeometry(size, 128, 4))
        combined = simulate(exp.streams(combo, scope="combined"), hierarchy).misses
        app_only = simulate(exp.streams(combo, scope="app"), hierarchy).misses
        kernel_only = simulate(exp.streams(scope="kernel"), hierarchy).misses
        rows.append([size // 1024, combined, app_only, kernel_only])
    return Table(
        title=f"Figure 12 ({combo}): combined app+OS I-cache misses (128B, 4-way)",
        columns=["size_KB", "combined", "app_isolated", "kernel_isolated"],
        rows=rows,
        notes=[
            "paper: kernel is small in isolation, but interference lifts the "
            "combined curve above the app-only curve",
        ],
    )


# -- Figure 13 ----------------------------------------------------------------


def fig13_interference(exp: Experiment, combo: str) -> Table:
    """App/kernel interference breakdown for one combo (Figure 13)."""
    result = simulate(
        exp.streams(combo, scope="combined"),
        MemoryHierarchy.l1i_only(DETAIL_GEOMETRY),
    ).icache
    breakdown = InterferenceBreakdown.from_matrix(result.interference)
    rows = []
    for missing in ("kernel", "application", "both"):
        row = breakdown.rows[missing]
        rows.append([missing, row["kernel"], row["application"]])
    return Table(
        title=f"Figure 13 ({combo}): who displaced the missing line "
        "(128KB/128B/4-way, combined stream)",
        columns=["missing_process", "kernel_owned_line", "app_owned_line"],
        rows=rows,
        notes=[
            "paper: application misses are mostly self-interference; kernel "
            "misses are mostly caused by the application",
            f"app self-interference fraction: "
            f"{breakdown.self_interference_fraction('application'):.2f}",
        ],
    )


# -- Figure 14 ----------------------------------------------------------------


def fig14_itlb_l2(exp: Experiment) -> Table:
    """iTLB and shared-L2 miss comparison (Figure 14)."""
    rows = []
    hierarchy = MemoryHierarchy(
        l1i=CacheGeometry(64 * 1024, 64, 2),
        l2=CacheGeometry(1536 * 1024, 64, 6),
        dcache=CacheGeometry(64 * 1024, 64, 2),
        itlb_entries=64,
    )
    data = list(zip(exp.trace.data_addresses, exp.trace.data_positions))
    for combo in ("base", "all"):
        result = simulate(
            exp.streams(combo, scope="combined"), hierarchy, data_streams=data
        )
        rows.append(
            [combo, result.itlb.misses, result.l2.misses_instr, result.l2.misses_data]
        )
    return Table(
        title="Figure 14: iTLB (64-entry) and shared L2 (1.5MB 6-way) misses",
        columns=["binary", "iTLB", "L2_instr", "L2_data"],
        rows=rows,
        notes=[
            "paper: optimized layout cuts iTLB and L2-instruction misses; "
            "L2 data misses barely move",
        ],
    )


# -- Figure 15 ----------------------------------------------------------------


def fig15_exec_time(
    exp: Experiment,
    combos: Sequence[str] = PAPER_COMBOS,
    platforms: Sequence[Platform] = (ALPHA_21264, ALPHA_21164),
) -> Table:
    """Estimated non-idle execution time per combo (Figure 15)."""
    data = list(zip(exp.trace.data_addresses, exp.trace.data_positions))
    rows = []
    rels = {}
    for platform in platforms:
        breakdowns = {
            combo: estimate_cycles(exp.streams(combo, scope="combined"), platform, data)
            for combo in combos
        }
        rels[platform.name] = relative_execution_time(breakdowns)
    for combo in combos:
        rows.append(
            [combo] + [round(rels[p.name][combo], 1) for p in platforms]
        )
    return Table(
        title="Figure 15: relative execution time (non-idle cycles, % of base)",
        columns=["combo"] + [p.name for p in platforms],
        rows=rows,
        notes=["paper: ~75% (1.33x speedup) for the full optimization"],
    )
