"""Shared experiment infrastructure.

One :class:`Experiment` owns everything the figures need: the generated
application and kernel binaries, the Pixie profile (collected on its own
profiling run, like the paper's 2000-transaction Pixie run), the
optimized layouts, and the measurement trace (a separate run with a
different request stream).  Every intermediate product is computed once
and cached in memory, so the per-figure benchmarks stay cheap.

Attach an :class:`~repro.harness.store.ArtifactStore` (``store=`` or
:meth:`Experiment.attach_store`) and the expensive stage products are
*also* persisted on disk, keyed by :meth:`ExperimentConfig.fingerprint`:
warm reruns of any figure load the compiled programs, profiles, trace,
and per-combo layouts straight from the cache instead of regenerating
them.  Every stage records wall time and cache hit/miss in the
experiment's :class:`~repro.harness.runlog.RunLog`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.deprecation import reset_deprecation_warnings  # noqa: F401  (re-export)
from repro.errors import ConfigError, RemovedAPIError, SimulationError
from repro.execution import CombinedAddressMap, OltpSystem, SystemConfig, SystemTrace
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF, RunLog
from repro.harness.store import (
    ArtifactStore,
    load_layout,
    load_profile,
    load_program,
    load_trace,
    save_layout,
    save_profile,
    save_program,
    save_trace,
)
from repro.ir import Layout, assign_addresses, baseline_layout
from repro.layout import Combo, SpikeOptimizer
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.profiles import PixieProfiler, Profile
from repro.progen import AppCodeConfig, CompiledProgram, build_app_program
from repro.staticpred import (
    PROFILE_SOURCES,
    hybrid_profile,
    invert_enabled,
    synthesize_profile,
)
from repro.workloads import TpcbConfig

#: Valid scopes for :meth:`Experiment.streams`.
STREAM_SCOPES = ("app", "kernel", "combined", "per-process")


def _check_source(source: str) -> str:
    """Validate a profile-source name; returns it for chaining."""
    if source not in PROFILE_SOURCES:
        raise ConfigError(
            f"unknown profile source {source!r}; valid sources: "
            f"{', '.join(PROFILE_SOURCES)}"
        )
    return source


def _verify_enabled() -> bool:
    """True when ``REPRO_VERIFY`` asks for layout integrity checks."""
    return os.environ.get("REPRO_VERIFY", "") not in ("", "0")

#: Bump when the canonical fingerprint payload changes shape.
_FINGERPRINT_VERSION = 1


@dataclass
class ExperimentConfig:
    """Everything that defines one reproduction run."""

    app: AppCodeConfig = field(default_factory=lambda: AppCodeConfig(scale=10.0))
    kernel: KernelCodeConfig = field(default_factory=lambda: KernelCodeConfig(scale=2.5))
    tpcb: TpcbConfig = field(default_factory=lambda: TpcbConfig(
        branches=40, accounts_per_branch=125))
    system: SystemConfig = field(default_factory=SystemConfig)
    profile_transactions: int = 150
    measure_transactions: int = 150
    warmup_transactions: int = 30
    pool_capacity: int = 2048
    btree_order: int = 64
    #: Optional factory (tpcb_config, seed_offset) -> workload object;
    #: defaults to TPC-B.  Lets the same pipeline run other workloads
    #: (e.g. the DSS comparison).  Callables don't fingerprint, so any
    #: config with a factory must also set :attr:`cache_salt`.
    workload_factory: Optional[Callable[[TpcbConfig, int], object]] = None
    #: Extra fingerprint salt.  Required when ``workload_factory`` is
    #: set: it is excluded from the fingerprint, and without a salt a
    #: DSS run would collide with the TPC-B cache entries.
    cache_salt: str = ""

    def fingerprint(self) -> str:
        """Stable content hash of everything that shapes the pipeline
        products (config -> canonical JSON -> sha256).

        ``workload_factory`` is deliberately excluded — callables have
        no stable serialized form — so configs that set it must provide
        ``cache_salt`` to keep their cache entries distinct.
        """
        if self.workload_factory is not None and not self.cache_salt:
            raise ConfigError(
                "ExperimentConfig.workload_factory is set but cache_salt "
                "is empty; set cache_salt (e.g. 'dss') so this config's "
                "cache entries don't collide with the default workload's"
            )
        payload = {
            "version": _FINGERPRINT_VERSION,
            "app": asdict(self.app),
            "kernel": asdict(self.kernel),
            "tpcb": asdict(self.tpcb),
            "system": asdict(self.system),
            "profile_transactions": self.profile_transactions,
            "measure_transactions": self.measure_transactions,
            "warmup_transactions": self.warmup_transactions,
            "pool_capacity": self.pool_capacity,
            "btree_order": self.btree_order,
            "cache_salt": self.cache_salt,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class StreamSet:
    """Fetch-span streams for one (scope, combo, kernel_combo) cell.

    Behaves like the historical list of per-CPU ``(starts, counts)``
    pairs (iteration, indexing, ``len``) so it drops into every cache
    simulator unchanged, while keeping the provenance on the object.
    """

    scope: str
    combo: str
    kernel_combo: str
    streams: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    #: The profile source the layouts were optimized from.
    profile_source: str = "measured"

    def __iter__(self):
        return iter(self.streams)

    def __len__(self) -> int:
        return len(self.streams)

    def __getitem__(self, index):
        return self.streams[index]

    @property
    def instructions(self) -> int:
        """Total instructions fetched across all streams."""
        return int(sum(int(counts.sum()) for _, counts in self.streams))


class Experiment:
    """Lazily computed pipeline with caching at every stage."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        store: Optional[ArtifactStore] = None,
        jobs: int = 1,
    ) -> None:
        self.config = config or ExperimentConfig()
        #: Disk cache for stage products (None disables persistence).
        self.store = store
        #: Worker processes used by the fanned-out figure sweeps.
        self.jobs = jobs
        #: Default profile source (:data:`~repro.staticpred.PROFILE_SOURCES`)
        #: used by :meth:`streams` / :meth:`address_map` when the call
        #: does not pick one -- the knob behind ``--profile-source``.
        self.profile_source = "measured"
        self.runlog = RunLog()
        self._fingerprint: Optional[str] = None
        self._app: Optional[CompiledProgram] = None
        self._kernel: Optional[CompiledProgram] = None
        self._profile: Optional[Profile] = None
        self._kernel_profile: Optional[Profile] = None
        self._optimizer: Optional[SpikeOptimizer] = None
        self._kernel_optimizer: Optional[SpikeOptimizer] = None
        self._layouts: Dict[str, Layout] = {}
        self._kernel_layouts: Dict[str, Layout] = {}
        self._static_profiles: Dict[bool, Profile] = {}
        self._source_optimizers: Dict[Tuple[str, bool], SpikeOptimizer] = {}
        self._source_layouts: Dict[Tuple[str, str], Layout] = {}
        self._kernel_source_layouts: Dict[Tuple[str, str], Layout] = {}
        self._amaps: Dict[Tuple[str, str, str], CombinedAddressMap] = {}
        self._trace: Optional[SystemTrace] = None

    # -- cache plumbing -----------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content hash of the configuration (see ExperimentConfig)."""
        if self._fingerprint is None:
            self._fingerprint = self.config.fingerprint()
        return self._fingerprint

    def attach_store(self, store: Optional[ArtifactStore]) -> "Experiment":
        """Set (or clear, with None) the persistent artifact store.

        Products already computed in memory are written through to the
        new store, so attaching late still populates the cache."""
        self.store = store
        self.persist()
        return self

    def persist(self) -> int:
        """Write in-memory stage products missing from the store;
        returns the number of artifacts written."""
        if self.store is None:
            return 0
        artifacts = [
            ("app.pkl", self._app, save_program),
            ("kernel.pkl", self._kernel, save_program),
            ("profile-app.npz", self._profile, save_profile),
            ("profile-kernel.npz", self._kernel_profile, save_profile),
            ("trace.npz", self._trace, save_trace),
        ]
        artifacts += [
            (f"layout-{combo}.json", layout, save_layout)
            for combo, layout in self._layouts.items()
        ]
        artifacts += [
            (f"klayout-{combo}.json", layout, save_layout)
            for combo, layout in self._kernel_layouts.items()
            if combo != "base"  # baseline is trivial to rebuild
        ]
        if not invert_enabled():  # fault-injected layouts never persist
            artifacts += [
                (f"layout-{source}-{combo}.json", layout, save_layout)
                for (source, combo), layout in self._source_layouts.items()
            ]
            artifacts += [
                (f"klayout-{source}-{combo}.json", layout, save_layout)
                for (source, combo), layout
                in self._kernel_source_layouts.items()
            ]
        written = 0
        for name, obj, saver in artifacts:
            if obj is not None and not self.store.has(self.fingerprint, name):
                if self._store_save(name, obj, saver):
                    written += 1
        return written

    def _store_load(self, name: str, loader):
        """Load one artifact; any failure (missing, corrupt, stale)
        degrades to a miss so the stage recomputes."""
        if self.store is None:
            return None
        return self.store.load(self.fingerprint, name, loader)

    def _store_save(self, name: str, obj, saver) -> int:
        """Persist one artifact; returns bytes written (0 when off)."""
        if self.store is None:
            return 0
        return self.store.save(self.fingerprint, name, obj, saver)

    def _staged(self, stage: str, detail: str, name: str, loader, builder, saver):
        """Run one cacheable stage: disk load, else build + persist."""
        with self.runlog.stage(stage, detail) as record:
            obj = self._store_load(name, loader)
            if obj is not None:
                record.cache = CACHE_HIT
                return obj
            obj = builder()
            record.cache = CACHE_OFF if self.store is None else CACHE_MISS
            record.bytes = self._store_save(name, obj, saver)
            return obj

    # -- programs -----------------------------------------------------------

    @property
    def app(self) -> CompiledProgram:
        """The compiled application binary (cached stage product)."""
        if self._app is None:
            self._app = self._staged(
                "codegen", "app", "app.pkl",
                loader=load_program,
                builder=lambda: build_app_program(self.config.app),
                saver=save_program,
            )
        return self._app

    @property
    def kernel(self) -> CompiledProgram:
        """The compiled kernel binary (cached stage product)."""
        if self._kernel is None:
            self._kernel = self._staged(
                "codegen", "kernel", "kernel.pkl",
                loader=load_program,
                builder=lambda: build_kernel_program(self.config.kernel),
                saver=save_program,
            )
        return self._kernel

    # -- profiling run ----------------------------------------------------------

    def _run_system(self, transactions: int, tpcb_seed_offset: int) -> SystemTrace:
        tpcb = replace(self.config.tpcb, seed=self.config.tpcb.seed + tpcb_seed_offset)
        workload = None
        if self.config.workload_factory is not None:
            workload = self.config.workload_factory(tpcb, tpcb_seed_offset)
        system = OltpSystem(
            self.app,
            self.kernel,
            tpcb_config=tpcb,
            system_config=self.config.system,
            pool_capacity=self.config.pool_capacity,
            btree_order=self.config.btree_order,
            workload=workload,
        )
        return system.run(transactions, warmup=self.config.warmup_transactions)

    def _profile_from_run(self) -> Tuple[Profile, Profile]:
        """The profiling run: app profile + kernel profile (the paper
        used kprofile during the transaction-processing section)."""
        trace = self._run_system(self.config.profile_transactions, 0)
        profiler = PixieProfiler(self.app.binary)
        for stream in trace.per_process_app_streams():
            profiler.add_stream(stream)
        kernel_profiler = PixieProfiler(self.kernel.binary)
        offset = trace.kernel_offset
        for cpu in trace.cpus:
            kernel_blocks = cpu.blocks[cpu.blocks >= offset] - offset
            kernel_profiler.add_stream(kernel_blocks)
        return profiler.profile(), kernel_profiler.profile()

    @property
    def profile(self) -> Profile:
        """Pixie profile of the application (profiling run)."""
        if self._profile is None:
            with self.runlog.stage("profile") as record:
                app_profile = self._store_load(
                    "profile-app.npz",
                    lambda path: load_profile(self.app.binary, path),
                )
                kernel_profile = self._store_load(
                    "profile-kernel.npz",
                    lambda path: load_profile(self.kernel.binary, path),
                )
                if app_profile is not None and kernel_profile is not None:
                    record.cache = CACHE_HIT
                else:
                    app_profile, kernel_profile = self._profile_from_run()
                    record.cache = CACHE_OFF if self.store is None else CACHE_MISS
                    record.bytes = self._store_save(
                        "profile-app.npz", app_profile, save_profile
                    ) + self._store_save(
                        "profile-kernel.npz", kernel_profile, save_profile
                    )
                self._profile = app_profile
                self._kernel_profile = kernel_profile
        return self._profile

    @property
    def kernel_profile(self) -> Profile:
        """The kernel-side Pixie profile from the profiling run."""
        _ = self.profile  # ensures the profiling run happened
        return self._kernel_profile

    # -- layouts ---------------------------------------------------------------------

    @property
    def optimizer(self) -> SpikeOptimizer:
        """The app Spike optimizer over the profiling run's profile.

        Set ``REPRO_VERIFY=1`` in the environment to run every layout
        through the ``repro.check`` integrity passes as it is built.
        """
        if self._optimizer is None:
            self._optimizer = SpikeOptimizer(
                self.app.binary, self.profile, verify=_verify_enabled()
            )
        return self._optimizer

    @property
    def kernel_optimizer(self) -> SpikeOptimizer:
        """The kernel Spike optimizer over the kernel profile."""
        if self._kernel_optimizer is None:
            self._kernel_optimizer = SpikeOptimizer(
                self.kernel.binary, self.kernel_profile, verify=_verify_enabled()
            )
        return self._kernel_optimizer

    def layout(self, combo: str) -> Layout:
        """The application layout for one combination.  Unknown combo
        names raise LayoutError listing the valid ones."""
        combo = Combo.parse(combo).value
        if combo not in self._layouts:
            self._layouts[combo] = self._staged(
                "layout", combo, f"layout-{combo}.json",
                loader=lambda path: load_layout(path, self.app.binary),
                builder=lambda: self.optimizer.layout(combo),
                saver=save_layout,
            )
        return self._layouts[combo]

    def kernel_layout(self, combo: str) -> Layout:
        """The kernel layout for ``combo`` (cached per combo)."""
        combo = Combo.parse(combo).value
        if combo not in self._kernel_layouts:
            if combo == "base":
                self._kernel_layouts[combo] = baseline_layout(self.kernel.binary)
            else:
                self._kernel_layouts[combo] = self._staged(
                    "layout", f"kernel:{combo}", f"klayout-{combo}.json",
                    loader=lambda path: load_layout(path, self.kernel.binary),
                    builder=lambda: self.kernel_optimizer.layout(combo),
                    saver=save_layout,
                )
        return self._kernel_layouts[combo]

    # -- profile sources -------------------------------------------------------------

    def static_profile(self, *, kernel: bool = False) -> Profile:
        """The synthesized (profile-free) static profile of the app or
        kernel binary.  Deterministic per binary, so it is computed in
        memory on demand and never persisted -- and, crucially, it
        needs no profiling run: cold-start consumers (``repro serve``)
        reach it without ever touching :attr:`profile`.
        """
        if kernel not in self._static_profiles:
            program = self.kernel if kernel else self.app
            detail = "kernel" if kernel else "app"
            with self.runlog.stage("staticpred", detail):
                self._static_profiles[kernel] = synthesize_profile(
                    program.binary
                )
        return self._static_profiles[kernel]

    def profile_for(self, source: str, *, kernel: bool = False) -> Profile:
        """The profile one source names: ``measured`` (the profiling
        run), ``static`` (synthesized from CFG structure alone), or
        ``hybrid`` (measurement blended with the static prior)."""
        _check_source(source)
        if source == "static":
            return self.static_profile(kernel=kernel)
        measured = self.kernel_profile if kernel else self.profile
        if source == "measured":
            return measured
        return hybrid_profile(measured, self.static_profile(kernel=kernel))

    def optimizer_for(
        self, source: str, *, kernel: bool = False
    ) -> SpikeOptimizer:
        """A Spike optimizer over one profile source (cached)."""
        _check_source(source)
        if source == "measured":
            return self.kernel_optimizer if kernel else self.optimizer
        key = (source, kernel)
        if key not in self._source_optimizers:
            program = self.kernel if kernel else self.app
            self._source_optimizers[key] = SpikeOptimizer(
                program.binary,
                self.profile_for(source, kernel=kernel),
                verify=_verify_enabled(),
            )
        return self._source_optimizers[key]

    def layout_for(self, combo: str, source: str = "measured") -> Layout:
        """The application layout for one combo under one profile
        source.  ``measured`` shares :meth:`layout`'s cache entries;
        the other sources persist as ``layout-<source>-<combo>.json``.
        Fault-injected predictions (``REPRO_STATIC_INVERT``) bypass
        the store entirely so they can never pollute -- or be
        satisfied from -- the clean cache.
        """
        combo = Combo.parse(combo).value
        _check_source(source)
        if source == "measured":
            return self.layout(combo)
        key = (source, combo)
        if key not in self._source_layouts:
            if invert_enabled():
                self._source_layouts[key] = (
                    self.optimizer_for(source).layout(combo)
                )
            else:
                self._source_layouts[key] = self._staged(
                    "layout", f"{source}:{combo}",
                    f"layout-{source}-{combo}.json",
                    loader=lambda path: load_layout(path, self.app.binary),
                    builder=lambda: self.optimizer_for(source).layout(combo),
                    saver=save_layout,
                )
        return self._source_layouts[key]

    def kernel_layout_for(self, combo: str, source: str = "measured") -> Layout:
        """The kernel layout for one combo under one profile source."""
        combo = Combo.parse(combo).value
        _check_source(source)
        if source == "measured" or combo == "base":
            return self.kernel_layout(combo)
        key = (source, combo)
        if key not in self._kernel_source_layouts:
            if invert_enabled():
                self._kernel_source_layouts[key] = (
                    self.optimizer_for(source, kernel=True).layout(combo)
                )
            else:
                self._kernel_source_layouts[key] = self._staged(
                    "layout", f"kernel:{source}:{combo}",
                    f"klayout-{source}-{combo}.json",
                    loader=lambda path: load_layout(
                        path, self.kernel.binary
                    ),
                    builder=lambda: self.optimizer_for(
                        source, kernel=True
                    ).layout(combo),
                    saver=save_layout,
                )
        return self._kernel_source_layouts[key]

    def address_map(
        self,
        combo: str,
        kernel_combo: str = "base",
        profile_source: Optional[str] = None,
    ) -> CombinedAddressMap:
        """The combined app+kernel address map for a combo pair.

        ``profile_source`` defaults to the experiment-wide
        :attr:`profile_source` when not given.
        """
        key = (
            Combo.parse(combo).value,
            Combo.parse(kernel_combo).value,
            _check_source(profile_source or self.profile_source),
        )
        if key not in self._amaps:
            app_map = assign_addresses(
                self.app.binary, self.layout_for(key[0], key[2])
            )
            kernel_map = assign_addresses(
                self.kernel.binary, self.kernel_layout_for(key[1], key[2])
            )
            self._amaps[key] = CombinedAddressMap(app_map, kernel_map)
        return self._amaps[key]

    # -- measurement trace ----------------------------------------------------------

    @property
    def trace(self) -> SystemTrace:
        """The measurement run (distinct request stream from profiling)."""
        if self._trace is None:
            self._trace = self._staged(
                "trace", "", "trace.npz",
                loader=load_trace,
                builder=lambda: self._run_system(
                    self.config.measure_transactions, 1
                ),
                saver=save_trace,
            )
        return self._trace

    # -- streams for the cache simulators ----------------------------------------------

    def streams(
        self,
        combo: str = "base",
        *,
        scope: str,
        kernel_combo: str = "base",
        profile_source: Optional[str] = None,
    ) -> StreamSet:
        """Fetch-span streams for the cache simulators.

        ``scope`` selects the address-space slice:

        * ``"app"``         -- per-CPU application-only streams.
        * ``"kernel"``      -- per-CPU kernel-only streams (laid out
          with ``kernel_combo``).
        * ``"combined"``    -- per-CPU app+OS streams.
        * ``"per-process"`` -- per-process app-only streams
          (single-CPU style studies).

        ``profile_source`` picks the profile the layouts were
        optimized from (the measurement *trace* is always the real
        one -- the axis varies what the optimizer knew, not what the
        system did); None falls back to the experiment-wide
        :attr:`profile_source`.
        """
        combo = Combo.parse(combo).value
        kernel_combo = Combo.parse(kernel_combo).value
        profile_source = _check_source(profile_source or self.profile_source)
        if scope not in STREAM_SCOPES:
            raise SimulationError(
                f"unknown stream scope {scope!r}; "
                f"valid scopes: {', '.join(STREAM_SCOPES)}"
            )
        amap = self.address_map(combo, kernel_combo, profile_source)
        if scope == "app":
            spans = [
                amap.expand_spans(
                    cpu.blocks[cpu.blocks < self.trace.kernel_offset]
                )
                for cpu in self.trace.cpus
            ]
        elif scope == "kernel":
            spans = [
                amap.expand_spans(
                    cpu.blocks[cpu.blocks >= self.trace.kernel_offset]
                )
                for cpu in self.trace.cpus
            ]
        elif scope == "combined":
            spans = [amap.expand_spans(cpu.blocks) for cpu in self.trace.cpus]
        else:  # per-process
            spans = [
                amap.expand_spans(blocks)
                for blocks in self.trace.per_process_app_streams()
            ]
        return StreamSet(
            scope=scope, combo=combo, kernel_combo=kernel_combo,
            streams=tuple(spans), profile_source=profile_source,
        )

    # -- removed stream accessors ---------------------------------------------------
    #
    # The ``*_streams`` wrappers were deprecated (warning) for one
    # release; the in-repo DEP001 scan is clean, so they now raise with
    # the migration hint.  ``repro lint`` still flags external callers.

    def _removed(self, old: str, new: str) -> None:
        raise RemovedAPIError(
            f"Experiment.{old}() was removed; use Experiment.{new} instead"
        )

    def app_streams(self, combo: str) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Removed: use ``streams(combo, scope="app")``."""
        self._removed("app_streams", f'streams({combo!r}, scope="app")')

    def kernel_streams(self, kernel_combo: str = "base") -> List[Tuple[np.ndarray, np.ndarray]]:
        """Removed: use ``streams(scope="kernel", kernel_combo=...)``."""
        self._removed(
            "kernel_streams", f'streams(scope="kernel", kernel_combo={kernel_combo!r})'
        )

    def combined_streams(
        self, combo: str, kernel_combo: str = "base"
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Removed: use ``streams(combo, scope="combined")``."""
        self._removed("combined_streams", f'streams({combo!r}, scope="combined")')

    def per_process_streams(self, combo: str):
        """Removed: use ``streams(combo, scope="per-process")``."""
        self._removed(
            "per_process_streams", f'streams({combo!r}, scope="per-process")'
        )


@lru_cache(maxsize=1)
def default_experiment() -> Experiment:
    """The shared experiment instance used by the benchmark suite."""
    return Experiment()


@lru_cache(maxsize=1)
def uniprocessor_experiment() -> Experiment:
    """A single-CPU experiment (the paper's Figure 15 runs are
    1-processor); shares the default code-generation config."""
    config = ExperimentConfig(
        system=SystemConfig(cpus=1, processes_per_cpu=8),
        profile_transactions=100,
        measure_transactions=100,
        warmup_transactions=20,
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def dss_experiment() -> Experiment:
    """The DSS comparison experiment: the same generated binaries and
    database, driven by read-only aggregation queries."""
    from repro.workloads.dss import DssConfig, DssWorkload

    config = ExperimentConfig(
        profile_transactions=48,
        measure_transactions=48,
        warmup_transactions=8,
        workload_factory=lambda tpcb, _offset: DssWorkload(
            DssConfig(tpcb=tpcb)
        ),
        cache_salt="dss",
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def quick_experiment() -> Experiment:
    """A small, fast experiment for tests and smoke runs."""
    config = ExperimentConfig(
        app=AppCodeConfig(scale=1.0, filler_routines=120, filler_instructions=60_000),
        kernel=KernelCodeConfig(scale=1.0, filler_routines=20, filler_instructions=8_000),
        tpcb=TpcbConfig(branches=8, accounts_per_branch=100),
        profile_transactions=60,
        measure_transactions=60,
        warmup_transactions=10,
        pool_capacity=1024,
    )
    return Experiment(config)
