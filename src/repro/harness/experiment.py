"""Shared experiment infrastructure.

One :class:`Experiment` owns everything the figures need: the generated
application and kernel binaries, the Pixie profile (collected on its own
profiling run, like the paper's 2000-transaction Pixie run), the
optimized layouts, and the measurement trace (a separate run with a
different request stream).  Every intermediate product is computed once
and cached, so the per-figure benchmarks stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.execution import CombinedAddressMap, OltpSystem, SystemConfig, SystemTrace
from repro.ir import Layout, assign_addresses, baseline_layout
from repro.layout import SpikeOptimizer
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.profiles import PixieProfiler, Profile
from repro.progen import AppCodeConfig, CompiledProgram, build_app_program
from repro.workloads import TpcbConfig


@dataclass
class ExperimentConfig:
    """Everything that defines one reproduction run."""

    app: AppCodeConfig = field(default_factory=lambda: AppCodeConfig(scale=10.0))
    kernel: KernelCodeConfig = field(default_factory=lambda: KernelCodeConfig(scale=2.5))
    tpcb: TpcbConfig = field(default_factory=lambda: TpcbConfig(
        branches=40, accounts_per_branch=125))
    system: SystemConfig = field(default_factory=SystemConfig)
    profile_transactions: int = 150
    measure_transactions: int = 150
    warmup_transactions: int = 30
    pool_capacity: int = 2048
    btree_order: int = 64
    #: Optional factory (tpcb_config, seed_offset) -> workload object;
    #: defaults to TPC-B.  Lets the same pipeline run other workloads
    #: (e.g. the DSS comparison).
    workload_factory: Optional[object] = None


class Experiment:
    """Lazily computed pipeline with caching at every stage."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._app: Optional[CompiledProgram] = None
        self._kernel: Optional[CompiledProgram] = None
        self._profile: Optional[Profile] = None
        self._kernel_profile: Optional[Profile] = None
        self._optimizer: Optional[SpikeOptimizer] = None
        self._kernel_optimizer: Optional[SpikeOptimizer] = None
        self._layouts: Dict[str, Layout] = {}
        self._kernel_layouts: Dict[str, Layout] = {}
        self._amaps: Dict[Tuple[str, str], CombinedAddressMap] = {}
        self._trace: Optional[SystemTrace] = None

    # -- programs -----------------------------------------------------------

    @property
    def app(self) -> CompiledProgram:
        if self._app is None:
            self._app = build_app_program(self.config.app)
        return self._app

    @property
    def kernel(self) -> CompiledProgram:
        if self._kernel is None:
            self._kernel = build_kernel_program(self.config.kernel)
        return self._kernel

    # -- profiling run ----------------------------------------------------------

    def _run_system(self, transactions: int, tpcb_seed_offset: int) -> SystemTrace:
        tpcb = replace(self.config.tpcb, seed=self.config.tpcb.seed + tpcb_seed_offset)
        workload = None
        if self.config.workload_factory is not None:
            workload = self.config.workload_factory(tpcb, tpcb_seed_offset)
        system = OltpSystem(
            self.app,
            self.kernel,
            tpcb_config=tpcb,
            system_config=self.config.system,
            pool_capacity=self.config.pool_capacity,
            btree_order=self.config.btree_order,
            workload=workload,
        )
        return system.run(transactions, warmup=self.config.warmup_transactions)

    @property
    def profile(self) -> Profile:
        """Pixie profile of the application (profiling run)."""
        if self._profile is None:
            trace = self._run_system(self.config.profile_transactions, 0)
            profiler = PixieProfiler(self.app.binary)
            for stream in trace.per_process_app_streams():
                profiler.add_stream(stream)
            self._profile = profiler.profile()
            # Kernel profile from the same run (the paper used kprofile
            # during the transaction-processing section).
            kernel_profiler = PixieProfiler(self.kernel.binary)
            offset = trace.kernel_offset
            for cpu in trace.cpus:
                kernel_blocks = cpu.blocks[cpu.blocks >= offset] - offset
                kernel_profiler.add_stream(kernel_blocks)
            self._kernel_profile = kernel_profiler.profile()
        return self._profile

    @property
    def kernel_profile(self) -> Profile:
        _ = self.profile  # ensures the profiling run happened
        return self._kernel_profile

    # -- layouts ---------------------------------------------------------------------

    @property
    def optimizer(self) -> SpikeOptimizer:
        if self._optimizer is None:
            self._optimizer = SpikeOptimizer(self.app.binary, self.profile)
        return self._optimizer

    @property
    def kernel_optimizer(self) -> SpikeOptimizer:
        if self._kernel_optimizer is None:
            self._kernel_optimizer = SpikeOptimizer(
                self.kernel.binary, self.kernel_profile
            )
        return self._kernel_optimizer

    def layout(self, combo: str) -> Layout:
        if combo not in self._layouts:
            self._layouts[combo] = self.optimizer.layout(combo)
        return self._layouts[combo]

    def kernel_layout(self, combo: str) -> Layout:
        if combo not in self._kernel_layouts:
            if combo == "base":
                self._kernel_layouts[combo] = baseline_layout(self.kernel.binary)
            else:
                self._kernel_layouts[combo] = self.kernel_optimizer.layout(combo)
        return self._kernel_layouts[combo]

    def address_map(self, combo: str, kernel_combo: str = "base") -> CombinedAddressMap:
        key = (combo, kernel_combo)
        if key not in self._amaps:
            app_map = assign_addresses(self.app.binary, self.layout(combo))
            kernel_map = assign_addresses(
                self.kernel.binary, self.kernel_layout(kernel_combo)
            )
            self._amaps[key] = CombinedAddressMap(app_map, kernel_map)
        return self._amaps[key]

    # -- measurement trace ----------------------------------------------------------

    @property
    def trace(self) -> SystemTrace:
        """The measurement run (distinct request stream from profiling)."""
        if self._trace is None:
            self._trace = self._run_system(self.config.measure_transactions, 1)
        return self._trace

    # -- streams for the cache simulators ----------------------------------------------

    def app_streams(self, combo: str) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-CPU (starts, counts) for the application in isolation."""
        amap = self.address_map(combo)
        streams = []
        for cpu in self.trace.cpus:
            blocks = cpu.blocks[cpu.blocks < self.trace.kernel_offset]
            streams.append(amap.expand_spans(blocks))
        return streams

    def kernel_streams(self, kernel_combo: str = "base") -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-CPU (starts, counts) for the kernel in isolation."""
        amap = self.address_map("base", kernel_combo)
        streams = []
        for cpu in self.trace.cpus:
            blocks = cpu.blocks[cpu.blocks >= self.trace.kernel_offset]
            streams.append(amap.expand_spans(blocks))
        return streams

    def combined_streams(
        self, combo: str, kernel_combo: str = "base"
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-CPU (starts, counts) for the combined app+OS stream."""
        amap = self.address_map(combo, kernel_combo)
        return [amap.expand_spans(cpu.blocks) for cpu in self.trace.cpus]

    def per_process_streams(self, combo: str):
        """Per-process app-only spans (single-CPU style studies)."""
        amap = self.address_map(combo)
        return [
            amap.expand_spans(blocks)
            for blocks in self.trace.per_process_app_streams()
        ]


@lru_cache(maxsize=1)
def default_experiment() -> Experiment:
    """The shared experiment instance used by the benchmark suite."""
    return Experiment()


@lru_cache(maxsize=1)
def uniprocessor_experiment() -> Experiment:
    """A single-CPU experiment (the paper's Figure 15 runs are
    1-processor); shares the default code-generation config."""
    config = ExperimentConfig(
        system=SystemConfig(cpus=1, processes_per_cpu=8),
        profile_transactions=100,
        measure_transactions=100,
        warmup_transactions=20,
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def dss_experiment() -> Experiment:
    """The DSS comparison experiment: the same generated binaries and
    database, driven by read-only aggregation queries."""
    from repro.workloads.dss import DssConfig, DssWorkload

    config = ExperimentConfig(
        profile_transactions=48,
        measure_transactions=48,
        warmup_transactions=8,
        workload_factory=lambda tpcb, _offset: DssWorkload(
            DssConfig(tpcb=tpcb)
        ),
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def quick_experiment() -> Experiment:
    """A small, fast experiment for tests and smoke runs."""
    config = ExperimentConfig(
        app=AppCodeConfig(scale=1.0, filler_routines=120, filler_instructions=60_000),
        kernel=KernelCodeConfig(scale=1.0, filler_routines=20, filler_instructions=8_000),
        tpcb=TpcbConfig(branches=8, accounts_per_branch=100),
        profile_transactions=60,
        measure_transactions=60,
        warmup_transactions=10,
        pool_capacity=1024,
    )
    return Experiment(config)
