"""Shared experiment infrastructure.

One :class:`Experiment` owns everything the figures need: the generated
application and kernel binaries, the Pixie profile (collected on its own
profiling run, like the paper's 2000-transaction Pixie run), the
optimized layouts, and the measurement trace (a separate run with a
different request stream).  Every intermediate product is a declared
:class:`~repro.pipeline.stage.Stage` in one
:class:`~repro.pipeline.graph.StageGraph`, executed (and memoized) by a
:class:`~repro.pipeline.runner.PipelineRunner` — see ``docs/PIPELINE.md``.

Attach an :class:`~repro.harness.store.ArtifactStore` (``store=`` or
:meth:`Experiment.attach_store`) and the expensive stage products are
*also* persisted on disk, keyed by :meth:`ExperimentConfig.fingerprint`:
warm reruns of any figure load the compiled programs, profiles, trace,
and per-combo layouts straight from the cache instead of regenerating
them.  The artifact names and cache keys are unchanged from the
pre-pipeline harness, so existing cache directories replay warm.  Every
stage records wall time and cache hit/miss in the experiment's
:class:`~repro.harness.runlog.RunLog`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.deprecation import (  # noqa: F401  (reset re-exported for tests)
    reset_deprecation_warnings,
    warn_once,
)
from repro.errors import ConfigError, SimulationError
from repro.execution import CombinedAddressMap, OltpSystem, SystemConfig, SystemTrace
from repro.harness.runlog import RunLog
from repro.harness.store import (
    ArtifactStore,
    load_layout,
    load_profile,
    load_program,
    load_trace,
    save_layout,
    save_profile,
    save_program,
    save_trace,
)
from repro.ir import Layout, assign_addresses, baseline_layout
from repro.layout import Combo, SpikeOptimizer
from repro.osmodel import KernelCodeConfig, build_kernel_program
from repro.pipeline import ArtifactSpec, PipelineRunner, Stage, StageGraph
from repro.profiles import PixieProfiler, Profile
from repro.progen import AppCodeConfig, CompiledProgram, build_app_program
from repro.staticpred import (
    PROFILE_SOURCES,
    hybrid_profile,
    invert_enabled,
    synthesize_profile,
)
from repro.workloads import TpcbConfig

#: Valid scopes for :meth:`Experiment.streams`.
STREAM_SCOPES = ("app", "kernel", "combined", "per-process")


def _check_source(source: str) -> str:
    """Validate a profile-source name; returns it for chaining."""
    if source not in PROFILE_SOURCES:
        raise ConfigError(
            f"unknown profile source {source!r}; valid sources: "
            f"{', '.join(PROFILE_SOURCES)}"
        )
    return source


def _verify_enabled() -> bool:
    """True when ``REPRO_VERIFY`` asks for layout integrity checks."""
    return os.environ.get("REPRO_VERIFY", "") not in ("", "0")

#: Bump when the canonical fingerprint payload changes shape.
_FINGERPRINT_VERSION = 1


@dataclass
class ExperimentConfig:
    """Everything that defines one reproduction run."""

    app: AppCodeConfig = field(default_factory=lambda: AppCodeConfig(scale=10.0))
    kernel: KernelCodeConfig = field(default_factory=lambda: KernelCodeConfig(scale=2.5))
    tpcb: TpcbConfig = field(default_factory=lambda: TpcbConfig(
        branches=40, accounts_per_branch=125))
    system: SystemConfig = field(default_factory=SystemConfig)
    profile_transactions: int = 150
    measure_transactions: int = 150
    warmup_transactions: int = 30
    pool_capacity: int = 2048
    btree_order: int = 64
    #: Optional factory (tpcb_config, seed_offset) -> workload object;
    #: defaults to TPC-B.  Lets the same pipeline run other workloads
    #: (e.g. the DSS comparison).  Callables don't fingerprint, so any
    #: config with a factory must also set :attr:`cache_salt`.
    workload_factory: Optional[Callable[[TpcbConfig, int], object]] = None
    #: Extra fingerprint salt.  Required when ``workload_factory`` is
    #: set: it is excluded from the fingerprint, and without a salt a
    #: DSS run would collide with the TPC-B cache entries.
    cache_salt: str = ""

    def fingerprint(self) -> str:
        """Stable content hash of everything that shapes the pipeline
        products (config -> canonical JSON -> sha256).

        ``workload_factory`` is deliberately excluded — callables have
        no stable serialized form — so configs that set it must provide
        ``cache_salt`` to keep their cache entries distinct.
        """
        if self.workload_factory is not None and not self.cache_salt:
            raise ConfigError(
                "ExperimentConfig.workload_factory is set but cache_salt "
                "is empty; set cache_salt (e.g. 'dss') so this config's "
                "cache entries don't collide with the default workload's"
            )
        payload = {
            "version": _FINGERPRINT_VERSION,
            "app": asdict(self.app),
            "kernel": asdict(self.kernel),
            "tpcb": asdict(self.tpcb),
            "system": asdict(self.system),
            "profile_transactions": self.profile_transactions,
            "measure_transactions": self.measure_transactions,
            "warmup_transactions": self.warmup_transactions,
            "pool_capacity": self.pool_capacity,
            "btree_order": self.btree_order,
            "cache_salt": self.cache_salt,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class StreamSet:
    """Fetch-span streams for one (scope, combo, kernel_combo) cell.

    Behaves like the historical list of per-CPU ``(starts, counts)``
    pairs (iteration, indexing, ``len``) so it drops into every cache
    simulator unchanged, while keeping the provenance on the object.
    """

    scope: str
    combo: str
    kernel_combo: str
    streams: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    #: The profile source the layouts were optimized from.
    profile_source: str = "measured"

    def __iter__(self):
        return iter(self.streams)

    def __len__(self) -> int:
        return len(self.streams)

    def __getitem__(self, index):
        return self.streams[index]

    @property
    def instructions(self) -> int:
        """Total instructions fetched across all streams."""
        return int(sum(int(counts.sum()) for _, counts in self.streams))


class Experiment:
    """Lazily computed pipeline with caching at every stage.

    Every cacheable product is a declared stage in :attr:`pipeline`'s
    graph; combo-specific layout stages are declared on first request.
    Three products deliberately stay *outside* the graph: the baseline
    kernel layout (trivial to rebuild, never persisted) and the
    fault-injected (``REPRO_STATIC_INVERT``) source layouts, which must
    never pollute — or be satisfied from — the clean cache.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        store: Optional[ArtifactStore] = None,
        jobs: int = 1,
    ) -> None:
        self.config = config or ExperimentConfig()
        #: Disk cache for stage products (None disables persistence).
        self.store = store
        #: Worker processes used by the fanned-out figure sweeps.
        self.jobs = jobs
        #: Default profile source (:data:`~repro.staticpred.PROFILE_SOURCES`)
        #: used by :meth:`streams` / :meth:`address_map` when the call
        #: does not pick one -- the knob behind ``--profile-source``.
        self.profile_source = "measured"
        self.runlog = RunLog()
        self._fingerprint: Optional[str] = None
        self._pipeline: Optional[PipelineRunner] = None
        self._optimizer: Optional[SpikeOptimizer] = None
        self._kernel_optimizer: Optional[SpikeOptimizer] = None
        #: Baseline kernel layout only; optimized combos live in the graph.
        self._kernel_layouts: Dict[str, Layout] = {}
        #: Fault-injected (invert-mode) layouts only; see class docstring.
        self._source_optimizers: Dict[Tuple[str, bool], SpikeOptimizer] = {}
        self._source_layouts: Dict[Tuple[str, str], Layout] = {}
        self._kernel_source_layouts: Dict[Tuple[str, str], Layout] = {}
        self._amaps: Dict[Tuple[str, str, str], CombinedAddressMap] = {}

    # -- cache plumbing -----------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content hash of the configuration (see ExperimentConfig)."""
        if self._fingerprint is None:
            self._fingerprint = self.config.fingerprint()
        return self._fingerprint

    def _build_graph(self) -> StageGraph:
        """Declare the always-present stages of the experiment pipeline.

        Per-combo layout stages are declared lazily by :meth:`layout`
        and friends, because the combo space is open-ended.
        """
        graph = StageGraph()
        graph.add(Stage(
            name="codegen", detail="app",
            outputs=(ArtifactSpec("app.pkl", load_program, save_program),),
            build=lambda _: build_app_program(self.config.app),
        ))
        graph.add(Stage(
            name="codegen", detail="kernel",
            outputs=(ArtifactSpec("kernel.pkl", load_program, save_program),),
            build=lambda _: build_kernel_program(self.config.kernel),
        ))
        graph.add(Stage(
            name="profile",
            inputs=("codegen:app", "codegen:kernel"),
            outputs=(
                ArtifactSpec(
                    "profile-app.npz",
                    lambda path: load_profile(self.app.binary, path),
                    save_profile,
                ),
                ArtifactSpec(
                    "profile-kernel.npz",
                    lambda path: load_profile(self.kernel.binary, path),
                    save_profile,
                ),
            ),
            build=lambda _: self._profile_from_run(),
        ))
        graph.add(Stage(
            name="trace",
            inputs=("codegen:app", "codegen:kernel"),
            outputs=(ArtifactSpec("trace.npz", load_trace, save_trace),),
            build=lambda _: self._run_system(
                self.config.measure_transactions, 1
            ),
        ))
        # Transient (never persisted): deterministic per binary, and
        # needing no profiling run — cold-start consumers (repro serve)
        # reach them without ever touching the measured profile.
        graph.add(Stage(
            name="staticpred", detail="app", inputs=("codegen:app",),
            build=lambda _: synthesize_profile(self.app.binary),
        ))
        graph.add(Stage(
            name="staticpred", detail="kernel", inputs=("codegen:kernel",),
            build=lambda _: synthesize_profile(self.kernel.binary),
        ))
        return graph

    @property
    def pipeline(self) -> PipelineRunner:
        """The stage-graph runner behind every cacheable product.

        The runner's store tracks :attr:`store` on every access, so
        toggling the experiment's cache (``attach_store``) is always
        reflected in subsequent stage executions.
        """
        if self._pipeline is None:
            self._pipeline = PipelineRunner(
                self._build_graph(),
                store=self.store,
                fingerprint=self.fingerprint,
                runlog=self.runlog,
            )
        self._pipeline.store = self.store
        return self._pipeline

    def attach_store(self, store: Optional[ArtifactStore]) -> "Experiment":
        """Set (or clear, with None) the persistent artifact store.

        Products already computed in memory are written through to the
        new store, so attaching late still populates the cache."""
        self.store = store
        self.persist()
        return self

    def persist(self) -> int:
        """Write in-memory stage products missing from the store;
        returns the number of artifacts written.

        Delegates to :meth:`~repro.pipeline.runner.PipelineRunner.persist`,
        which iterates every *declared* stage — a newly added stage is
        persisted automatically instead of silently skipped the way the
        old hand-maintained artifact list allowed."""
        if self.store is None:
            return 0
        return self.pipeline.persist()

    def _staged(self, stage: str, detail: str, name: str, loader, builder, saver):
        """Deprecated: run one ad-hoc cacheable stage.

        Historical entry point from before the stage graph; it now
        declares a single-output :class:`~repro.pipeline.stage.Stage`
        on the experiment's graph and executes it through the runner.
        Declare stages directly instead.
        """
        warn_once(
            "experiment-staged",
            "Experiment._staged() is deprecated; declare a repro.pipeline "
            "Stage on Experiment.pipeline.graph instead",
        )
        key = f"{stage}:{detail}" if detail else stage
        runner = self.pipeline
        if key not in runner.graph:
            runner.graph.add(Stage(
                name=stage, detail=detail,
                outputs=(ArtifactSpec(name, loader, saver),),
                build=lambda _: builder(),
            ))
        return runner.value(key)

    # -- programs -----------------------------------------------------------

    @property
    def app(self) -> CompiledProgram:
        """The compiled application binary (cached stage product)."""
        return self.pipeline.value("codegen:app")

    @property
    def kernel(self) -> CompiledProgram:
        """The compiled kernel binary (cached stage product)."""
        return self.pipeline.value("codegen:kernel")

    # -- profiling run ----------------------------------------------------------

    def _run_system(self, transactions: int, tpcb_seed_offset: int) -> SystemTrace:
        tpcb = replace(self.config.tpcb, seed=self.config.tpcb.seed + tpcb_seed_offset)
        workload = None
        if self.config.workload_factory is not None:
            workload = self.config.workload_factory(tpcb, tpcb_seed_offset)
        system = OltpSystem(
            self.app,
            self.kernel,
            tpcb_config=tpcb,
            system_config=self.config.system,
            pool_capacity=self.config.pool_capacity,
            btree_order=self.config.btree_order,
            workload=workload,
        )
        return system.run(transactions, warmup=self.config.warmup_transactions)

    def _profile_from_run(self) -> Tuple[Profile, Profile]:
        """The profiling run: app profile + kernel profile (the paper
        used kprofile during the transaction-processing section)."""
        trace = self._run_system(self.config.profile_transactions, 0)
        profiler = PixieProfiler(self.app.binary)
        for stream in trace.per_process_app_streams():
            profiler.add_stream(stream)
        kernel_profiler = PixieProfiler(self.kernel.binary)
        offset = trace.kernel_offset
        for cpu in trace.cpus:
            kernel_blocks = cpu.blocks[cpu.blocks >= offset] - offset
            kernel_profiler.add_stream(kernel_blocks)
        return profiler.profile(), kernel_profiler.profile()

    @property
    def profile(self) -> Profile:
        """Pixie profile of the application (profiling run)."""
        return self.pipeline.value("profile")[0]

    @property
    def kernel_profile(self) -> Profile:
        """The kernel-side Pixie profile from the profiling run."""
        return self.pipeline.value("profile")[1]

    # -- layouts ---------------------------------------------------------------------

    @property
    def optimizer(self) -> SpikeOptimizer:
        """The app Spike optimizer over the profiling run's profile.

        Set ``REPRO_VERIFY=1`` in the environment to run every layout
        through the ``repro.check`` integrity passes as it is built.
        """
        if self._optimizer is None:
            self._optimizer = SpikeOptimizer(
                self.app.binary, self.profile, verify=_verify_enabled()
            )
        return self._optimizer

    @property
    def kernel_optimizer(self) -> SpikeOptimizer:
        """The kernel Spike optimizer over the kernel profile."""
        if self._kernel_optimizer is None:
            self._kernel_optimizer = SpikeOptimizer(
                self.kernel.binary, self.kernel_profile, verify=_verify_enabled()
            )
        return self._kernel_optimizer

    def layout(self, combo: str) -> Layout:
        """The application layout for one combination.  Unknown combo
        names raise LayoutError listing the valid ones."""
        combo = Combo.parse(combo).value
        runner = self.pipeline
        key = f"layout:{combo}"
        if key not in runner.graph:
            runner.graph.add(Stage(
                name="layout", detail=combo,
                inputs=("profile",),
                outputs=(ArtifactSpec(
                    f"layout-{combo}.json",
                    lambda path: load_layout(path, self.app.binary),
                    save_layout,
                ),),
                build=lambda _: self.optimizer.layout(combo),
            ))
        return runner.value(key)

    def kernel_layout(self, combo: str) -> Layout:
        """The kernel layout for ``combo`` (cached per combo)."""
        combo = Combo.parse(combo).value
        if combo == "base":
            if combo not in self._kernel_layouts:
                self._kernel_layouts[combo] = baseline_layout(self.kernel.binary)
            return self._kernel_layouts[combo]
        runner = self.pipeline
        key = f"layout:kernel:{combo}"
        if key not in runner.graph:
            runner.graph.add(Stage(
                name="layout", detail=f"kernel:{combo}",
                inputs=("profile",),
                outputs=(ArtifactSpec(
                    f"klayout-{combo}.json",
                    lambda path: load_layout(path, self.kernel.binary),
                    save_layout,
                ),),
                build=lambda _: self.kernel_optimizer.layout(combo),
            ))
        return runner.value(key)

    # -- profile sources -------------------------------------------------------------

    def static_profile(self, *, kernel: bool = False) -> Profile:
        """The synthesized (profile-free) static profile of the app or
        kernel binary.  Deterministic per binary, so it is computed in
        memory on demand and never persisted -- and, crucially, it
        needs no profiling run: cold-start consumers (``repro serve``)
        reach it without ever touching :attr:`profile`.
        """
        detail = "kernel" if kernel else "app"
        return self.pipeline.value(f"staticpred:{detail}")

    def profile_for(self, source: str, *, kernel: bool = False) -> Profile:
        """The profile one source names: ``measured`` (the profiling
        run), ``static`` (synthesized from CFG structure alone), or
        ``hybrid`` (measurement blended with the static prior)."""
        _check_source(source)
        if source == "static":
            return self.static_profile(kernel=kernel)
        measured = self.kernel_profile if kernel else self.profile
        if source == "measured":
            return measured
        return hybrid_profile(measured, self.static_profile(kernel=kernel))

    def optimizer_for(
        self, source: str, *, kernel: bool = False
    ) -> SpikeOptimizer:
        """A Spike optimizer over one profile source (cached)."""
        _check_source(source)
        if source == "measured":
            return self.kernel_optimizer if kernel else self.optimizer
        key = (source, kernel)
        if key not in self._source_optimizers:
            program = self.kernel if kernel else self.app
            self._source_optimizers[key] = SpikeOptimizer(
                program.binary,
                self.profile_for(source, kernel=kernel),
                verify=_verify_enabled(),
            )
        return self._source_optimizers[key]

    def layout_for(self, combo: str, source: str = "measured") -> Layout:
        """The application layout for one combo under one profile
        source.  ``measured`` shares :meth:`layout`'s cache entries;
        the other sources persist as ``layout-<source>-<combo>.json``.
        Fault-injected predictions (``REPRO_STATIC_INVERT``) bypass
        the store entirely so they can never pollute -- or be
        satisfied from -- the clean cache.
        """
        combo = Combo.parse(combo).value
        _check_source(source)
        if source == "measured":
            return self.layout(combo)
        if invert_enabled():
            key = (source, combo)
            if key not in self._source_layouts:
                self._source_layouts[key] = (
                    self.optimizer_for(source).layout(combo)
                )
            return self._source_layouts[key]
        runner = self.pipeline
        stage_key = f"layout:{source}:{combo}"
        if stage_key not in runner.graph:
            inputs = () if source == "static" else ("profile",)
            runner.graph.add(Stage(
                name="layout", detail=f"{source}:{combo}",
                inputs=inputs + ("staticpred:app",),
                outputs=(ArtifactSpec(
                    f"layout-{source}-{combo}.json",
                    lambda path: load_layout(path, self.app.binary),
                    save_layout,
                ),),
                build=lambda _: self.optimizer_for(source).layout(combo),
            ))
        return runner.value(stage_key)

    def kernel_layout_for(self, combo: str, source: str = "measured") -> Layout:
        """The kernel layout for one combo under one profile source."""
        combo = Combo.parse(combo).value
        _check_source(source)
        if source == "measured" or combo == "base":
            return self.kernel_layout(combo)
        if invert_enabled():
            key = (source, combo)
            if key not in self._kernel_source_layouts:
                self._kernel_source_layouts[key] = (
                    self.optimizer_for(source, kernel=True).layout(combo)
                )
            return self._kernel_source_layouts[key]
        runner = self.pipeline
        stage_key = f"layout:kernel:{source}:{combo}"
        if stage_key not in runner.graph:
            inputs = () if source == "static" else ("profile",)
            runner.graph.add(Stage(
                name="layout", detail=f"kernel:{source}:{combo}",
                inputs=inputs + ("staticpred:kernel",),
                outputs=(ArtifactSpec(
                    f"klayout-{source}-{combo}.json",
                    lambda path: load_layout(path, self.kernel.binary),
                    save_layout,
                ),),
                build=lambda _: self.optimizer_for(
                    source, kernel=True
                ).layout(combo),
            ))
        return runner.value(stage_key)

    def address_map(
        self,
        combo: str,
        kernel_combo: str = "base",
        profile_source: Optional[str] = None,
    ) -> CombinedAddressMap:
        """The combined app+kernel address map for a combo pair.

        ``profile_source`` defaults to the experiment-wide
        :attr:`profile_source` when not given.
        """
        key = (
            Combo.parse(combo).value,
            Combo.parse(kernel_combo).value,
            _check_source(profile_source or self.profile_source),
        )
        if key not in self._amaps:
            app_map = assign_addresses(
                self.app.binary, self.layout_for(key[0], key[2])
            )
            kernel_map = assign_addresses(
                self.kernel.binary, self.kernel_layout_for(key[1], key[2])
            )
            self._amaps[key] = CombinedAddressMap(app_map, kernel_map)
        return self._amaps[key]

    # -- measurement trace ----------------------------------------------------------

    @property
    def trace(self) -> SystemTrace:
        """The measurement run (distinct request stream from profiling)."""
        return self.pipeline.value("trace")

    # -- streams for the cache simulators ----------------------------------------------

    def streams(
        self,
        combo: str = "base",
        *,
        scope: str,
        kernel_combo: str = "base",
        profile_source: Optional[str] = None,
    ) -> StreamSet:
        """Fetch-span streams for the cache simulators.

        ``scope`` selects the address-space slice:

        * ``"app"``         -- per-CPU application-only streams.
        * ``"kernel"``      -- per-CPU kernel-only streams (laid out
          with ``kernel_combo``).
        * ``"combined"``    -- per-CPU app+OS streams.
        * ``"per-process"`` -- per-process app-only streams
          (single-CPU style studies).

        ``profile_source`` picks the profile the layouts were
        optimized from (the measurement *trace* is always the real
        one -- the axis varies what the optimizer knew, not what the
        system did); None falls back to the experiment-wide
        :attr:`profile_source`.
        """
        combo = Combo.parse(combo).value
        kernel_combo = Combo.parse(kernel_combo).value
        profile_source = _check_source(profile_source or self.profile_source)
        if scope not in STREAM_SCOPES:
            raise SimulationError(
                f"unknown stream scope {scope!r}; "
                f"valid scopes: {', '.join(STREAM_SCOPES)}"
            )
        amap = self.address_map(combo, kernel_combo, profile_source)
        if scope == "app":
            spans = [
                amap.expand_spans(
                    cpu.blocks[cpu.blocks < self.trace.kernel_offset]
                )
                for cpu in self.trace.cpus
            ]
        elif scope == "kernel":
            spans = [
                amap.expand_spans(
                    cpu.blocks[cpu.blocks >= self.trace.kernel_offset]
                )
                for cpu in self.trace.cpus
            ]
        elif scope == "combined":
            spans = [amap.expand_spans(cpu.blocks) for cpu in self.trace.cpus]
        else:  # per-process
            spans = [
                amap.expand_spans(blocks)
                for blocks in self.trace.per_process_app_streams()
            ]
        return StreamSet(
            scope=scope, combo=combo, kernel_combo=kernel_combo,
            streams=tuple(spans), profile_source=profile_source,
        )


@lru_cache(maxsize=1)
def default_experiment() -> Experiment:
    """The shared experiment instance used by the benchmark suite."""
    return Experiment()


@lru_cache(maxsize=1)
def uniprocessor_experiment() -> Experiment:
    """A single-CPU experiment (the paper's Figure 15 runs are
    1-processor); shares the default code-generation config."""
    config = ExperimentConfig(
        system=SystemConfig(cpus=1, processes_per_cpu=8),
        profile_transactions=100,
        measure_transactions=100,
        warmup_transactions=20,
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def dss_experiment() -> Experiment:
    """The DSS comparison experiment: the same generated binaries and
    database, driven by read-only aggregation queries."""
    from repro.workloads.dss import DssConfig, DssWorkload

    config = ExperimentConfig(
        profile_transactions=48,
        measure_transactions=48,
        warmup_transactions=8,
        workload_factory=lambda tpcb, _offset: DssWorkload(
            DssConfig(tpcb=tpcb)
        ),
        cache_salt="dss",
    )
    return Experiment(config)


@lru_cache(maxsize=1)
def quick_experiment() -> Experiment:
    """A small, fast experiment for tests and smoke runs."""
    config = ExperimentConfig(
        app=AppCodeConfig(scale=1.0, filler_routines=120, filler_instructions=60_000),
        kernel=KernelCodeConfig(scale=1.0, filler_routines=20, filler_instructions=8_000),
        tpcb=TpcbConfig(branches=8, accounts_per_branch=100),
        profile_transactions=60,
        measure_transactions=60,
        warmup_transactions=10,
        pool_capacity=1024,
    )
    return Experiment(config)
