"""Sequential-run-length analysis (paper Figure 8).

A *sequence* is a maximal run of consecutively executed instructions:
it ends at every control break (taken branch, call, return, or any
transition whose target is not the next sequential address under the
layout being studied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ir import INSTRUCTION_BYTES


@dataclass
class SequenceStats:
    """Distribution of sequential-run lengths for one stream."""

    #: histogram[i] = number of sequences of exactly i instructions
    #: (index 0 unused); the last bucket accumulates longer runs.
    histogram: np.ndarray
    total_sequences: int
    total_instructions: int

    @property
    def mean_length(self) -> float:
        if self.total_sequences == 0:
            return 0.0
        return self.total_instructions / self.total_sequences

    def fractions(self) -> np.ndarray:
        """Fraction of all sequences at each length (Fig 8b series)."""
        return self.histogram / max(1, self.total_sequences)


def sequence_lengths(
    starts: np.ndarray,
    counts: np.ndarray,
    max_length: int = 33,
) -> SequenceStats:
    """Compute run lengths for one stream of fetch spans.

    A span continues the current sequence when its start address equals
    the previous span's end address.
    """
    mask = counts > 0
    starts = starts[mask]
    counts = counts[mask].astype(np.int64)
    histogram = np.zeros(max_length + 1, dtype=np.int64)
    if len(starts) == 0:
        return SequenceStats(histogram, 0, 0)
    ends = starts + counts * INSTRUCTION_BYTES
    breaks = np.nonzero(starts[1:] != ends[:-1])[0]
    # Sequence boundaries: [0 .. b0], (b0 .. b1], ... each inclusive of
    # spans; length = sum of counts over the spans in the sequence.
    cumulative = np.concatenate([[0], np.cumsum(counts)])
    boundary = np.concatenate([[0], breaks + 1, [len(starts)]])
    lengths = cumulative[boundary[1:]] - cumulative[boundary[:-1]]
    capped = np.minimum(lengths, max_length)
    histogram += np.bincount(capped, minlength=max_length + 1)
    return SequenceStats(
        histogram=histogram,
        total_sequences=len(lengths),
        total_instructions=int(counts.sum()),
    )


def merge_sequence_stats(stats: List[SequenceStats]) -> SequenceStats:
    """Aggregate per-stream stats (per CPU / per process)."""
    if not stats:
        return SequenceStats(np.zeros(34, dtype=np.int64), 0, 0)
    histogram = sum((s.histogram for s in stats[1:]), stats[0].histogram.copy())
    return SequenceStats(
        histogram=histogram,
        total_sequences=sum(s.total_sequences for s in stats),
        total_instructions=sum(s.total_instructions for s in stats),
    )


def mean_basic_block_size(blocks: np.ndarray, sizes: np.ndarray) -> float:
    """Average dynamic basic-block size (Fig 8a's reference bar)."""
    if len(blocks) == 0:
        return 0.0
    executed = sizes[blocks]
    return float(executed.mean())
