"""Execution-profile / footprint curves (paper Figure 3)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ir import INSTRUCTION_BYTES
from repro.profiles import Profile


def execution_profile_curve(profile: Profile) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's Figure 3 curve.

    Returns (footprint_bytes, cumulative_fraction): sorting static
    instructions from most to least frequently executed, the fraction
    of all dynamic instructions captured by each footprint prefix.
    """
    binary = profile.binary
    sizes = np.array([b.size for b in binary.blocks()], dtype=np.int64)
    counts = profile.block_counts
    per_instr_counts = np.repeat(counts, sizes)
    order = np.argsort(per_instr_counts, kind="stable")[::-1]
    sorted_counts = per_instr_counts[order]
    total = sorted_counts.sum()
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    cumulative = np.cumsum(sorted_counts) / total
    footprint = (np.arange(1, len(sorted_counts) + 1)) * INSTRUCTION_BYTES
    return footprint, cumulative


def dynamic_footprint_bytes(profile: Profile) -> int:
    """Bytes of static code executed at least once."""
    binary = profile.binary
    sizes = np.array([b.size for b in binary.blocks()], dtype=np.int64)
    return int(sizes[profile.block_counts > 0].sum()) * INSTRUCTION_BYTES


def footprint_in_lines(
    starts: np.ndarray, counts: np.ndarray, line_bytes: int
) -> int:
    """Unique cache lines touched by a stream (the paper's packing
    metric: 500KB base vs 315KB optimized in 128-byte lines)."""
    from repro.cache.icache import expand_line_runs

    line_ids, _, _, _ = expand_line_runs(starts, counts, line_bytes)
    return len(np.unique(line_ids)) if len(line_ids) else 0


def union_footprint_in_lines(streams, line_bytes: int) -> int:
    """Unique lines touched across several streams of one binary
    (per-CPU streams share the image -- do NOT sum per-stream counts)."""
    from repro.cache.icache import expand_line_runs

    touched: set = set()
    for starts, counts in streams:
        line_ids, _, _, _ = expand_line_runs(starts, counts, line_bytes)
        if len(line_ids):
            touched.update(np.unique(line_ids).tolist())
    return len(touched)


def capture_at(profile: Profile, footprint_bytes: int) -> float:
    """Fraction of dynamic instructions captured by the hottest
    ``footprint_bytes`` of code."""
    footprint, cumulative = execution_profile_curve(profile)
    if len(footprint) == 0:
        return 0.0
    idx = np.searchsorted(footprint, footprint_bytes, side="right") - 1
    if idx < 0:
        return 0.0
    return float(cumulative[min(idx, len(cumulative) - 1)])
