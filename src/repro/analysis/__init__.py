"""Metrics used by the paper's figures."""

from repro.analysis.branches import BranchStats, branch_stats, merge_branch_stats

from repro.analysis.footprint import (
    capture_at,
    dynamic_footprint_bytes,
    execution_profile_curve,
    footprint_in_lines,
    union_footprint_in_lines,
)
from repro.analysis.interference import InterferenceBreakdown
from repro.analysis.sequences import (
    SequenceStats,
    mean_basic_block_size,
    merge_sequence_stats,
    sequence_lengths,
)

__all__ = [
    "BranchStats",
    "branch_stats",
    "merge_branch_stats",
    "InterferenceBreakdown",
    "SequenceStats",
    "capture_at",
    "dynamic_footprint_bytes",
    "execution_profile_curve",
    "footprint_in_lines",
    "union_footprint_in_lines",
    "mean_basic_block_size",
    "merge_sequence_stats",
    "sequence_lengths",
]
