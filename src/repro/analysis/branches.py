"""Branch-direction statistics per layout.

Chaining "biases conditional branches to be not taken"; besides the
fetch-sequentiality effect the paper measures, the taken-branch rate
matters to front ends with static not-taken prediction or one-cycle
taken-branch bubbles.  These helpers quantify it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir import INSTRUCTION_BYTES


@dataclass
class BranchStats:
    """Control-transfer statistics for one stream under one layout."""

    transitions: int
    breaks: int
    instructions: int

    @property
    def break_fraction(self) -> float:
        """Fraction of block transitions that break the fetch stream
        (taken branches, calls, returns, non-adjacent jumps)."""
        return self.breaks / self.transitions if self.transitions else 0.0

    @property
    def breaks_per_instruction(self) -> float:
        return self.breaks / self.instructions if self.instructions else 0.0


def branch_stats(starts: np.ndarray, counts: np.ndarray) -> BranchStats:
    """Compute break statistics from fetch spans (one stream)."""
    mask = counts > 0
    starts = starts[mask]
    counts = counts[mask].astype(np.int64)
    if len(starts) < 2:
        return BranchStats(0, 0, int(counts.sum()) if len(counts) else 0)
    ends = starts + counts * INSTRUCTION_BYTES
    breaks = int((starts[1:] != ends[:-1]).sum())
    return BranchStats(
        transitions=len(starts) - 1,
        breaks=breaks,
        instructions=int(counts.sum()),
    )


def merge_branch_stats(stats) -> BranchStats:
    """Aggregate per-stream stats."""
    stats = list(stats)
    return BranchStats(
        transitions=sum(s.transitions for s in stats),
        breaks=sum(s.breaks for s in stats),
        instructions=sum(s.instructions for s in stats),
    )
