"""Application/kernel interference analysis (paper Figure 13)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache.stats import APP, KERNEL, InterferenceMatrix


@dataclass
class InterferenceBreakdown:
    """Figure 13's bar data: per missing space, who owned the displaced
    line (cold misses displace nobody and are reported separately)."""

    rows: Dict[str, Dict[str, int]]
    cold: Dict[str, int]

    @classmethod
    def from_matrix(cls, matrix: InterferenceMatrix) -> "InterferenceBreakdown":
        rows = {
            missing: dict(matrix.counts[missing]) for missing in (KERNEL, APP)
        }
        both = {
            owner: rows[KERNEL][owner] + rows[APP][owner] for owner in (KERNEL, APP)
        }
        rows["both"] = both
        return cls(rows=rows, cold=dict(matrix.cold))

    def self_interference_fraction(self, space: str) -> float:
        """Fraction of a space's (conflict) misses displacing its own lines."""
        row = self.rows[space]
        total = sum(row.values())
        return row[space] / total if total else 0.0
