"""Process-wide warn-once registry for deprecated entry points.

Deprecated shims across the package funnel through :func:`warn_once`
so a sweep that calls a legacy function per cache geometry emits one
``DeprecationWarning``, not hundreds.  The registry is keyed by the
shim's stable name, lives for the process, and can be reset from tests
via :func:`reset_deprecation_warnings`.
"""

from __future__ import annotations

import warnings

#: Shim keys that already warned this process.
_WARNED: set = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Let every once-per-process warning fire again (testing hook)."""
    _WARNED.clear()
