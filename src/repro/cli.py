"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     -- describe the generated binaries and configuration.
* ``figure``   -- regenerate one or more paper figures as text tables.
* ``sweep``    -- run the Figure 4/5 cache sweep.
* ``sim-bench`` -- time the fig04 sweep under the batched and classic
  engines, verify bit-identical miss counts, and record the gate.
* ``ablation`` -- run the Figure 7 optimization ablation.
* ``online``   -- online adaptation on a phase-shifting workload
  (static decay vs adaptive re-layout, epoch by epoch).
* ``serve``    -- run the layout-optimization service: profile
  ingestion, request coalescing, tiered layout cache, check gate.
* ``fleet``    -- simulate N client nodes against the service
  (healthy and degraded scenarios, with acceptance gates).
* ``scenarios`` -- the declarative scenario matrix: ``list`` the cells,
  ``run`` the resumable cross-workload sweep, ``report`` the saved
  cross-scenario Markdown report.
* ``static-bench`` -- measured vs static vs hybrid profile sources on
  scenario cells; records the OLTP static-recovery gate as
  ``BENCH_staticpred.json``.
* ``cache``    -- inspect (``info``) or wipe (``clear``) the artifact cache.
* ``summary``  -- concatenate saved benchmark result tables.
* ``report``   -- render one Markdown/HTML run report from a results
  directory (figure tables, metric summaries, span flamegraph).
* ``bench-diff`` -- compare fresh ``BENCH_*.json`` against a baseline
  directory; non-zero exit on regressions beyond the threshold.
* ``trace-export`` -- convert a span-trace JSONL into Chrome's
  ``chrome://tracing`` / Perfetto JSON format.

Figures run on the quick experiment by default; pass ``--full`` for
the paper-scale configuration used by the benchmark suite.  Stage
products (codegen, profiles, traces, layouts) persist in a
content-addressed cache (``--cache-dir``, default ``~/.cache/repro``;
``--no-cache`` disables) so warm reruns skip straight to the cache
simulators, and ``--jobs N`` fans independent sweep cells across
worker processes with bit-identical output.  A per-stage run log
(wall time, cache hit/miss, bytes) is printed to stderr after each
command unless ``--quiet`` is given.  ``--trace PATH`` records
:mod:`repro.obs` spans to a JSONL file for ``report``/``trace-export``.
The shared flags may be given before or after the subcommand; the
direct-mapped sweep figures additionally take ``--engine
{batched,classic}`` (default ``batched``, the single-pass
:mod:`repro.sim` engine).  ``figure``/``sweep``/``scenarios`` take
``--profile-source {measured,static,hybrid}`` to build the optimized
layouts from the profile-free static prediction instead of the
profiling run (see ``docs/STATIC.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List

from repro.harness import (
    ArtifactStore,
    default_cache_dir,
    default_experiment,
    figures,
    quick_experiment,
)
from repro.staticpred import PROFILE_SOURCES

#: figure name -> callable(exp, engine) returning one or more Tables.
#: Only the direct-mapped sweep figures consume ``engine``.
_FIGURES: Dict[str, Callable] = {
    "fig03": lambda exp, engine: [figures.fig03_execution_profile(exp)],
    "fig04": lambda exp, engine: [
        figures.fig04_table(
            figures.fig04_cache_sweep(exp, combo, engine=engine), combo
        )
        for combo in ("base", "all")
    ],
    "fig05": lambda exp, engine: [
        figures.fig05_relative(
            figures.fig04_cache_sweep(exp, "base", engine=engine),
            figures.fig04_cache_sweep(exp, "all", engine=engine),
        )
    ],
    "fig06": lambda exp, engine: [figures.fig06_associativity(exp)],
    "fig07": lambda exp, engine: [figures.fig07_ablation(exp)],
    "fig08": lambda exp, engine: list(figures.fig08_sequences(exp)),
    "fig12": lambda exp, engine: [
        figures.fig12_combined(exp, "base"),
        figures.fig12_combined(exp, "all"),
    ],
    "fig13": lambda exp, engine: [
        figures.fig13_interference(exp, "base"),
        figures.fig13_interference(exp, "all"),
    ],
    "fig14": lambda exp, engine: [figures.fig14_itlb_l2(exp)],
    "fig15": lambda exp, engine: [figures.fig15_exec_time(exp)],
    "packing": lambda exp, engine: [figures.text_packing(exp)],
}


def _default_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "1") or "1")


def _add_shared_flags(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """The flags every command understands, defined once.

    Added twice: to the root parser with real defaults, and to the
    ``add_help=False`` parent each subcommand inherits with SUPPRESS
    defaults -- so ``repro --jobs 4 figure ...`` and ``repro figure ...
    --jobs 4`` both work, and a flag omitted after the subcommand never
    clobbers one given before it.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--full", action="store_true", default=default(False),
        help="use the paper-scale experiment (slower; benchmark default)",
    )
    parser.add_argument(
        "--jobs", type=int, default=default(_default_jobs()), metavar="N",
        help="worker processes for sweep fan-out (default $REPRO_JOBS or 1; "
        "-1 = one per CPU); output is bit-identical to serial",
    )
    parser.add_argument(
        "--cache-dir", default=default(None), metavar="PATH",
        help=f"artifact cache directory (default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", default=default(False),
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--quiet", action="store_true", default=default(False),
        help="suppress the per-stage run log on stderr",
    )
    parser.add_argument(
        "--trace", default=default(None), metavar="PATH",
        help="record observability spans to a JSONL trace file "
        "(view with 'report' or 'trace-export')",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Code Layout Optimizations for "
        "Transaction Processing Workloads' (ISCA 2001)",
    )
    _add_shared_flags(parser, suppress=False)
    shared = argparse.ArgumentParser(add_help=False)
    _add_shared_flags(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "info", help="describe the generated system", parents=[shared]
    )

    figure = sub.add_parser(
        "figure", help="regenerate paper figures", parents=[shared]
    )
    figure.add_argument(
        "names", nargs="+", choices=sorted(_FIGURES) + ["all"],
        help="figure ids (or 'all')",
    )
    figure.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="also write each table as BENCH_<figure>.json under DIR",
    )
    figure.add_argument(
        "--engine", choices=("batched", "classic"), default="batched",
        help="direct-mapped sweep engine for fig04/fig05 (default "
        "batched; classic is the per-cell cross-check path)",
    )
    figure.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="measured",
        help="profile the optimized layouts are built from (default "
        "measured; 'static' is the profile-free CFG prediction, "
        "'hybrid' blends both -- see docs/STATIC.md)",
    )

    sweep = sub.add_parser(
        "sweep", help="Figure 4/5 cache sweep (base + optimized)",
        parents=[shared],
    )
    sweep.add_argument(
        "--engine", choices=("batched", "classic"), default="batched",
        help="direct-mapped sweep engine (default batched)",
    )
    sweep.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="measured",
        help="profile the optimized layouts are built from (default "
        "measured; see docs/STATIC.md)",
    )
    sub.add_parser(
        "ablation", help="Figure 7 optimization ablation", parents=[shared]
    )

    simbench = sub.add_parser(
        "sim-bench",
        help="time the fig04 sweep under both engines and verify "
        "bit-identical miss counts",
        parents=[shared],
    )
    simbench.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the batched engine matches classic exactly "
        "and is >= 2x faster",
    )
    simbench.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the gate result as BENCH_sim_fig04.json under DIR "
        "(for 'repro bench-diff' against the committed baseline)",
    )
    simbench.add_argument(
        "--min-speedup", type=float, default=2.0, metavar="X",
        help="speedup the gate requires (default 2.0)",
    )

    online = sub.add_parser(
        "online",
        help="online adaptation: static decay vs adaptive re-layout on a "
        "phase-shifting TPC-B -> DSS workload",
        parents=[shared],
    )
    online.add_argument(
        "--epochs", type=int, default=6, metavar="N",
        help="epochs the measurement run is cut into (default 6, min 2)",
    )
    online.add_argument(
        "--period", type=int, default=64, metavar="N",
        help="PC-sampling period in instructions (default 64)",
    )
    online.add_argument(
        "--threshold", type=float, default=0.40, metavar="X",
        help="hard drift threshold for layout swaps (default 0.40)",
    )
    online.add_argument(
        "--refresh-threshold", type=float, default=0.16, metavar="X",
        help="residual-drift threshold for refresh retrains (default 0.16)",
    )
    online.add_argument(
        "--top-k", type=int, default=64, metavar="K",
        help="hot-set size for the turnover drift component (default 64)",
    )
    online.add_argument(
        "--combo", default="all",
        help="optimization combination for all layout arms (default 'all')",
    )
    online.add_argument(
        "--shift", type=int, default=5, metavar="N",
        help="TPC-B transactions per client before the DSS shift (default 5)",
    )
    online.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    online.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the adaptive arm recovers to within 10%% of "
        "offline re-profiling and beats the static layout",
    )

    serve = sub.add_parser(
        "serve",
        help="run the layout-optimization service for the app binary",
        parents=[shared],
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind host (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP bind port (default 0 = OS-assigned; printed on start)",
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH",
        help="bind a unix domain socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="optimizations in flight before requests are REJECTED "
        "(default 8)",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="optimization worker processes (default 0 = in-process "
        "thread pool)",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip the repro.check gate on outgoing layouts (not advised)",
    )
    serve.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="static",
        help="cold-start answer for layout requests with no cached "
        "profile (default static: serve a check-gated layout built "
        "from the static prediction; 'measured' disables the fallback "
        "and rejects unknown fingerprints)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="simulate a fleet of client nodes against the layout service",
        parents=[shared],
    )
    fleet.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent client nodes (default 8)",
    )
    fleet.add_argument(
        "--epochs", type=int, default=4, metavar="N",
        help="trace epochs = distinct drifting profiles (default 4)",
    )
    fleet.add_argument(
        "--combo", default="all",
        help="optimization combination requested (default 'all')",
    )
    fleet.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="server admission-control limit (default 8)",
    )
    fleet.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="server optimization workers (default 0 = thread pool)",
    )
    fleet.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="degraded mode: kill the server after N epochs; clients "
        "finish on last-known-good layouts",
    )
    fleet.add_argument(
        "--connect", default=None, metavar="HOST:PORT|PATH",
        help="drive an already-running server instead of starting one "
        "in-process (incompatible with --kill-after)",
    )
    fleet.add_argument(
        "--shift", type=int, default=5, metavar="N",
        help="TPC-B transactions per client before the DSS shift "
        "(default 5; drives the profile drift between epochs)",
    )
    fleet.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    fleet.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the acceptance gate as BENCH_serve.json under DIR "
        "(compare runs with 'bench-diff')",
    )
    fleet.add_argument(
        "--check", action="store_true",
        help="run the healthy AND degraded scenarios and exit 1 unless "
        "both pass the acceptance gates",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative scenario matrix (workload x hierarchy x combo "
        "x drift x engine)",
        description="Run the paper's evaluation as data: list the "
        "scenario cells, execute the resumable matrix sweep, or "
        "re-render the cross-scenario report from a saved "
        "BENCH_scenarios.json.  See docs/SCENARIOS.md.",
    )
    scsub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    sc_list = scsub.add_parser(
        "list", help="show the matrix cells and their fingerprints",
        parents=[shared],
    )
    sc_run = scsub.add_parser(
        "run", help="run (or resume) the scenario matrix",
        parents=[shared],
    )
    for leaf in (sc_list, sc_run):
        leaf.add_argument(
            "--matrix", default=None, metavar="FILE",
            help="load scenarios from a .toml/.json matrix file instead "
            "of the built-in default matrix",
        )
        leaf.add_argument(
            "--select", action="extend", nargs="+", default=None,
            metavar="GLOB",
            help="only cells whose name matches GLOB (repeatable, takes "
            "several patterns; a pattern matching nothing is an error)",
        )
        leaf.add_argument(
            "--profile-source", choices=PROFILE_SOURCES, default=None,
            help="override every selected cell's profile source "
            "(default: each spec's own, normally 'measured')",
        )
    sc_run.add_argument(
        "--fresh", action="store_true",
        help="ignore previously completed cells and recompute everything",
    )
    sc_run.add_argument(
        "--no-verify", action="store_true",
        help="skip the repro.check gate on each cell's optimized layout",
    )
    sc_run.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the matrix as BENCH_scenarios.json under DIR "
        "(compare runs with 'bench-diff')",
    )
    sc_run.add_argument(
        "--report", default=None, metavar="PATH", dest="report_path",
        help="also write the cross-scenario Markdown report to PATH",
    )
    sc_run.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every cell passes its gate and the OLTP/DSS "
        "sensitivity ordering holds",
    )
    sc_report = scsub.add_parser(
        "report",
        help="render the cross-scenario Markdown report from a saved "
        "BENCH_scenarios.json",
    )
    sc_report.add_argument(
        "results_dir", nargs="?", default="benchmarks/results",
        help="directory holding BENCH_scenarios.json "
        "(default benchmarks/results)",
    )
    sc_report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )

    staticbench = sub.add_parser(
        "static-bench",
        help="measured vs static vs hybrid profile sources on the OLTP "
        "scenario cells (the staticpred recovery gate)",
        description="Simulate scenario cells with optimized layouts "
        "built from each profile source and compare the miss "
        "reductions.  The gate requires static-only layouts to recover "
        "at least half of the measured-profile reduction on the OLTP "
        "cells.  See docs/STATIC.md.",
        parents=[shared],
    )
    staticbench.add_argument(
        "--select", action="extend", nargs="+", default=None, metavar="GLOB",
        help="scenario cells to evaluate (default: the no-drift OLTP "
        "cells tpcb-i32 and tpcb-i64x2)",
    )
    staticbench.add_argument(
        "--check", action="store_true",
        help="exit 1 unless static-only layouts recover >= 50%% of the "
        "measured-profile miss reduction on the OLTP cells",
    )
    staticbench.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the gate table as BENCH_staticpred.json under DIR "
        "(compare runs with 'bench-diff')",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the artifact cache", parents=[shared]
    )
    cache.add_argument(
        "action", choices=("info", "clear"),
        help="'info' summarizes the cache; 'clear' wipes it",
    )

    summary = sub.add_parser(
        "summary", help="concatenate saved benchmark result tables"
    )
    summary.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory holding the *.txt tables written by the benchmarks",
    )

    report = sub.add_parser(
        "report", help="render a Markdown/HTML run report from BENCH_*.json"
    )
    report.add_argument(
        "results_dir", nargs="?", default="benchmarks/results",
        help="directory holding BENCH_*.json documents "
        "(default benchmarks/results)",
    )
    report.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="span-trace JSONL to render as a flamegraph section",
    )
    report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    report.add_argument(
        "--html", action="store_true",
        help="emit a self-contained HTML page instead of Markdown",
    )

    diff = sub.add_parser(
        "bench-diff",
        help="compare fresh BENCH_*.json against a baseline directory",
    )
    diff.add_argument(
        "fresh_dir", help="directory holding the fresh BENCH_*.json documents"
    )
    diff.add_argument(
        "--baseline", default="benchmarks/baselines", metavar="DIR",
        help="baseline directory (default benchmarks/baselines)",
    )
    diff.add_argument(
        "--threshold", type=float, default=8.0, metavar="PCT",
        help="regression threshold in percent (default 8)",
    )
    diff.add_argument(
        "--wall-time", action="store_true",
        help="also gate summed pipeline stage wall time (machine-dependent; "
        "off by default)",
    )

    export = sub.add_parser(
        "trace-export",
        help="convert a span-trace JSONL to Chrome trace_event JSON",
    )
    export.add_argument("trace_file", help="span-trace JSONL written via --trace")
    export.add_argument(
        "--out", default=None, metavar="PATH",
        help="output path (default <trace_file>.chrome.json)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro.check static analyses (Spike lint)",
        description="Verify layout integrity, profile flow conservation, "
        "and layout-quality lints over the generated binaries -- or over "
        "saved layout/profile artifacts.",
        parents=[shared],
    )
    lint.add_argument(
        "--combo", action="append", default=None, metavar="NAME",
        help="optimization combination(s) to lint (repeatable; default all)",
    )
    lint.add_argument(
        "--layout", action="append", default=None, metavar="FILE",
        help="lint a saved layout JSON against the app binary instead of "
        "building layouts (repeatable)",
    )
    lint.add_argument(
        "--profile", action="append", default=None, metavar="FILE",
        help="lint a saved profile .npz against the app binary (repeatable)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any error-severity finding is reported",
    )
    lint.add_argument(
        "--no-deprecations", action="store_true",
        help="skip the deprecated-API call-site scan",
    )
    lint.add_argument(
        "--scan", action="append", default=None, metavar="PATH",
        help="roots for the deprecated-API scan "
        "(repeatable; default src, benchmarks, tools). When --scan is "
        "the only selection, the artifact lint is skipped and only the "
        "scan runs",
    )
    lint.add_argument(
        "--static-diff", action="store_true",
        help="also diff the measured profiles against the static "
        "prediction (STA* advisories; see docs/STATIC.md)",
    )
    return parser


def _store(args) -> ArtifactStore:
    return ArtifactStore(args.cache_dir or default_cache_dir())


def _experiment(args):
    exp = default_experiment() if args.full else quick_experiment()
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else _store(args))
    # Commands without the flag (info, lint, ...) keep the measured
    # default; ``serve`` interprets the flag itself.
    if args.command not in ("serve",):
        exp.profile_source = getattr(args, "profile_source", "measured")
    return exp


def _warm(exp) -> None:
    """Touch every expensive stage so the run log covers the whole
    pipeline (codegen, profile, trace) even when layouts are cached."""
    _ = exp.app
    _ = exp.kernel
    _ = exp.profile
    _ = exp.trace


def _emit_runlog(exp, args) -> None:
    if args.quiet or not exp.runlog.records:
        return
    cache = "off" if exp.store is None else str(exp.store.root)
    sys.stderr.write(
        exp.runlog.render(
            header=f"run log: fingerprint={exp.fingerprint} "
            f"jobs={exp.jobs} cache={cache}"
        )
    )


def _cmd_info(args, out) -> int:
    exp = _experiment(args)
    app = exp.app.binary
    kernel = exp.kernel.binary
    config = exp.config
    out.write(
        f"application binary: {app.num_procedures} procedures, "
        f"{app.num_blocks} blocks, {app.static_size * 4 // 1024} KB static\n"
        f"kernel binary:      {kernel.num_procedures} procedures, "
        f"{kernel.static_size * 4 // 1024} KB static\n"
        f"TPC-B:              {config.tpcb.branches} branches, "
        f"{config.tpcb.accounts:,} accounts\n"
        f"system:             {config.system.cpus} CPUs x "
        f"{config.system.processes_per_cpu} server processes\n"
        f"transactions:       {config.profile_transactions} profiled, "
        f"{config.measure_transactions} measured\n"
        f"fingerprint:        {exp.fingerprint}\n"
    )
    profile = exp.profile
    out.write(
        f"profiled:           {profile.total_instructions:,} instructions, "
        f"dynamic footprint "
        f"{_footprint_kb(profile)} KB\n"
    )
    _emit_runlog(exp, args)
    return 0


def _footprint_kb(profile) -> int:
    from repro.analysis import dynamic_footprint_bytes

    return dynamic_footprint_bytes(profile) // 1024


def _figure_slug(name: str, table, index: int, count: int) -> str:
    """Stable BENCH slug for one figure table.

    Multi-table figures carry the combo in the title — ``Figure 4
    (base): ...`` becomes ``fig04_base``; untagged extras fall back to
    a positional suffix.
    """
    import re

    if count == 1:
        return name
    match = re.search(r"\(([A-Za-z0-9+_-]+)\)", table.title)
    if match:
        return f"{name}_{match.group(1).replace('+', '_')}"
    return f"{name}_{index}"


def _cmd_figure(args, out) -> int:
    exp = _experiment(args)
    names: List[str] = (
        sorted(_FIGURES) if "all" in args.names else list(dict.fromkeys(args.names))
    )
    for name in names:
        tables = _FIGURES[name](exp, args.engine)
        for index, table in enumerate(tables):
            out.write(table.render() + "\n")
            if args.save_json:
                from repro.harness import write_benchmark_json

                write_benchmark_json(
                    _figure_slug(name, table, index, len(tables)),
                    table,
                    args.save_json,
                )
    _emit_runlog(exp, args)
    return 0


def _cmd_sweep(args, out) -> int:
    exp = _experiment(args)
    _warm(exp)
    base = figures.fig04_cache_sweep(exp, "base", engine=args.engine)
    opt = figures.fig04_cache_sweep(exp, "all", engine=args.engine)
    out.write(figures.fig04_table(base, "base").render() + "\n")
    out.write(figures.fig04_table(opt, "all").render() + "\n")
    out.write(figures.fig05_relative(base, opt).render() + "\n")
    _emit_runlog(exp, args)
    return 0


def _cmd_sim_bench(args, out) -> int:
    """Time the fig04 sweep under both engines on identical streams.

    The gate is recorded as boolean ``ratio_ok`` rows (1 = pass) rather
    than raw seconds, so ``repro bench-diff`` against the committed
    baseline stays machine-independent: a pass-to-fail flip shows up as
    a -100% regression; timing jitter never trips it.
    """
    import time as _time

    from repro.sim import simulate_grid

    exp = _experiment(args)
    _warm(exp)
    streams = {
        combo: exp.streams(combo, scope="app") for combo in ("base", "all")
    }
    jobs = exp.jobs
    timings: Dict[str, float] = {}
    grids: Dict[str, dict] = {}
    for engine in ("classic", "batched"):
        start = _time.perf_counter()
        grids[engine] = {
            combo: simulate_grid(
                streams[combo],
                figures.SWEEP_SIZES,
                figures.SWEEP_LINES,
                jobs=jobs,
                engine=engine,
            )
            for combo in ("base", "all")
        }
        timings[engine] = _time.perf_counter() - start
    identical = grids["classic"] == grids["batched"]
    speedup = timings["classic"] / max(timings["batched"], 1e-9)
    speedup_ok = speedup >= args.min_speedup

    from repro.harness.figures import Table

    table = Table(
        title="sim-bench: fig04 sweep, batched vs classic engine",
        columns=["metric", "ratio_ok"],
        rows=[
            ["identical_misses", int(identical)],
            [f"speedup_ge_{args.min_speedup:g}x", int(speedup_ok)],
        ],
        notes=[
            f"classic {timings['classic']:.3f}s, batched "
            f"{timings['batched']:.3f}s, speedup {speedup:.2f}x "
            f"(jobs={jobs}; timings informational, not gated)",
        ],
    )
    out.write(table.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("sim_fig04", table, args.save_json)
    _emit_runlog(exp, args)
    if args.check and not (identical and speedup_ok):
        sys.stderr.write(
            f"sim-bench check FAILED: identical_misses={identical} "
            f"speedup={speedup:.2f}x (need >= {args.min_speedup:g}x)\n"
        )
        return 1
    return 0


def _cmd_ablation(args, out) -> int:
    exp = _experiment(args)
    _warm(exp)
    out.write(figures.fig07_ablation(exp).render() + "\n")
    _emit_runlog(exp, args)
    return 0


def _cmd_online(args, out) -> int:
    import json

    from repro.harness.experiment import Experiment
    from repro.online import (
        OnlineConfig,
        phased_experiment_config,
        run_online_experiment,
    )

    config = phased_experiment_config(
        shift_after=args.shift, quick=not args.full
    )
    exp = Experiment(config)
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else _store(args))
    report = run_online_experiment(
        exp,
        OnlineConfig(
            epochs=args.epochs,
            period=args.period,
            threshold=args.threshold,
            refresh_threshold=args.refresh_threshold,
            top_k=args.top_k,
            combo=args.combo,
            shift_after=args.shift,
        ),
    )
    if args.json:
        out.write(json.dumps(report.to_dict(), indent=2) + "\n")
    else:
        out.write(report.render())
    _emit_runlog(exp, args)
    if args.check and not report.passes():
        sys.stderr.write(
            f"online check FAILED: recovery={report.recovery_ratio:.3f} "
            f"(need <= 1.10), final adaptive={report.final.adaptive_mpki:.3f} "
            f"vs static={report.final.static_mpki:.3f} MPKI\n"
        )
        return 1
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.serve import LayoutServer, ServerConfig

    exp = _experiment(args)
    _ = exp.app  # build (or load) the binary before binding
    server = LayoutServer(
        exp.app.binary,
        store=exp.store,
        config=ServerConfig(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            queue_limit=args.queue_limit,
            workers=args.workers,
            verify=not args.no_verify,
            static_fallback=args.profile_source != "measured",
        ),
    )

    async def run() -> None:
        await server.start()
        out.write(
            f"layout server for binary {exp.app.binary.name!r} "
            f"listening on {server.address} "
            f"(queue limit {args.queue_limit}, workers {args.workers}, "
            f"cold-start {args.profile_source})\n"
        )
        out.flush()
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    _emit_runlog(exp, args)
    return 0


def _fleet_experiment(args):
    from repro.harness.experiment import Experiment
    from repro.online import phased_experiment_config

    config = phased_experiment_config(
        shift_after=args.shift, quick=not args.full
    )
    exp = Experiment(config)
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else _store(args))
    return exp


def _cmd_fleet(args, out) -> int:
    import json

    from repro.serve import FleetConfig, run_fleet

    address = None
    if args.connect:
        if args.kill_after is not None:
            sys.stderr.write(
                "fleet: --connect and --kill-after are incompatible (the "
                "driver can only kill servers it owns)\n"
            )
            return 2
        if args.connect.count(":") == 1:
            host, _, port = args.connect.partition(":")
            address = (host, int(port))
        else:
            address = args.connect  # unix socket path

    exp = _fleet_experiment(args)
    base = dict(
        clients=args.clients,
        epochs=args.epochs,
        combo=args.combo,
        queue_limit=args.queue_limit,
        workers=args.workers,
    )
    scenarios = [
        (
            "degraded" if args.kill_after is not None else "healthy",
            FleetConfig(kill_after=args.kill_after, **base),
        )
    ]
    if args.check and args.kill_after is None and address is None:
        scenarios.append(
            (
                "degraded",
                FleetConfig(kill_after=max(1, args.epochs // 2), **base),
            )
        )

    reports = {}
    for name, config in scenarios:
        reports[name] = run_fleet(exp, config, address=address)

    if args.json:
        out.write(
            json.dumps(
                {name: r.to_dict() for name, r in reports.items()}, indent=2
            )
            + "\n"
        )
    else:
        for name, report in reports.items():
            out.write(report.render() + "\n")

    if args.save_json:
        from repro.harness import write_benchmark_json
        from repro.harness.figures import Table

        rows = []
        for name, report in reports.items():
            healthy = report.healthy_epochs
            rows.append(
                [
                    f"{name}_requests_served",
                    int(all(e.served == e.requests for e in report.epochs)),
                ]
            )
            rows.append([f"{name}_gate_ok",
                         int(all(e.gate_ok for e in report.epochs))])
            if healthy:
                rows.append(
                    [
                        f"{name}_optimizations_bounded",
                        int(
                            report.optimizations
                            <= min(2 * len(healthy), 8)
                        ),
                    ]
                )
            if report.degraded_epochs:
                rows.append(
                    [f"{name}_fallbacks_used", int(report.fallbacks > 0)]
                )
                rows.append(
                    [
                        f"{name}_decay_bounded",
                        int(report.decay_ratio <= 3.0),
                    ]
                )
            rows.append([f"{name}_pass", int(report.passes())])
        table = Table(
            title="serve fleet acceptance (1 = pass)",
            columns=["metric", "ratio_ok"],
            rows=rows,
            notes=[
                f"{name}: {r.requests} requests, {r.optimizations} "
                f"optimizations, {r.coalesced} coalesced, "
                f"{r.cache_hits} cache hits, {r.fallbacks} fallbacks, "
                f"queue-wait p95 {r.queue_wait_p95_ms:.1f} ms, "
                f"decay {r.decay_ratio:.3f} (informational, not gated)"
                for name, r in reports.items()
            ],
        )
        write_benchmark_json(
            "serve",
            table,
            args.save_json,
            extra={
                "scenarios": {
                    name: r.to_dict() for name, r in reports.items()
                },
                "queue_wait_p95_ms": max(
                    r.queue_wait_p95_ms for r in reports.values()
                ),
            },
        )
    _emit_runlog(exp, args)

    failed = {name: r for name, r in reports.items() if not r.passes()}
    if args.check and failed:
        for name, report in failed.items():
            sys.stderr.write(
                f"fleet check FAILED ({name}): {report.requests} requests, "
                f"{report.optimizations} optimizations, "
                f"{report.fallbacks} fallbacks, "
                f"decay {report.decay_ratio:.3f}, "
                f"{len(report.unhandled_errors)} unhandled error(s)\n"
            )
        return 1
    return 0


def _cmd_cache(args, out) -> int:
    store = _store(args)
    if args.action == "clear":
        removed = store.clear()
        out.write(f"cleared {removed} cached experiment(s) from {store.root}\n")
        return 0
    info = store.info()
    out.write(
        f"cache dir:    {info.root}\n"
        f"experiments:  {info.experiments}\n"
        f"files:        {info.files}\n"
        f"total size:   {info.total_bytes / (1024 * 1024):.2f} MB\n"
    )
    return 0


def _cmd_summary(args, out) -> int:
    import pathlib

    results = pathlib.Path(args.results_dir)
    files = sorted(results.glob("*.txt")) if results.is_dir() else []
    if not files:
        out.write(
            f"no result tables in {results}/ -- run "
            f"`pytest benchmarks/ --benchmark-only` first\n"
        )
        return 1
    for path in files:
        out.write(f"==== {path.name} {'=' * max(1, 60 - len(path.name))}\n")
        out.write(path.read_text().rstrip() + "\n\n")
    return 0


def _cmd_report(args, out) -> int:
    from repro.obs.report import render_html, render_report

    text = render_report(args.results_dir, trace_path=args.trace_file)
    if args.html:
        text = render_html(text)
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        out.write(f"wrote {args.out}\n")
    else:
        out.write(text)
    return 0


def _cmd_bench_diff(args, out) -> int:
    from repro.obs.benchdiff import compare_dirs

    report = compare_dirs(
        args.fresh_dir,
        args.baseline,
        threshold_pct=args.threshold,
        wall_time=args.wall_time,
    )
    out.write(report.render())
    return 0 if report.ok else 1


def _cmd_lint(args, out) -> int:
    import json as _json

    from repro.check import (
        CheckReport,
        check_all,
        check_layout,
        check_profile,
        scan_deprecated_calls,
    )
    from repro.harness.store import load_layout, load_profile
    from repro.ir import assign_addresses
    from repro.layout import ALL_COMBOS

    exp = _experiment(args)
    report = CheckReport()

    # When --scan is the only selection, run just the AST scan: the
    # artifact lint of every combo would dominate the runtime and (being
    # clean by construction) only bury the scan findings -- and --strict
    # must gate on DEP* findings alone.
    scan_only = bool(args.scan) and not (
        args.layout or args.profile or args.combo or args.static_diff
    )

    if scan_only:
        pass
    elif args.layout or args.profile:
        # Artifact mode: lint saved files against the app binary.
        binary = exp.app.binary
        for path in args.layout or ():
            # No binary validation on load: lint must *report* a corrupt
            # layout, not crash on it.
            layout = load_layout(path)
            structure = check_layout(binary, layout, target=path)
            report.extend(structure)
            if structure.ok:
                amap = assign_addresses(binary, layout)
                report.extend(
                    check_layout(binary, layout, amap, target=path)
                )
        for path in args.profile or ():
            profile = load_profile(binary, path)
            report.extend(check_profile(binary, profile, target=path))
    else:
        combos = args.combo or list(ALL_COMBOS)
        for label, binary, profile, optimizer in (
            ("app", exp.app.binary, exp.profile, exp.optimizer),
            ("kernel", exp.kernel.binary, exp.kernel_profile, exp.kernel_optimizer),
        ):
            report.extend(check_profile(binary, profile, target=f"profile:{label}"))
            for combo in combos:
                layout = optimizer.layout(combo)
                amap = assign_addresses(binary, layout)
                report.extend(
                    check_all(
                        binary, profile, layout, amap,
                        target=f"{label}/{combo}",
                    )
                )

    if args.static_diff:
        from repro.check import check_static_diff

        for label, binary, measured, kernel in (
            ("app", exp.app.binary, exp.profile, False),
            ("kernel", exp.kernel.binary, exp.kernel_profile, True),
        ):
            report.extend(
                check_static_diff(
                    binary, measured, exp.static_profile(kernel=kernel),
                    target=f"static-diff:{label}",
                )
            )

    if not args.no_deprecations:
        roots = args.scan or [
            r for r in ("src", "benchmarks", "tools") if os.path.isdir(r)
        ]
        for diagnostic in scan_deprecated_calls(roots):
            report.add(diagnostic)

    if args.json:
        out.write(_json.dumps(report.to_json(), indent=2) + "\n")
    else:
        out.write(report.render())
    _emit_runlog(exp, args)
    if args.strict and not report.ok:
        return 1
    return 0


def _cmd_scenarios(args, out) -> int:
    import json as _json
    import pathlib

    from repro import scenarios as scn
    from repro.errors import ScenarioError

    if args.scenarios_command == "report":
        path = pathlib.Path(args.results_dir) / "BENCH_scenarios.json"
        if not path.is_file():
            sys.stderr.write(
                f"no {path} -- run 'repro scenarios run --save-json "
                f"{args.results_dir}' first\n"
            )
            return 2
        text = scn.render_scenarios_report(_json.loads(path.read_text()))
        if args.out:
            pathlib.Path(args.out).write_text(text)
            out.write(f"wrote {args.out}\n")
        else:
            out.write(text)
        return 0

    try:
        if args.matrix:
            specs = scn.load_specs(args.matrix)
        else:
            specs = scn.default_matrix(quick=not args.full)
        if args.select:
            specs = scn.select_specs(specs, args.select)
        if args.profile_source:
            import dataclasses

            specs = [
                dataclasses.replace(
                    s, profile_source=args.profile_source
                ).validate()
                for s in specs
            ]

        if args.scenarios_command == "list":
            from repro.harness.figures import Table

            table = Table(
                title="Scenario matrix cells",
                columns=["scenario", "workload", "hierarchy", "combo",
                         "drift", "engine", "scope", "source",
                         "fingerprint"],
                rows=[
                    [s.name, s.workload.family, s.hierarchy.label, s.combo,
                     s.drift, s.engine, s.scope, s.profile_source,
                     s.fingerprint()]
                    for s in specs
                ],
                notes=["source: " + (args.matrix or "built-in default matrix")],
            )
            out.write(table.render() + "\n")
            return 0

        store = None if args.no_cache else _store(args)
        result = scn.run_matrix(
            specs,
            store=store,
            jobs=args.jobs,
            fresh=args.fresh,
            verify=not args.no_verify,
        )
    except ScenarioError as exc:
        sys.stderr.write(f"scenarios: {exc}\n")
        return 2
    out.write(result.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("scenarios", result.to_document(), args.save_json)
    if args.report_path:
        pathlib.Path(args.report_path).write_text(
            scn.render_scenarios_report(result.to_document())
        )
        out.write(f"wrote {args.report_path}\n")
    if args.check and not result.passes():
        sys.stderr.write(
            "scenarios check FAILED: "
            f"{len(result.failed)} failed cell(s), "
            f"gates {'ok' if all(c.gate_ok for c in result.cells) else 'VIOLATED'}, "
            f"ordering {'ok' if result.ordering_ok() else 'VIOLATED'}\n"
        )
        return 1
    return 0


def _cmd_static_bench(args, out) -> int:
    from repro import scenarios as scn
    from repro.errors import ScenarioError
    from repro.scenarios.staticbench import (
        DEFAULT_CELLS,
        GATE_MIN_RATIO,
        run_static_bench,
    )

    try:
        specs = scn.select_specs(
            scn.default_matrix(quick=not args.full),
            args.select or list(DEFAULT_CELLS),
        )
        result = run_static_bench(
            specs,
            store=None if args.no_cache else _store(args),
            jobs=args.jobs,
        )
    except ScenarioError as exc:
        sys.stderr.write(f"static-bench: {exc}\n")
        return 2
    table = result.to_table()
    out.write(table.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("staticpred", table, args.save_json)
    if args.check and not result.passes():
        sys.stderr.write(
            f"static-bench check FAILED: mean OLTP static recovery ratio "
            f"{result.gate_ratio:.3f} (need >= {GATE_MIN_RATIO:g})\n"
        )
        return 1
    return 0


def _cmd_trace_export(args, out) -> int:
    from repro.obs.chrome import export_chrome_trace

    out_path = args.out or f"{args.trace_file}.chrome.json"
    written = export_chrome_trace(args.trace_file, out_path)
    out.write(f"wrote {written}\n")
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro import obs

    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.trace:
        obs.enable(trace_path=args.trace)
    handlers = {
        "info": _cmd_info,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "sim-bench": _cmd_sim_bench,
        "ablation": _cmd_ablation,
        "online": _cmd_online,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "scenarios": _cmd_scenarios,
        "static-bench": _cmd_static_bench,
        "cache": _cmd_cache,
        "summary": _cmd_summary,
        "report": _cmd_report,
        "bench-diff": _cmd_bench_diff,
        "trace-export": _cmd_trace_export,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args, out)
    finally:
        if args.trace:
            obs.flush_metrics()
            obs.disable()
