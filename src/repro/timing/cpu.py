"""Non-idle execution-cycle estimator (the paper's Figure 15 metric).

An in-order model: cycles = instructions x base CPI, plus instruction
fetch stalls (L1I misses split into L2-hit and L2-miss refills), iTLB
refills, and the data-side stalls.  Elapsed time is deliberately NOT
modeled -- the paper itself switches to non-idle cycles because layout
optimizations make the workload more I/O bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.dcache import simulate_dcache
from repro.cache.l2 import simulate_l1i_misses, simulate_l2
from repro.cache.tlb import simulate_itlb
from repro.timing.platforms import Platform


@dataclass
class CycleBreakdown:
    """Where the cycles went."""

    platform: str
    instructions: int
    base_cycles: float
    icache_stall: float
    itlb_stall: float
    data_stall: float
    icache_misses: int
    l2_instr_misses: int
    l2_data_misses: int
    itlb_misses: int
    dcache_misses: int

    @property
    def total_cycles(self) -> float:
        return self.base_cycles + self.icache_stall + self.itlb_stall + self.data_stall


def estimate_cycles(
    instruction_streams: List[Tuple[np.ndarray, np.ndarray]],
    platform: Platform,
    data_streams: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None,
) -> CycleBreakdown:
    """Estimate non-idle cycles for per-CPU instruction (and data) streams.

    Args:
        instruction_streams: (starts, counts) fetch spans per CPU.
        platform: Machine model.
        data_streams: Optional (addresses, positions) per CPU.
    """
    instructions = sum(int(c.sum()) for _, c in instruction_streams)

    # L1I per CPU; collect refill streams for the L2.
    icache_misses = 0
    refills: List[Tuple[np.ndarray, np.ndarray]] = []
    for starts, counts in instruction_streams:
        addresses, positions = simulate_l1i_misses(starts, counts, platform.icache)
        icache_misses += len(addresses)
        refills.append((addresses, positions))

    dcache_misses = 0
    if data_streams:
        for cpu, (addresses, positions) in enumerate(data_streams):
            result = simulate_dcache(addresses, platform.dcache, positions)
            dcache_misses += result.misses
            refills[cpu] = (
                np.concatenate([refills[cpu][0], result.miss_addresses]),
                np.concatenate([refills[cpu][1], result.miss_positions]),
            )

    l2 = simulate_l2(refills, platform.l2)
    tlb = simulate_itlb(instruction_streams, entries=platform.itlb_entries)

    base_cycles = instructions * platform.cpi_base
    icache_stall = (
        icache_misses * platform.l1_miss_penalty
        + l2.misses_instr * platform.l2_miss_penalty
    )
    itlb_stall = tlb.misses * platform.itlb_penalty
    data_stall = (
        dcache_misses * platform.l1_miss_penalty
        + l2.misses_data * platform.l2_miss_penalty
    )
    return CycleBreakdown(
        platform=platform.name,
        instructions=instructions,
        base_cycles=base_cycles,
        icache_stall=icache_stall,
        itlb_stall=itlb_stall,
        data_stall=data_stall,
        icache_misses=icache_misses,
        l2_instr_misses=l2.misses_instr,
        l2_data_misses=l2.misses_data,
        itlb_misses=tlb.misses,
        dcache_misses=dcache_misses,
    )


def relative_execution_time(
    breakdowns: dict, baseline: str = "base"
) -> dict:
    """Per-combo cycles normalized to the baseline (Fig 15 y-axis, %)."""
    base_total = breakdowns[baseline].total_cycles
    return {
        combo: 100.0 * b.total_cycles / base_total for combo, b in breakdowns.items()
    }
