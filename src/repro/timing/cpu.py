"""Non-idle execution-cycle estimator (the paper's Figure 15 metric).

An in-order model: cycles = instructions x base CPI, plus instruction
fetch stalls (L1I misses split into L2-hit and L2-miss refills), iTLB
refills, and the data-side stalls.  Elapsed time is deliberately NOT
modeled -- the paper itself switches to non-idle cycles because layout
optimizations make the workload more I/O bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sim import MemoryHierarchy, simulate
from repro.timing.platforms import Platform


@dataclass
class CycleBreakdown:
    """Where the cycles went."""

    platform: str
    instructions: int
    base_cycles: float
    icache_stall: float
    itlb_stall: float
    data_stall: float
    icache_misses: int
    l2_instr_misses: int
    l2_data_misses: int
    itlb_misses: int
    dcache_misses: int

    @property
    def total_cycles(self) -> float:
        return self.base_cycles + self.icache_stall + self.itlb_stall + self.data_stall


def estimate_cycles(
    instruction_streams: List[Tuple[np.ndarray, np.ndarray]],
    platform: Platform,
    data_streams: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None,
) -> CycleBreakdown:
    """Estimate non-idle cycles for per-CPU instruction (and data) streams.

    Args:
        instruction_streams: (starts, counts) fetch spans per CPU.
        platform: Machine model.
        data_streams: Optional (addresses, positions) per CPU.
    """
    result = simulate(
        instruction_streams,
        MemoryHierarchy.from_platform(platform),
        data_streams=data_streams,
    )
    instructions = result.instructions
    dcache_misses = result.dcache.misses if result.dcache else 0

    base_cycles = instructions * platform.cpi_base
    icache_stall = (
        result.l1i_misses * platform.l1_miss_penalty
        + result.l2.misses_instr * platform.l2_miss_penalty
    )
    itlb_stall = result.itlb.misses * platform.itlb_penalty
    data_stall = (
        dcache_misses * platform.l1_miss_penalty
        + result.l2.misses_data * platform.l2_miss_penalty
    )
    return CycleBreakdown(
        platform=platform.name,
        instructions=instructions,
        base_cycles=base_cycles,
        icache_stall=icache_stall,
        itlb_stall=itlb_stall,
        data_stall=data_stall,
        icache_misses=result.l1i_misses,
        l2_instr_misses=result.l2.misses_instr,
        l2_data_misses=result.l2.misses_data,
        itlb_misses=result.itlb.misses,
        dcache_misses=dcache_misses,
    )


def relative_execution_time(
    breakdowns: dict, baseline: str = "base"
) -> dict:
    """Per-combo cycles normalized to the baseline (Fig 15 y-axis, %)."""
    base_total = breakdowns[baseline].total_cycles
    return {
        combo: 100.0 * b.total_cycles / base_total for combo, b in breakdowns.items()
    }
