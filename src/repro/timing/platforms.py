"""Alpha platform parameter sets used in the paper's experiments.

Latencies are in CPU cycles at each platform's clock; they follow the
published characteristics of the 21164 (AlphaServer 4100, 300 MHz),
the 21264 (AlphaServer DS20, 600 MHz), and the paper's SimOS
approximation of a 1 GHz 21364-class system (12 ns L2, 80 ns memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.icache import CacheGeometry


@dataclass(frozen=True)
class Platform:
    """One machine model for the non-idle-cycle estimator."""

    name: str
    icache: CacheGeometry
    itlb_entries: int
    l2: CacheGeometry
    #: Base CPI of the pipeline for non-memory work.
    cpi_base: float
    #: L1 instruction miss penalty when the L2 hits (cycles).
    l1_miss_penalty: float
    #: Additional penalty when the L2 also misses (cycles).
    l2_miss_penalty: float
    #: iTLB refill penalty (cycles).
    itlb_penalty: float
    #: L1 data cache for the data-side stream.
    dcache: CacheGeometry

    def __str__(self) -> str:
        return self.name


#: AlphaServer 4100: 300 MHz 21164, 8KB direct-mapped I-cache, 48-entry
#: iTLB, 2MB direct-mapped board cache.
ALPHA_21164 = Platform(
    name="21164 (8KB, 1-way)",
    icache=CacheGeometry(8 * 1024, 32, 1),
    itlb_entries=48,
    l2=CacheGeometry(2 * 1024 * 1024, 64, 1),
    cpi_base=1.4,
    l1_miss_penalty=10.0,
    l2_miss_penalty=60.0,
    itlb_penalty=30.0,
    dcache=CacheGeometry(8 * 1024, 32, 1),
)

#: AlphaServer DS20: 600 MHz 21264, 64KB 2-way I-cache.
ALPHA_21264 = Platform(
    name="21264 (64KB, 2-way)",
    icache=CacheGeometry(64 * 1024, 64, 2),
    itlb_entries=128,
    l2=CacheGeometry(4 * 1024 * 1024, 64, 1),
    cpi_base=1.1,
    l1_miss_penalty=14.0,
    l2_miss_penalty=90.0,
    itlb_penalty=40.0,
    dcache=CacheGeometry(64 * 1024, 64, 2),
)

#: The paper's SimOS configuration approximating a 1 GHz 21364-class
#: chip: 64KB 2-way L1s, 1.5MB 6-way on-chip L2, 12ns L2 / 80ns memory.
ALPHA_21364_SIM = Platform(
    name="21364-sim (64KB, 2-way)",
    icache=CacheGeometry(64 * 1024, 64, 2),
    itlb_entries=64,
    l2=CacheGeometry(1536 * 1024, 64, 6),
    cpi_base=1.0,
    l1_miss_penalty=12.0,
    l2_miss_penalty=68.0,
    itlb_penalty=50.0,
    dcache=CacheGeometry(64 * 1024, 64, 2),
)

PLATFORMS = (ALPHA_21164, ALPHA_21264, ALPHA_21364_SIM)
