"""Execution-time model: platforms and the non-idle-cycle estimator."""

from repro.timing.cpu import CycleBreakdown, estimate_cycles, relative_execution_time
from repro.timing.platforms import (
    ALPHA_21164,
    ALPHA_21264,
    ALPHA_21364_SIM,
    PLATFORMS,
    Platform,
)

__all__ = [
    "ALPHA_21164",
    "ALPHA_21264",
    "ALPHA_21364_SIM",
    "CycleBreakdown",
    "PLATFORMS",
    "Platform",
    "estimate_cycles",
    "relative_execution_time",
]
