"""Profile collection: Pixie-style exact counting and DCPI-style sampling."""

from repro.profiles.dcpi import DcpiProfiler, LbrSampler
from repro.profiles.pixie import PixieProfiler
from repro.profiles.profile import Profile

__all__ = ["DcpiProfiler", "LbrSampler", "PixieProfiler", "Profile"]
