"""Profile data structures: what Spike consumes.

A :class:`Profile` carries basic-block execution counts plus measured
control-flow transition counts for one binary.  Block counts live in a
flat numpy array indexed by global block id; edge counts in a dict
keyed by ``(src_bid, dst_bid)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.ir import Binary


class Profile:
    """Execution profile of a binary.

    Attributes:
        binary: The profiled binary.
        block_counts: ``int64`` array, execution count per block id.
        edge_counts: Transition counts ``(src, dst) -> count`` for
            intra-procedure control-flow edges and call/return
            transitions observed during profiling.
    """

    def __init__(self, binary: Binary) -> None:
        self.binary = binary
        self.block_counts = np.zeros(binary.num_blocks, dtype=np.int64)
        self.edge_counts: Dict[Tuple[int, int], int] = defaultdict(int)

    @property
    def total_blocks_executed(self) -> int:
        return int(self.block_counts.sum())

    @property
    def total_instructions(self) -> int:
        """Dynamic instruction count implied by the block counts."""
        sizes = np.array([b.size for b in self.binary.blocks()], dtype=np.int64)
        return int((self.block_counts * sizes).sum())

    def count(self, bid: int) -> int:
        return int(self.block_counts[bid])

    def fingerprint(self) -> str:
        """Stable content hash of the profile data.

        Two profiles of the same binary with identical block and edge
        counts hash identically, so cached artifacts derived from a
        profile (layouts, address maps) can be keyed by it.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(self.binary.name.encode())
        digest.update(np.ascontiguousarray(self.block_counts).tobytes())
        for edge in sorted(self.edge_counts):
            count = self.edge_counts[edge]
            if count:
                digest.update(f"{edge[0]},{edge[1]}:{count};".encode())
        return digest.hexdigest()[:20]

    def merge(self, other: "Profile") -> "Profile":
        """Accumulate another profile of the same binary into this one."""
        if other.binary is not self.binary:
            raise ProfileError("cannot merge profiles of different binaries")
        self.block_counts += other.block_counts
        for edge, count in other.edge_counts.items():
            self.edge_counts[edge] += count
        return self

    def hot_blocks(self, threshold: int = 1) -> List[int]:
        """Block ids executed at least ``threshold`` times."""
        return [int(b) for b in np.nonzero(self.block_counts >= threshold)[0]]

    def proc_counts(self) -> Dict[str, int]:
        """Invocation count per procedure (= entry-block count)."""
        return {
            name: int(self.block_counts[self.binary.entry_bid(name)])
            for name in self.binary.proc_order()
        }

    def coverage(self, footprint_bytes: int) -> float:
        """Fraction of dynamic instructions captured by the hottest
        ``footprint_bytes`` of static code (the paper's Figure 3 curve).
        """
        from repro.analysis.footprint import execution_profile_curve

        sizes, fractions = execution_profile_curve(self)
        captured = 0.0
        for size, frac in zip(sizes, fractions):
            if size > footprint_bytes:
                break
            captured = frac
        return captured

    def validate(self) -> None:
        """Sanity-check edge counts against block counts.

        The number of times control leaves a block along measured edges
        can never exceed the block's execution count.
        """
        outgoing: Dict[int, int] = defaultdict(int)
        for (src, _dst), count in self.edge_counts.items():
            outgoing[src] += count
        for src, total in outgoing.items():
            if total > self.block_counts[src]:
                raise ProfileError(
                    f"block {src}: {total} outgoing transitions measured but "
                    f"only {self.block_counts[src]} executions"
                )
