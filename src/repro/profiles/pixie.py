"""Pixie-style exact profiling (instrumented counting).

The real Pixie instruments every basic block of the binary and counts
executions exactly.  Our equivalent consumes per-process basic-block
traces (global block ids in execution order) and produces exact block
and transition counts.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Binary
from repro.profiles.profile import Profile


class PixieProfiler:
    """Exact block/edge counter over basic-block traces.

    Feed one stream per process via :meth:`add_stream` (edge counting
    must not cross process boundaries), then call :meth:`profile`.
    """

    def __init__(self, binary: Binary) -> None:
        self._profile = Profile(binary)

    def add_stream(self, block_trace) -> None:
        """Accumulate one process's block trace (iterable of block ids)."""
        trace = np.asarray(block_trace, dtype=np.int64)
        if trace.size == 0:
            return
        counts = np.bincount(trace, minlength=self._profile.binary.num_blocks)
        self._profile.block_counts += counts.astype(np.int64)
        # Transition counts: count every adjacent (src, dst) pair.
        if trace.size >= 2:
            src = trace[:-1]
            dst = trace[1:]
            # Pack pairs into single ints for fast unique-counting.
            n = self._profile.binary.num_blocks
            packed = src * n + dst
            uniq, cnt = np.unique(packed, return_counts=True)
            for key, c in zip(uniq.tolist(), cnt.tolist()):
                edge = (key // n, key % n)
                self._profile.edge_counts[edge] += int(c)

    def profile(self) -> Profile:
        """The accumulated profile."""
        return self._profile
