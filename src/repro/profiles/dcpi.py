"""DCPI-style PC-sampling profiler (plus an LBR-style burst sampler).

DCPI samples the program counter on performance-counter overflow.  Our
equivalent walks a block trace, advancing a virtual instruction clock,
and records a sample every ``period`` instructions.  Block counts are
then *estimated* by scaling sample hits by the sampling period and
dividing by block size (a sample lands in a block with probability
proportional to ``count * size``).

Edge counts cannot be recovered from PC samples; DCPI-based profiles
leave ``edge_counts`` empty and downstream consumers fall back to the
block-count estimator (``flow_graph_from_block_counts``), exactly the
situation the paper describes for kernel profiling with kprofile.

:class:`LbrSampler` extends the estimator the way production online
optimizers (BOLT, Propeller) do: each PC sample also captures the
short burst of control-flow transitions that led up to it, the way a
last-branch-record (LBR) buffer would.  Those bursts yield *estimated*
edge counts, which is what lets a layout rebuilt from samples approach
the quality of a full instrumented profile.

Both profilers keep a persistent sampling phase: the virtual clock
runs continuously across ``add_stream`` calls *and* across epoch
snapshots (:meth:`DcpiProfiler.take_epoch`), so feeding a trace in
arbitrary chunks — including chunks shorter than the distance to the
next sample — yields exactly the same samples as feeding it whole.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from repro.ir import Binary
from repro.profiles.profile import Profile


class DcpiProfiler:
    """Sampling profiler over basic-block traces."""

    def __init__(self, binary: Binary, period: int = 4096) -> None:
        if period < 1:
            raise ValueError(f"sampling period must be >= 1, got {period}")
        self.binary = binary
        self.period = period
        self._sizes = np.array([b.size for b in binary.blocks()], dtype=np.int64)
        self._sample_hits = np.zeros(binary.num_blocks, dtype=np.int64)
        # Instructions executed since the last sample.  Carried across
        # add_stream calls and epoch snapshots so short/partial chunks
        # never silently drop pending samples.
        self._phase = 0

    def add_stream(self, block_trace) -> None:
        """Accumulate samples from one process's block trace.

        The trace may arrive in chunks of any length; a chunk shorter
        than the remaining sampling phase contributes no samples but
        still advances the phase, so the next chunk picks up exactly
        where this one left off.
        """
        trace = np.asarray(block_trace, dtype=np.int64)
        if trace.size == 0:
            return
        sizes = self._sizes[trace]
        ends = np.cumsum(sizes)
        total = int(ends[-1])
        # Sample positions in this stream's instruction timeline.
        first = self.period - self._phase
        positions = np.arange(first, total + 1, self.period)
        if positions.size:
            # Which block does each sampled instruction land in?
            idx = np.searchsorted(ends, positions - 1, side="right")
            self._record_samples(trace, idx)
        self._phase = (self._phase + total) % self.period

    def _record_samples(self, trace: np.ndarray, idx: np.ndarray) -> None:
        """Record the samples at trace indices ``idx`` (hook point)."""
        np.add.at(self._sample_hits, trace[idx], 1)

    def profile(self) -> Profile:
        """Estimated profile: counts ~= hits * period / block_size."""
        prof = Profile(self.binary)
        est = self._sample_hits * self.period / np.maximum(self._sizes, 1)
        prof.block_counts = np.rint(est).astype(np.int64)
        return prof

    def take_epoch(self) -> Profile:
        """Snapshot-and-reset: the estimated profile of everything
        sampled since the previous ``take_epoch`` (or construction).

        Sample hits reset to zero for the next epoch, but the sampling
        phase is *carried across the boundary* — recreating the
        profiler per epoch would restart the virtual clock and silently
        drop the partial period straddling the epoch boundary.
        """
        prof = self.profile()
        self._reset_hits()
        return prof

    def _reset_hits(self) -> None:
        self._sample_hits[:] = 0

    @property
    def phase(self) -> int:
        """Instructions executed since the last sample (< period)."""
        return self._phase

    @property
    def samples_taken(self) -> int:
        return int(self._sample_hits.sum())


class LbrSampler(DcpiProfiler):
    """PC sampling plus LBR-style branch-burst capture.

    Every sample also records the last ``burst_width`` block
    transitions preceding the sampled instruction, scaled by
    ``period // burst_width`` so the edge estimates land on roughly
    the same scale as the block-count estimates.  Bursts never cross
    ``add_stream`` boundaries (a real LBR buffer is flushed on context
    switch, and callers feed per-CPU or per-process chunks).
    """

    def __init__(
        self, binary: Binary, period: int = 4096, burst_width: int = 32
    ) -> None:
        super().__init__(binary, period)
        if burst_width < 1:
            raise ValueError(f"burst width must be >= 1, got {burst_width}")
        self.burst_width = burst_width
        self._edge_hits: Dict[Tuple[int, int], int] = defaultdict(int)

    def _record_samples(self, trace: np.ndarray, idx: np.ndarray) -> None:
        super()._record_samples(trace, idx)
        width = self.burst_width
        scale = max(1, self.period // width)
        edges = self._edge_hits
        for i in idx.tolist():
            lo = max(0, i - width)
            burst = trace[lo:i + 1].tolist()
            for src, dst in zip(burst, burst[1:]):
                edges[(src, dst)] += scale

    def profile(self) -> Profile:
        """Estimated profile including burst-derived edge estimates.

        Edge counts are sampling *estimates*: they carry the relative
        weights chaining needs, but are not guaranteed consistent with
        the block counts the way an instrumented (Pixie) profile is —
        do not ``validate()`` them.
        """
        prof = super().profile()
        for edge, count in self._edge_hits.items():
            prof.edge_counts[edge] = count
        return prof

    def _reset_hits(self) -> None:
        super()._reset_hits()
        self._edge_hits.clear()
