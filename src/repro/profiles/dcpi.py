"""DCPI-style PC-sampling profiler.

DCPI samples the program counter on performance-counter overflow.  Our
equivalent walks a block trace, advancing a virtual instruction clock,
and records a sample every ``period`` instructions.  Block counts are
then *estimated* by scaling sample hits by the sampling period and
dividing by block size (a sample lands in a block with probability
proportional to ``count * size``).

Edge counts cannot be recovered from PC samples; DCPI-based profiles
leave ``edge_counts`` empty and downstream consumers fall back to the
block-count estimator (``flow_graph_from_block_counts``), exactly the
situation the paper describes for kernel profiling with kprofile.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Binary
from repro.profiles.profile import Profile


class DcpiProfiler:
    """Sampling profiler over basic-block traces."""

    def __init__(self, binary: Binary, period: int = 4096) -> None:
        if period < 1:
            raise ValueError(f"sampling period must be >= 1, got {period}")
        self.binary = binary
        self.period = period
        self._sizes = np.array([b.size for b in binary.blocks()], dtype=np.int64)
        self._sample_hits = np.zeros(binary.num_blocks, dtype=np.int64)
        self._phase = 0  # instructions until next sample

    def add_stream(self, block_trace) -> None:
        """Accumulate samples from one process's block trace."""
        trace = np.asarray(block_trace, dtype=np.int64)
        if trace.size == 0:
            return
        sizes = self._sizes[trace]
        ends = np.cumsum(sizes)
        starts = ends - sizes
        total = int(ends[-1])
        # Sample positions in this stream's instruction timeline.
        first = self.period - self._phase
        positions = np.arange(first, total + 1, self.period)
        if positions.size:
            # Which block does each sampled instruction land in?
            idx = np.searchsorted(ends, positions - 1, side="right")
            np.add.at(self._sample_hits, trace[idx], 1)
        self._phase = (self._phase + total) % self.period

    def profile(self) -> Profile:
        """Estimated profile: counts ~= hits * period / block_size."""
        prof = Profile(self.binary)
        est = self._sample_hits * self.period / np.maximum(self._sizes, 1)
        prof.block_counts = np.rint(est).astype(np.int64)
        return prof

    @property
    def samples_taken(self) -> int:
        return int(self._sample_hits.sum())
