"""Service-family subcommands: ``serve`` (run the layout-optimization
service) and ``fleet`` (simulate client nodes against it)."""

from __future__ import annotations

import sys
from typing import Dict

from repro.staticpred import PROFILE_SOURCES

from repro.cli._common import emit_runlog, experiment_from, store_from


def register(sub, shared) -> Dict:
    """Declare the ``serve``/``fleet`` subparsers; returns handlers."""
    serve = sub.add_parser(
        "serve",
        help="run the layout-optimization service for the app binary",
        parents=[shared],
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind host (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP bind port (default 0 = OS-assigned; printed on start)",
    )
    serve.add_argument(
        "--unix", default=None, metavar="PATH",
        help="bind a unix domain socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="optimizations in flight before requests are REJECTED "
        "(default 8)",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="optimization worker processes (default 0 = in-process "
        "thread pool)",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip the repro.check gate on outgoing layouts (not advised)",
    )
    serve.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="static",
        help="cold-start answer for layout requests with no cached "
        "profile (default static: serve a check-gated layout built "
        "from the static prediction; 'measured' disables the fallback "
        "and rejects unknown fingerprints)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="simulate a fleet of client nodes against the layout service",
        parents=[shared],
    )
    fleet.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent client nodes (default 8)",
    )
    fleet.add_argument(
        "--epochs", type=int, default=4, metavar="N",
        help="trace epochs = distinct drifting profiles (default 4)",
    )
    fleet.add_argument(
        "--combo", default="all",
        help="optimization combination requested (default 'all')",
    )
    fleet.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="server admission-control limit (default 8)",
    )
    fleet.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="server optimization workers (default 0 = thread pool)",
    )
    fleet.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="degraded mode: kill the server after N epochs; clients "
        "finish on last-known-good layouts",
    )
    fleet.add_argument(
        "--connect", default=None, metavar="HOST:PORT|PATH",
        help="drive an already-running server instead of starting one "
        "in-process (incompatible with --kill-after)",
    )
    fleet.add_argument(
        "--shift", type=int, default=5, metavar="N",
        help="TPC-B transactions per client before the DSS shift "
        "(default 5; drives the profile drift between epochs)",
    )
    fleet.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    fleet.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the acceptance gate as BENCH_serve.json under DIR "
        "(compare runs with 'bench-diff')",
    )
    fleet.add_argument(
        "--check", action="store_true",
        help="run the healthy AND degraded scenarios and exit 1 unless "
        "both pass the acceptance gates",
    )
    return {"serve": _cmd_serve, "fleet": _cmd_fleet}


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.serve import LayoutServer, ServerConfig

    exp = experiment_from(args)
    _ = exp.app  # build (or load) the binary before binding
    server = LayoutServer(
        exp.app.binary,
        store=exp.store,
        config=ServerConfig(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            queue_limit=args.queue_limit,
            workers=args.workers,
            verify=not args.no_verify,
            static_fallback=args.profile_source != "measured",
        ),
    )

    async def run() -> None:
        await server.start()
        out.write(
            f"layout server for binary {exp.app.binary.name!r} "
            f"listening on {server.address} "
            f"(queue limit {args.queue_limit}, workers {args.workers}, "
            f"cold-start {args.profile_source})\n"
        )
        out.flush()
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    emit_runlog(exp, args)
    return 0


def _fleet_experiment(args):
    from repro.harness.experiment import Experiment
    from repro.online import phased_experiment_config

    config = phased_experiment_config(
        shift_after=args.shift, quick=not args.full
    )
    exp = Experiment(config)
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else store_from(args))
    return exp


def _cmd_fleet(args, out) -> int:
    import json

    from repro.serve import FleetConfig, run_fleet

    address = None
    if args.connect:
        if args.kill_after is not None:
            sys.stderr.write(
                "fleet: --connect and --kill-after are incompatible (the "
                "driver can only kill servers it owns)\n"
            )
            return 2
        if args.connect.count(":") == 1:
            host, _, port = args.connect.partition(":")
            address = (host, int(port))
        else:
            address = args.connect  # unix socket path

    exp = _fleet_experiment(args)
    base = dict(
        clients=args.clients,
        epochs=args.epochs,
        combo=args.combo,
        queue_limit=args.queue_limit,
        workers=args.workers,
    )
    scenarios = [
        (
            "degraded" if args.kill_after is not None else "healthy",
            FleetConfig(kill_after=args.kill_after, **base),
        )
    ]
    if args.check and args.kill_after is None and address is None:
        scenarios.append(
            (
                "degraded",
                FleetConfig(kill_after=max(1, args.epochs // 2), **base),
            )
        )

    reports = {}
    for name, config in scenarios:
        reports[name] = run_fleet(exp, config, address=address)

    if args.json:
        out.write(
            json.dumps(
                {name: r.to_dict() for name, r in reports.items()}, indent=2
            )
            + "\n"
        )
    else:
        for name, report in reports.items():
            out.write(report.render() + "\n")

    if args.save_json:
        from repro.harness import write_benchmark_json
        from repro.harness.figures import Table

        rows = []
        for name, report in reports.items():
            healthy = report.healthy_epochs
            rows.append(
                [
                    f"{name}_requests_served",
                    int(all(e.served == e.requests for e in report.epochs)),
                ]
            )
            rows.append([f"{name}_gate_ok",
                         int(all(e.gate_ok for e in report.epochs))])
            if healthy:
                rows.append(
                    [
                        f"{name}_optimizations_bounded",
                        int(
                            report.optimizations
                            <= min(2 * len(healthy), 8)
                        ),
                    ]
                )
            if report.degraded_epochs:
                rows.append(
                    [f"{name}_fallbacks_used", int(report.fallbacks > 0)]
                )
                rows.append(
                    [
                        f"{name}_decay_bounded",
                        int(report.decay_ratio <= 3.0),
                    ]
                )
            rows.append([f"{name}_pass", int(report.passes())])
        table = Table(
            title="serve fleet acceptance (1 = pass)",
            columns=["metric", "ratio_ok"],
            rows=rows,
            notes=[
                f"{name}: {r.requests} requests, {r.optimizations} "
                f"optimizations, {r.coalesced} coalesced, "
                f"{r.cache_hits} cache hits, {r.fallbacks} fallbacks, "
                f"queue-wait p95 {r.queue_wait_p95_ms:.1f} ms, "
                f"decay {r.decay_ratio:.3f} (informational, not gated)"
                for name, r in reports.items()
            ],
        )
        write_benchmark_json(
            "serve",
            table,
            args.save_json,
            extra={
                "scenarios": {
                    name: r.to_dict() for name, r in reports.items()
                },
                "queue_wait_p95_ms": max(
                    r.queue_wait_p95_ms for r in reports.values()
                ),
            },
        )
    emit_runlog(exp, args)

    failed = {name: r for name, r in reports.items() if not r.passes()}
    if args.check and failed:
        for name, report in failed.items():
            sys.stderr.write(
                f"fleet check FAILED ({name}): {report.requests} requests, "
                f"{report.optimizations} optimizations, "
                f"{report.fallbacks} fallbacks, "
                f"decay {report.decay_ratio:.3f}, "
                f"{len(report.unhandled_errors)} unhandled error(s)\n"
            )
        return 1
    return 0
