"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     -- describe the generated binaries and configuration.
* ``figure``   -- regenerate one or more paper figures as text tables.
* ``sweep``    -- run the Figure 4/5 cache sweep.
* ``sim-bench`` -- time the fig04 sweep under the batched and classic
  engines, verify bit-identical miss counts, and record the gate.
* ``ablation`` -- run the Figure 7 optimization ablation.
* ``online``   -- online adaptation on a phase-shifting workload
  (static decay vs adaptive re-layout, epoch by epoch).
* ``serve``    -- run the layout-optimization service: profile
  ingestion, request coalescing, tiered layout cache, check gate.
* ``fleet``    -- simulate N client nodes against the service
  (healthy and degraded scenarios, with acceptance gates).
* ``scenarios`` -- the declarative scenario matrix: ``list`` the cells,
  ``run`` the resumable cross-workload sweep, ``report`` the saved
  cross-scenario Markdown report.
* ``static-bench`` -- measured vs static vs hybrid profile sources on
  scenario cells; records the OLTP static-recovery gate as
  ``BENCH_staticpred.json``.
* ``cache``    -- inspect (``info``) or wipe (``clear``) the artifact cache.
* ``pipeline`` -- per-stage view of the cache: ``pipeline info
  [fingerprint]`` reports each declared stage's artifacts, sizes, and
  whether a warm replay would hit (``docs/PIPELINE.md``).
* ``summary``  -- concatenate saved benchmark result tables.
* ``report``   -- render one Markdown/HTML run report from a results
  directory (figure tables, metric summaries, span flamegraph).
* ``bench-diff`` -- compare fresh ``BENCH_*.json`` against a baseline
  directory; non-zero exit on regressions beyond the threshold.
* ``trace-export`` -- convert a span-trace JSONL into Chrome's
  ``chrome://tracing`` / Perfetto JSON format.

Figures run on the quick experiment by default; pass ``--full`` for
the paper-scale configuration used by the benchmark suite.  Stage
products (codegen, profiles, traces, layouts) persist in a
content-addressed cache (``--cache-dir``, default ``~/.cache/repro``;
``--no-cache`` disables) so warm reruns skip straight to the cache
simulators, and ``--jobs N`` fans independent sweep cells across
worker processes with bit-identical output.  A per-stage run log
(wall time, cache hit/miss, bytes) is printed to stderr after each
command unless ``--quiet`` is given.  ``--trace PATH`` records
:mod:`repro.obs` spans to a JSONL file for ``report``/``trace-export``.
The shared flags may be given before or after the subcommand; the
direct-mapped sweep figures additionally take ``--engine
{batched,classic}`` (default ``batched``, the single-pass
:mod:`repro.sim` engine).  ``figure``/``sweep``/``scenarios`` take
``--profile-source {measured,static,hybrid}`` to build the optimized
layouts from the profile-free static prediction instead of the
profiling run (see ``docs/STATIC.md``).

Package layout: one module per subcommand family, each exposing
``register(sub, shared) -> {command: handler}``.  ``main`` walks the
:data:`COMMAND_MODULES` registry to build the parser and handler
table, so a new command family is one module plus one registry entry.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.cli import cache, figures, lint, online, reports, scenarios, serving
from repro.cli._common import add_shared_flags

#: The subcommand registry, in help-listing order.  Each module's
#: ``register(sub, shared)`` declares its subparsers on ``sub`` (with
#: ``shared`` as the inheritable flag parent) and returns the
#: ``{command-name: handler(args, out) -> int}`` entries it owns.
COMMAND_MODULES = (
    figures,    # info, figure, sweep, ablation, sim-bench
    online,     # online
    serving,    # serve, fleet
    scenarios,  # scenarios, static-bench
    cache,      # cache, pipeline
    reports,    # summary, report, bench-diff, trace-export
    lint,       # lint
)


def _build_parser() -> "tuple[argparse.ArgumentParser, Dict[str, Callable]]":
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Code Layout Optimizations for "
        "Transaction Processing Workloads' (ISCA 2001)",
    )
    add_shared_flags(parser, suppress=False)
    shared = argparse.ArgumentParser(add_help=False)
    add_shared_flags(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)
    handlers: Dict[str, Callable] = {}
    for module in COMMAND_MODULES:
        for command, handler in module.register(sub, shared).items():
            if command in handlers:
                raise RuntimeError(
                    f"CLI command {command!r} registered twice "
                    f"(second time by {module.__name__})"
                )
            handlers[command] = handler
    return parser, handlers


def main(argv=None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro import obs

    out = out or sys.stdout
    parser, handlers = _build_parser()
    args = parser.parse_args(argv)
    if args.trace:
        obs.enable(trace_path=args.trace)
    try:
        return handlers[args.command](args, out)
    finally:
        if args.trace:
            obs.flush_metrics()
            obs.disable()


__all__ = ["COMMAND_MODULES", "main"]
