"""The ``online`` subcommand: online adaptation on a phase-shifting
workload (static decay vs adaptive re-layout, epoch by epoch)."""

from __future__ import annotations

import sys
from typing import Dict

from repro.cli._common import emit_runlog, store_from


def register(sub, shared) -> Dict:
    """Declare the ``online`` subparser; returns its handler."""
    online = sub.add_parser(
        "online",
        help="online adaptation: static decay vs adaptive re-layout on a "
        "phase-shifting TPC-B -> DSS workload",
        parents=[shared],
    )
    online.add_argument(
        "--epochs", type=int, default=6, metavar="N",
        help="epochs the measurement run is cut into (default 6, min 2)",
    )
    online.add_argument(
        "--period", type=int, default=64, metavar="N",
        help="PC-sampling period in instructions (default 64)",
    )
    online.add_argument(
        "--threshold", type=float, default=0.40, metavar="X",
        help="hard drift threshold for layout swaps (default 0.40)",
    )
    online.add_argument(
        "--refresh-threshold", type=float, default=0.16, metavar="X",
        help="residual-drift threshold for refresh retrains (default 0.16)",
    )
    online.add_argument(
        "--top-k", type=int, default=64, metavar="K",
        help="hot-set size for the turnover drift component (default 64)",
    )
    online.add_argument(
        "--combo", default="all",
        help="optimization combination for all layout arms (default 'all')",
    )
    online.add_argument(
        "--shift", type=int, default=5, metavar="N",
        help="TPC-B transactions per client before the DSS shift (default 5)",
    )
    online.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    online.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the adaptive arm recovers to within 10%% of "
        "offline re-profiling and beats the static layout",
    )
    return {"online": _cmd_online}


def _cmd_online(args, out) -> int:
    import json

    from repro.harness.experiment import Experiment
    from repro.online import (
        OnlineConfig,
        phased_experiment_config,
        run_online_experiment,
    )

    config = phased_experiment_config(
        shift_after=args.shift, quick=not args.full
    )
    exp = Experiment(config)
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else store_from(args))
    report = run_online_experiment(
        exp,
        OnlineConfig(
            epochs=args.epochs,
            period=args.period,
            threshold=args.threshold,
            refresh_threshold=args.refresh_threshold,
            top_k=args.top_k,
            combo=args.combo,
            shift_after=args.shift,
        ),
    )
    if args.json:
        out.write(json.dumps(report.to_dict(), indent=2) + "\n")
    else:
        out.write(report.render())
    emit_runlog(exp, args)
    if args.check and not report.passes():
        sys.stderr.write(
            f"online check FAILED: recovery={report.recovery_ratio:.3f} "
            f"(need <= 1.10), final adaptive={report.final.adaptive_mpki:.3f} "
            f"vs static={report.final.static_mpki:.3f} MPKI\n"
        )
        return 1
    return 0
