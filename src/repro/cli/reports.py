"""Reporting-family subcommands: ``summary``, ``report``,
``bench-diff``, and ``trace-export`` — everything that reads saved
benchmark documents instead of running experiments."""

from __future__ import annotations

from typing import Dict


def register(sub, shared) -> Dict:
    """Declare the reporting subparsers; returns their handlers."""
    summary = sub.add_parser(
        "summary", help="concatenate saved benchmark result tables"
    )
    summary.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory holding the *.txt tables written by the benchmarks",
    )

    report = sub.add_parser(
        "report", help="render a Markdown/HTML run report from BENCH_*.json"
    )
    report.add_argument(
        "results_dir", nargs="?", default="benchmarks/results",
        help="directory holding BENCH_*.json documents "
        "(default benchmarks/results)",
    )
    report.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="span-trace JSONL to render as a flamegraph section",
    )
    report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    report.add_argument(
        "--html", action="store_true",
        help="emit a self-contained HTML page instead of Markdown",
    )

    diff = sub.add_parser(
        "bench-diff",
        help="compare fresh BENCH_*.json against a baseline directory",
    )
    diff.add_argument(
        "fresh_dir", help="directory holding the fresh BENCH_*.json documents"
    )
    diff.add_argument(
        "--baseline", default="benchmarks/baselines", metavar="DIR",
        help="baseline directory (default benchmarks/baselines)",
    )
    diff.add_argument(
        "--threshold", type=float, default=8.0, metavar="PCT",
        help="regression threshold in percent (default 8)",
    )
    diff.add_argument(
        "--wall-time", action="store_true",
        help="also gate summed pipeline stage wall time (machine-dependent; "
        "off by default)",
    )

    export = sub.add_parser(
        "trace-export",
        help="convert a span-trace JSONL to Chrome trace_event JSON",
    )
    export.add_argument("trace_file", help="span-trace JSONL written via --trace")
    export.add_argument(
        "--out", default=None, metavar="PATH",
        help="output path (default <trace_file>.chrome.json)",
    )
    return {
        "summary": _cmd_summary,
        "report": _cmd_report,
        "bench-diff": _cmd_bench_diff,
        "trace-export": _cmd_trace_export,
    }


def _cmd_summary(args, out) -> int:
    import pathlib

    results = pathlib.Path(args.results_dir)
    files = sorted(results.glob("*.txt")) if results.is_dir() else []
    if not files:
        out.write(
            f"no result tables in {results}/ -- run "
            f"`pytest benchmarks/ --benchmark-only` first\n"
        )
        return 1
    for path in files:
        out.write(f"==== {path.name} {'=' * max(1, 60 - len(path.name))}\n")
        out.write(path.read_text().rstrip() + "\n\n")
    return 0


def _cmd_report(args, out) -> int:
    from repro.obs.report import render_html, render_report

    text = render_report(args.results_dir, trace_path=args.trace_file)
    if args.html:
        text = render_html(text)
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        out.write(f"wrote {args.out}\n")
    else:
        out.write(text)
    return 0


def _cmd_bench_diff(args, out) -> int:
    from repro.obs.benchdiff import compare_dirs

    report = compare_dirs(
        args.fresh_dir,
        args.baseline,
        threshold_pct=args.threshold,
        wall_time=args.wall_time,
    )
    out.write(report.render())
    return 0 if report.ok else 1


def _cmd_trace_export(args, out) -> int:
    from repro.obs.chrome import export_chrome_trace

    out_path = args.out or f"{args.trace_file}.chrome.json"
    written = export_chrome_trace(args.trace_file, out_path)
    out.write(f"wrote {written}\n")
    return 0
