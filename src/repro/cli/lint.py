"""The ``lint`` subcommand: the repro.check static analyses (Spike
lint) over generated binaries or saved artifacts, plus the
deprecated-API scan."""

from __future__ import annotations

import os
from typing import Dict

from repro.cli._common import emit_runlog, experiment_from


def register(sub, shared) -> Dict:
    """Declare the ``lint`` subparser; returns its handler."""
    lint = sub.add_parser(
        "lint",
        help="run the repro.check static analyses (Spike lint)",
        description="Verify layout integrity, profile flow conservation, "
        "and layout-quality lints over the generated binaries -- or over "
        "saved layout/profile artifacts.",
        parents=[shared],
    )
    lint.add_argument(
        "--combo", action="append", default=None, metavar="NAME",
        help="optimization combination(s) to lint (repeatable; default all)",
    )
    lint.add_argument(
        "--layout", action="append", default=None, metavar="FILE",
        help="lint a saved layout JSON against the app binary instead of "
        "building layouts (repeatable)",
    )
    lint.add_argument(
        "--profile", action="append", default=None, metavar="FILE",
        help="lint a saved profile .npz against the app binary (repeatable)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any error-severity finding is reported",
    )
    lint.add_argument(
        "--no-deprecations", action="store_true",
        help="skip the deprecated-API call-site scan",
    )
    lint.add_argument(
        "--scan", action="append", default=None, metavar="PATH",
        help="roots for the deprecated-API scan "
        "(repeatable; default src, benchmarks, tools). When --scan is "
        "the only selection, the artifact lint is skipped and only the "
        "scan runs",
    )
    lint.add_argument(
        "--static-diff", action="store_true",
        help="also diff the measured profiles against the static "
        "prediction (STA* advisories; see docs/STATIC.md)",
    )
    return {"lint": _cmd_lint}


def _cmd_lint(args, out) -> int:
    import json as _json

    from repro.check import (
        CheckReport,
        check_all,
        check_layout,
        check_profile,
        scan_deprecated_calls,
    )
    from repro.harness.store import load_layout, load_profile
    from repro.ir import assign_addresses
    from repro.layout import ALL_COMBOS

    exp = experiment_from(args)
    report = CheckReport()

    # When --scan is the only selection, run just the AST scan: the
    # artifact lint of every combo would dominate the runtime and (being
    # clean by construction) only bury the scan findings -- and --strict
    # must gate on DEP* findings alone.
    scan_only = bool(args.scan) and not (
        args.layout or args.profile or args.combo or args.static_diff
    )

    if scan_only:
        pass
    elif args.layout or args.profile:
        # Artifact mode: lint saved files against the app binary.
        binary = exp.app.binary
        for path in args.layout or ():
            # No binary validation on load: lint must *report* a corrupt
            # layout, not crash on it.
            layout = load_layout(path)
            structure = check_layout(binary, layout, target=path)
            report.extend(structure)
            if structure.ok:
                amap = assign_addresses(binary, layout)
                report.extend(
                    check_layout(binary, layout, amap, target=path)
                )
        for path in args.profile or ():
            profile = load_profile(binary, path)
            report.extend(check_profile(binary, profile, target=path))
    else:
        combos = args.combo or list(ALL_COMBOS)
        for label, binary, profile, optimizer in (
            ("app", exp.app.binary, exp.profile, exp.optimizer),
            ("kernel", exp.kernel.binary, exp.kernel_profile, exp.kernel_optimizer),
        ):
            report.extend(check_profile(binary, profile, target=f"profile:{label}"))
            for combo in combos:
                layout = optimizer.layout(combo)
                amap = assign_addresses(binary, layout)
                report.extend(
                    check_all(
                        binary, profile, layout, amap,
                        target=f"{label}/{combo}",
                    )
                )

    if args.static_diff:
        from repro.check import check_static_diff

        for label, binary, measured, kernel in (
            ("app", exp.app.binary, exp.profile, False),
            ("kernel", exp.kernel.binary, exp.kernel_profile, True),
        ):
            report.extend(
                check_static_diff(
                    binary, measured, exp.static_profile(kernel=kernel),
                    target=f"static-diff:{label}",
                )
            )

    if not args.no_deprecations:
        roots = args.scan or [
            r for r in ("src", "benchmarks", "tools") if os.path.isdir(r)
        ]
        for diagnostic in scan_deprecated_calls(roots):
            report.add(diagnostic)

    if args.json:
        out.write(_json.dumps(report.to_json(), indent=2) + "\n")
    else:
        out.write(report.render())
    emit_runlog(exp, args)
    if args.strict and not report.ok:
        return 1
    return 0
