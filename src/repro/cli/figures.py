"""Figure-family subcommands: ``info``, ``figure``, ``sweep``,
``ablation``, and ``sim-bench`` — everything that renders paper tables
from one :class:`~repro.harness.experiment.Experiment`."""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.harness import figures
from repro.staticpred import PROFILE_SOURCES

from repro.cli._common import (
    FIGURES,
    emit_runlog,
    experiment_from,
    warm,
)


def register(sub, shared) -> Dict:
    """Declare the figure-family subparsers; returns their handlers."""
    sub.add_parser(
        "info", help="describe the generated system", parents=[shared]
    )

    figure = sub.add_parser(
        "figure", help="regenerate paper figures", parents=[shared]
    )
    figure.add_argument(
        "names", nargs="+", choices=sorted(FIGURES) + ["all"],
        help="figure ids (or 'all')",
    )
    figure.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="also write each table as BENCH_<figure>.json under DIR",
    )
    figure.add_argument(
        "--engine", choices=("batched", "classic"), default="batched",
        help="direct-mapped sweep engine for fig04/fig05 (default "
        "batched; classic is the per-cell cross-check path)",
    )
    figure.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="measured",
        help="profile the optimized layouts are built from (default "
        "measured; 'static' is the profile-free CFG prediction, "
        "'hybrid' blends both -- see docs/STATIC.md)",
    )

    sweep = sub.add_parser(
        "sweep", help="Figure 4/5 cache sweep (base + optimized)",
        parents=[shared],
    )
    sweep.add_argument(
        "--engine", choices=("batched", "classic"), default="batched",
        help="direct-mapped sweep engine (default batched)",
    )
    sweep.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="measured",
        help="profile the optimized layouts are built from (default "
        "measured; see docs/STATIC.md)",
    )
    sub.add_parser(
        "ablation", help="Figure 7 optimization ablation", parents=[shared]
    )

    simbench = sub.add_parser(
        "sim-bench",
        help="time the fig04 sweep under both engines and verify "
        "bit-identical miss counts",
        parents=[shared],
    )
    simbench.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the batched engine matches classic exactly "
        "and is >= 2x faster",
    )
    simbench.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the gate result as BENCH_sim_fig04.json under DIR "
        "(for 'repro bench-diff' against the committed baseline)",
    )
    simbench.add_argument(
        "--min-speedup", type=float, default=2.0, metavar="X",
        help="speedup the gate requires (default 2.0)",
    )

    return {
        "info": _cmd_info,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "ablation": _cmd_ablation,
        "sim-bench": _cmd_sim_bench,
    }


def _cmd_info(args, out) -> int:
    exp = experiment_from(args)
    app = exp.app.binary
    kernel = exp.kernel.binary
    config = exp.config
    out.write(
        f"application binary: {app.num_procedures} procedures, "
        f"{app.num_blocks} blocks, {app.static_size * 4 // 1024} KB static\n"
        f"kernel binary:      {kernel.num_procedures} procedures, "
        f"{kernel.static_size * 4 // 1024} KB static\n"
        f"TPC-B:              {config.tpcb.branches} branches, "
        f"{config.tpcb.accounts:,} accounts\n"
        f"system:             {config.system.cpus} CPUs x "
        f"{config.system.processes_per_cpu} server processes\n"
        f"transactions:       {config.profile_transactions} profiled, "
        f"{config.measure_transactions} measured\n"
        f"fingerprint:        {exp.fingerprint}\n"
    )
    profile = exp.profile
    out.write(
        f"profiled:           {profile.total_instructions:,} instructions, "
        f"dynamic footprint "
        f"{_footprint_kb(profile)} KB\n"
    )
    emit_runlog(exp, args)
    return 0


def _footprint_kb(profile) -> int:
    from repro.analysis import dynamic_footprint_bytes

    return dynamic_footprint_bytes(profile) // 1024


def _figure_slug(name: str, table, index: int, count: int) -> str:
    """Stable BENCH slug for one figure table.

    Multi-table figures carry the combo in the title — ``Figure 4
    (base): ...`` becomes ``fig04_base``; untagged extras fall back to
    a positional suffix.
    """
    import re

    if count == 1:
        return name
    match = re.search(r"\(([A-Za-z0-9+_-]+)\)", table.title)
    if match:
        return f"{name}_{match.group(1).replace('+', '_')}"
    return f"{name}_{index}"


def _cmd_figure(args, out) -> int:
    exp = experiment_from(args)
    names: List[str] = (
        sorted(FIGURES) if "all" in args.names else list(dict.fromkeys(args.names))
    )
    for name in names:
        tables = FIGURES[name](exp, args.engine)
        for index, table in enumerate(tables):
            out.write(table.render() + "\n")
            if args.save_json:
                from repro.harness import write_benchmark_json

                write_benchmark_json(
                    _figure_slug(name, table, index, len(tables)),
                    table,
                    args.save_json,
                )
    emit_runlog(exp, args)
    return 0


def _cmd_sweep(args, out) -> int:
    exp = experiment_from(args)
    warm(exp)
    base = figures.fig04_cache_sweep(exp, "base", engine=args.engine)
    opt = figures.fig04_cache_sweep(exp, "all", engine=args.engine)
    out.write(figures.fig04_table(base, "base").render() + "\n")
    out.write(figures.fig04_table(opt, "all").render() + "\n")
    out.write(figures.fig05_relative(base, opt).render() + "\n")
    emit_runlog(exp, args)
    return 0


def _cmd_sim_bench(args, out) -> int:
    """Time the fig04 sweep under both engines on identical streams.

    The gate is recorded as boolean ``ratio_ok`` rows (1 = pass) rather
    than raw seconds, so ``repro bench-diff`` against the committed
    baseline stays machine-independent: a pass-to-fail flip shows up as
    a -100% regression; timing jitter never trips it.
    """
    import time as _time

    from repro.sim import simulate_grid

    exp = experiment_from(args)
    warm(exp)
    streams = {
        combo: exp.streams(combo, scope="app") for combo in ("base", "all")
    }
    jobs = exp.jobs
    timings: Dict[str, float] = {}
    grids: Dict[str, dict] = {}
    for engine in ("classic", "batched"):
        start = _time.perf_counter()
        grids[engine] = {
            combo: simulate_grid(
                streams[combo],
                figures.SWEEP_SIZES,
                figures.SWEEP_LINES,
                jobs=jobs,
                engine=engine,
            )
            for combo in ("base", "all")
        }
        timings[engine] = _time.perf_counter() - start
    identical = grids["classic"] == grids["batched"]
    speedup = timings["classic"] / max(timings["batched"], 1e-9)
    speedup_ok = speedup >= args.min_speedup

    from repro.harness.figures import Table

    table = Table(
        title="sim-bench: fig04 sweep, batched vs classic engine",
        columns=["metric", "ratio_ok"],
        rows=[
            ["identical_misses", int(identical)],
            [f"speedup_ge_{args.min_speedup:g}x", int(speedup_ok)],
        ],
        notes=[
            f"classic {timings['classic']:.3f}s, batched "
            f"{timings['batched']:.3f}s, speedup {speedup:.2f}x "
            f"(jobs={jobs}; timings informational, not gated)",
        ],
    )
    out.write(table.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("sim_fig04", table, args.save_json)
    emit_runlog(exp, args)
    if args.check and not (identical and speedup_ok):
        sys.stderr.write(
            f"sim-bench check FAILED: identical_misses={identical} "
            f"speedup={speedup:.2f}x (need >= {args.min_speedup:g}x)\n"
        )
        return 1
    return 0


def _cmd_ablation(args, out) -> int:
    exp = experiment_from(args)
    warm(exp)
    out.write(figures.fig07_ablation(exp).render() + "\n")
    emit_runlog(exp, args)
    return 0
