"""Cache-family subcommands: the flat ``cache info``/``cache clear``
store summary and the stage-aware ``pipeline info`` view that breaks
one experiment fingerprint down per declared stage."""

from __future__ import annotations

import sys
from typing import Dict

from repro.cli._common import experiment_from, store_from


def register(sub, shared) -> Dict:
    """Declare the ``cache``/``pipeline`` subparsers; returns handlers."""
    cache = sub.add_parser(
        "cache", help="inspect or clear the artifact cache", parents=[shared]
    )
    cache.add_argument(
        "action", choices=("info", "clear"),
        help="'info' summarizes the cache; 'clear' wipes it",
    )

    pipeline = sub.add_parser(
        "pipeline",
        help="inspect the stage-graph cache per stage",
        description="Per-stage view of the artifact cache: for one "
        "experiment fingerprint, report each declared pipeline stage's "
        "artifacts, their cached sizes, and whether a replay would hit "
        "(see docs/PIPELINE.md).",
    )
    psub = pipeline.add_subparsers(dest="pipeline_command", required=True)
    pinfo = psub.add_parser(
        "info",
        help="per-stage cache sizes and replay-hit states for one "
        "experiment fingerprint",
        parents=[shared],
    )
    pinfo.add_argument(
        "fingerprint", nargs="?", default=None,
        help="experiment fingerprint to inspect (default: the "
        "quick/--full experiment selected by the shared flags)",
    )
    return {"cache": _cmd_cache, "pipeline": _cmd_pipeline}


def _cmd_cache(args, out) -> int:
    store = store_from(args)
    if args.action == "clear":
        removed = store.clear()
        out.write(f"cleared {removed} cached experiment(s) from {store.root}\n")
        return 0
    info = store.info()
    out.write(
        f"cache dir:    {info.root}\n"
        f"experiments:  {info.experiments}\n"
        f"files:        {info.files}\n"
        f"total size:   {info.total_bytes / (1024 * 1024):.2f} MB\n"
    )
    return 0


def _cmd_pipeline(args, out) -> int:
    """``pipeline info [fingerprint]``: the per-stage replacement for
    the flat ``cache info`` rollup.

    Probes the declared stage graph against the store without building
    anything: each row is one stage with its artifact count, cached
    bytes, and state (``ready`` = a warm replay would hit, ``partial``,
    ``missing``, ``transient`` = persists nothing).  Artifacts under
    the fingerprint not claimed by a declared stage (dynamic layout
    stages, scenario cells) are rolled up per stage family below.
    """
    from repro.pipeline import PipelineRunner

    if args.no_cache:
        sys.stderr.write("pipeline info: no cache to inspect (--no-cache)\n")
        return 2
    exp = experiment_from(args)
    store = exp.store
    fingerprint = args.fingerprint or exp.fingerprint
    runner = PipelineRunner(
        exp.pipeline.graph, store=store, fingerprint=fingerprint
    )
    rows = runner.status()
    claimed = set()
    out.write(
        f"pipeline stages for fingerprint={fingerprint}\n"
        f"cache dir: {store.root}\n\n"
    )
    width = max(len(row.key) for row in rows)
    out.write(f"{'stage'.ljust(width)}  {'state':9s} {'bytes':>10s}  artifacts\n")
    for row in rows:
        names = ", ".join(
            name + ("" if present else "?")
            for name, present, _ in row.artifacts
        ) or "-"
        out.write(
            f"{row.key.ljust(width)}  {row.state:9s} {row.bytes:>10d}  {names}\n"
        )
        claimed.update(name for name, _, _ in row.artifacts)

    ready = sum(1 for row in rows if row.state == "ready")
    persistent = [row for row in rows if row.artifacts]
    out.write(
        f"\ndeclared stages: {len(rows)} "
        f"({ready}/{len(persistent)} persistent stages ready to hit, "
        f"{len(rows) - len(persistent)} transient)\n"
    )

    extra = [
        path
        for path in sorted((store.root / fingerprint).glob("*"))
        if path.is_file() and path.name not in claimed
    ]
    if extra:
        families: Dict[str, list] = {}
        for path in extra:
            family = path.name.split("-", 1)[0]
            families.setdefault(family, []).append(path.stat().st_size)
        out.write("dynamic-stage artifacts (not declared until requested):\n")
        for family, sizes in sorted(families.items()):
            out.write(
                f"  {family}: {len(sizes)} file(s), {sum(sizes)} bytes\n"
            )
    return 0
